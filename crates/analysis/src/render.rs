//! Text rendering of evaluation results — the tables the CLI prints and
//! EXPERIMENTS.md embeds.

use std::fmt::Write as _;

use spector_libradar::LibCategory;
use spector_vtcat::DomainCategory;

use crate::FullReport;

const MB: f64 = 1_048_576.0;

fn mb(bytes: u64) -> f64 {
    bytes as f64 / MB
}

/// One independently renderable section of the full report — the unit
/// the golden-snapshot suite pins (`tests/golden_render.rs`, one file
/// per section under `tests/golden/`). Figures 4 and 5 share a section
/// because they have always rendered as one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// §IV-A headline statistics.
    Headline,
    /// Table I — domain-category tokenization counts.
    Table1,
    /// Figure 2 — traffic per app category.
    Fig2,
    /// Figure 3 — top origin-libraries and 2-level libraries.
    Fig3,
    /// Figures 4+5 — flow-size CDFs and transfer ratios.
    Fig4And5,
    /// Figure 6 — AnT vs common-library comparison.
    Fig6,
    /// Figure 7 — averages per library / domain category.
    Fig7,
    /// Figure 8 — average transfer per app category.
    Fig8,
    /// Figure 9 — library × domain category heatmap.
    Fig9,
    /// Figure 10 — method coverage distribution.
    Fig10,
    /// §IV-D monetary and energy cost.
    Cost,
    /// §IV research-question summaries.
    Rq,
}

impl Section {
    /// Every section, in the order [`render_full`] emits them.
    pub const ALL: [Section; 12] = [
        Section::Headline,
        Section::Table1,
        Section::Fig2,
        Section::Fig3,
        Section::Fig4And5,
        Section::Fig6,
        Section::Fig7,
        Section::Fig8,
        Section::Fig9,
        Section::Fig10,
        Section::Cost,
        Section::Rq,
    ];

    /// Stable file-name slug (`tests/golden/<slug>.txt`).
    pub fn slug(self) -> &'static str {
        match self {
            Section::Headline => "headline",
            Section::Table1 => "table1",
            Section::Fig2 => "fig2",
            Section::Fig3 => "fig3",
            Section::Fig4And5 => "fig4_5",
            Section::Fig6 => "fig6",
            Section::Fig7 => "fig7",
            Section::Fig8 => "fig8",
            Section::Fig9 => "fig9",
            Section::Fig10 => "fig10",
            Section::Cost => "cost",
            Section::Rq => "rq",
        }
    }
}

/// Renders one section exactly as [`render_full`] would emit it.
pub fn render_section(report: &FullReport, section: Section) -> String {
    let mut out = String::new();
    match section {
        Section::Headline => render_headline(&mut out, report),
        Section::Table1 => render_table1(&mut out, report),
        Section::Fig2 => render_fig2(&mut out, report),
        Section::Fig3 => render_fig3(&mut out, report),
        Section::Fig4And5 => render_fig4_5(&mut out, report),
        Section::Fig6 => render_fig6(&mut out, report),
        Section::Fig7 => render_fig7(&mut out, report),
        Section::Fig8 => render_fig8(&mut out, report),
        Section::Fig9 => render_fig9(&mut out, report),
        Section::Fig10 => render_fig10(&mut out, report),
        Section::Cost => render_cost(&mut out, report),
        Section::Rq => out.push_str(&crate::rq::render(&report.rq)),
    }
    out
}

/// Renders the complete report. The sampled-tracing recovery section
/// is appended after the pinned sections, and only for campaigns that
/// shipped sampling ledgers — exact reports stay byte-identical to
/// what this function has always produced.
pub fn render_full(report: &FullReport) -> String {
    let mut out = String::new();
    for section in Section::ALL {
        out.push_str(&render_section(report, section));
    }
    if report.shapes.active {
        out.push_str(&render_shape_mix(report));
    }
    if report.sampling.active {
        render_sampling(&mut out, report);
    }
    out
}

/// The socket-shape mix section: family split, framing shapes, and the
/// streams-per-connection histogram. Like the sampling section, it is
/// deliberately not a [`Section`] variant — `Section::ALL` is pinned
/// by the golden suite and legacy campaigns never render this block.
/// Mixed campaigns pin it through `tests/golden/shape_mix.txt`.
pub fn render_shape_mix(report: &FullReport) -> String {
    let s = &report.shapes;
    let mut out = String::new();
    let _ = writeln!(out, "== Socket shapes: family and stream mix ==");
    let _ = writeln!(
        out,
        "  family: v4 {} flows ({:.3} MB) | v6 {} flows ({:.3} MB)",
        s.v4_flows,
        mb(s.v4_bytes),
        s.v6_flows,
        mb(s.v6_bytes)
    );
    let _ = writeln!(
        out,
        "  shape: plain {} | tls-like {} (sni-attributed {}) | connect-proxy {}",
        s.plain_flows, s.tls_flows, s.sni_attributed, s.proxy_flows
    );
    let h = s.stream_histogram();
    let _ = writeln!(
        out,
        "  streams/connection: 1={} 2={} 3={} 4+={} | pooled connections {}",
        h[0], h[1], h[2], h[3], s.pooled_connections
    );
    out
}

/// The sampled-tracing recovery section. Deliberately not a
/// [`Section`] variant: `Section::ALL` is pinned by the golden suite
/// and this section has no exact-campaign rendering.
fn render_sampling(out: &mut String, report: &FullReport) {
    let s = &report.sampling;
    let l = &s.ledger;
    let _ = writeln!(out, "== Sampled tracing: volume recovery ==");
    let _ = writeln!(
        out,
        "  ledger: observed {} | emitted {} | sampled-out {} | budget-suppressed {} | windows-exhausted {} | ledgers-lost {}",
        l.reports_observed,
        l.reports_emitted,
        l.sampled_out,
        l.budget_suppressed,
        l.windows_exhausted,
        l.ledgers_lost
    );
    let _ = writeln!(out, "  mean inclusion p = {:.4}", s.mean_inclusion);
    let fmt = |est: &crate::sampling::VolumeEstimate| {
        format!(
            "{:>9.3} -> {:>9.3} ± {:>7.3} MB",
            mb(est.observed_bytes),
            est.estimated_bytes / MB,
            est.ci95 / MB
        )
    };
    let _ = writeln!(out, "  per-library estimates (observed -> estimated):");
    for (name, est) in s.per_library.iter().take(15) {
        let _ = writeln!(out, "    {name:<44} {}", fmt(est));
    }
    let _ = writeln!(out, "  per-domain-category estimates:");
    for (name, est) in s.per_domain_category.iter().take(15) {
        let _ = writeln!(out, "    {name:<44} {}", fmt(est));
    }
    let _ = writeln!(out, "  {:<44} {}", "total", fmt(&s.total));
    let _ = writeln!(out);
}

fn render_headline(out: &mut String, report: &FullReport) {
    let h = &report.headline;
    let _ = writeln!(out, "== Headline (§IV-A) ==");
    let _ = writeln!(
        out,
        "apps {} | total {:.2} MB (recv {:.2} / sent {:.2}) | flows {} | origin-libraries {} | domains {}",
        h.apps,
        mb(h.total_bytes),
        mb(h.recv_bytes),
        mb(h.sent_bytes),
        h.flows,
        h.origin_libraries,
        h.domains
    );
    let _ = writeln!(out, "library-category shares of total traffic:");
    for (label, share) in &h.category_share_percent {
        let _ = writeln!(out, "  {label:<22} {share:6.2}%");
    }
    let _ = writeln!(out);
}

fn render_table1(out: &mut String, report: &FullReport) {
    let _ = writeln!(out, "== Table I: domain categories ==");
    let _ = writeln!(out, "{:<22} {:>8}", "generic category", "domains");
    for category in DomainCategory::ALL {
        let count = report.table1.count(category);
        if count > 0 {
            let _ = writeln!(out, "{:<22} {:>8}", category.label(), count);
        }
    }
    let _ = writeln!(out, "{:<22} {:>8}", "total", report.table1.total);
    let _ = writeln!(out);
}

fn render_fig2(out: &mut String, report: &FullReport) {
    let _ = writeln!(out, "== Figure 2: traffic per app category (top 12) ==");
    for category in report.fig2.category_order.iter().take(12) {
        let _ = writeln!(
            out,
            "  {category:<22} {:>10.2} MB",
            mb(report.fig2.category_total(category))
        );
    }
    let _ = writeln!(out);
}

fn render_fig3(out: &mut String, report: &FullReport) {
    let _ = writeln!(out, "== Figure 3: top origin-libraries ==");
    for (name, bytes) in report.fig3.top_origin_libraries.iter().take(15) {
        let _ = writeln!(out, "  {name:<48} {:>10.2} MB", mb(*bytes));
    }
    let _ = writeln!(out, "-- top 2-level libraries --");
    for (name, bytes) in report.fig3.top_two_level.iter().take(15) {
        let _ = writeln!(out, "  {name:<48} {:>10.2} MB", mb(*bytes));
    }
    let _ = writeln!(
        out,
        "mean per 2-level library {:.2} MB; top-25 share {:.1}%",
        report.fig3.mean_two_level_bytes / MB,
        report.fig3.top25_two_level_share * 100.0
    );
    let _ = writeln!(out);
}

fn render_fig4_5(out: &mut String, report: &FullReport) {
    let _ = writeln!(out, "== Figures 4+5: flow sizes and ratios ==");
    let quartiles = |cdf: &crate::stats::Cdf| -> String {
        if cdf.is_empty() {
            "(empty)".to_owned()
        } else {
            format!(
                "p25 {:.0} p50 {:.0} p90 {:.0} p99 {:.0}",
                cdf.quantile(0.25),
                cdf.quantile(0.50),
                cdf.quantile(0.90),
                cdf.quantile(0.99)
            )
        }
    };
    let f4 = &report.fig4;
    let _ = writeln!(out, "  app sent bytes: {}", quartiles(&f4.app_sent));
    let _ = writeln!(out, "  app recv bytes: {}", quartiles(&f4.app_recv));
    let _ = writeln!(out, "  lib recv bytes: {}", quartiles(&f4.lib_recv));
    let _ = writeln!(out, "  dns recv bytes: {}", quartiles(&f4.dns_recv));
    let f5 = &report.fig5;
    let _ = writeln!(
        out,
        "  recv/sent ratio means: apps {:.1} | libs {:.1} | domains {:.1} | top-decile libs {:.1}",
        f5.app_mean, f5.lib_mean, f5.dns_mean, f5.top_decile_lib_mean
    );
    let _ = writeln!(out);
}

fn render_fig6(out: &mut String, report: &FullReport) {
    let f = &report.fig6;
    let _ = writeln!(out, "== Figure 6: AnT vs common libraries ==");
    let _ = writeln!(
        out,
        "  AnT-only apps {:.1}% | some-AnT {:.1}% | AnT-free {:.1}%",
        f.ant_only_fraction * 100.0,
        f.some_ant_fraction * 100.0,
        f.ant_free_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  recv/sent: AnT {:.1} vs common libraries {:.1}",
        f.ant_recv_sent_ratio, f.common_recv_sent_ratio
    );
    let _ = writeln!(out);
}

fn render_fig7(out: &mut String, report: &FullReport) {
    let _ = writeln!(out, "== Figure 7: averages per category ==");
    let _ = writeln!(out, "  per library (MB/lib):");
    for (label, (_, count, avg)) in &report.fig7.per_lib_category {
        let _ = writeln!(
            out,
            "    {label:<22} {:>8.3} MB over {count} libs",
            avg / MB
        );
    }
    let _ = writeln!(out, "  per domain (MB/domain):");
    for (label, (_, count, avg)) in &report.fig7.per_domain_category {
        let _ = writeln!(
            out,
            "    {label:<22} {:>8.3} MB over {count} domains",
            avg / MB
        );
    }
    let _ = writeln!(out);
}

fn render_fig8(out: &mut String, report: &FullReport) {
    let _ = writeln!(
        out,
        "== Figure 8: average transfer per app category (top 12) =="
    );
    for category in report.fig8.order.iter().take(12) {
        let (apps, _, avg) = report.fig8.per_category[category];
        let _ = writeln!(
            out,
            "  {category:<22} {:>8.3} MB/app over {apps} apps",
            avg / MB
        );
    }
    let _ = writeln!(out);
}

fn render_fig9(out: &mut String, report: &FullReport) {
    let _ = writeln!(out, "== Figure 9: library × domain categories (MB) ==");
    // Header: abbreviated library categories.
    let _ = write!(out, "{:<22}", "");
    for lib in LibCategory::ALL {
        let _ = write!(out, "{:>8}", abbreviate(lib.label()));
    }
    let _ = writeln!(out);
    for domain in DomainCategory::ALL {
        if report.fig9.domain_total(domain) == 0 {
            continue;
        }
        let _ = write!(out, "{:<22}", domain.label());
        for lib in LibCategory::ALL {
            let _ = write!(out, "{:>8.1}", mb(report.fig9.cell(domain, lib)));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
}

fn render_fig10(out: &mut String, report: &FullReport) {
    let f = &report.fig10;
    let _ = writeln!(out, "== Figure 10: method coverage ==");
    let _ = writeln!(
        out,
        "  mean coverage {:.2}% ({:.1}% of apps above mean); mean methods/apk {:.0} ({:.1}% above)",
        f.mean_coverage_percent,
        f.above_mean_fraction * 100.0,
        f.mean_methods,
        f.above_mean_methods_fraction * 100.0
    );
    let _ = writeln!(out);
}

fn render_cost(out: &mut String, report: &FullReport) {
    let _ = writeln!(out, "== Cost to users (§IV-D) ==");
    for (label, usd) in &report.cost.hourly_usd {
        let session = report
            .cost
            .avg_session_bytes
            .get(label)
            .copied()
            .unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  {label:<22} {:>7.3} MB/session  ${usd:>6.3}/hour",
            session / MB
        );
    }
    let _ = writeln!(
        out,
        "  advertisement energy: {:.0} J (≈{:.1}% of an 11.55 Wh battery)",
        report.cost.ad_joules,
        report.cost.ad_battery_fraction * 100.0
    );
    let _ = writeln!(
        out,
        "  per-origin-library granularity (the paper's §IV-D averaging):"
    );
    for (label, usd) in &report.cost.hourly_usd_per_library {
        let per_lib = report
            .cost
            .per_library_bytes
            .get(label)
            .copied()
            .unwrap_or(0.0);
        let _ = writeln!(
            out,
            "    {label:<22} {:>7.3} MB/library  ${usd:>6.3}/hour",
            per_lib / MB
        );
    }
    out.push('\n');
}

fn abbreviate(label: &str) -> String {
    let mut out: String = label
        .split([' ', '/'])
        .filter(|w| !w.is_empty())
        .map(|w| &w[..w.len().min(3)])
        .collect();
    out.truncate(7);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{app, flow};
    use spector_libradar::LibCategory;
    use spector_vtcat::DomainCategory;

    #[test]
    fn renders_all_sections() {
        let analyses = vec![app(
            "com.a",
            "GAME_ACTION",
            vec![flow(
                Some(("com.unity3d.ads", "com.unity3d")),
                LibCategory::Advertisement,
                "ads.host",
                DomainCategory::Advertisements,
                500,
                50_000,
            )],
        )];
        let report = FullReport::build(&analyses);
        let text = render_full(&report);
        for needle in [
            "Headline",
            "Table I",
            "Figure 2",
            "Figure 3",
            "Figures 4+5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Cost to users",
            "com.unity3d.ads",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn abbreviation_is_short() {
        assert!(abbreviate("Development Framework").len() <= 7);
        assert_eq!(abbreviate("Map/LBS"), "MapLBS");
    }
}
