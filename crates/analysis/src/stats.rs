//! Distribution utilities: CDFs, quantiles, means.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution over non-negative samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Samples, ascending.
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after retain"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-quantile (nearest-rank), `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[rank.min(self.sorted.len() - 1)]
    }

    /// Fraction of samples ≤ `value`.
    pub fn fraction_at(&self, value: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= value);
        count as f64 / self.sorted.len() as f64
    }

    /// Arithmetic mean (0 for an empty CDF).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// `(value, cumulative fraction)` points suitable for plotting,
    /// downsampled to at most `max_points`.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n / max_points.max(1)).max(1);
        let mut out = Vec::with_capacity(n / step + 1);
        let mut i = 0;
        while i < n {
            out.push((self.sorted[i], (i + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(v, _)| v) != self.sorted.last().copied() {
            out.push((self.sorted[n - 1], 1.0));
        }
        out
    }
}

/// Mean of an iterator of f64 (0 when empty).
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let cdf = Cdf::from_samples(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.25), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
    }

    #[test]
    fn fraction_at_boundaries() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert!((cdf.fraction_at(2.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_at(10.0), 1.0);
    }

    #[test]
    fn mean_and_empty() {
        assert_eq!(Cdf::from_samples(vec![]).mean(), 0.0);
        assert!(Cdf::from_samples(vec![]).is_empty());
        assert_eq!(Cdf::from_samples(vec![2.0, 4.0]).mean(), 3.0);
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn nan_is_dropped() {
        let cdf = Cdf::from_samples(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn points_cover_range_and_end_at_one() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from).collect());
        let points = cdf.points(10);
        assert!(points.len() <= 12);
        assert_eq!(points.last().unwrap().1, 1.0);
        assert_eq!(points.first().unwrap().0, 1.0);
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "quantile of empty")]
    fn quantile_on_empty_panics() {
        Cdf::from_samples(vec![]).quantile(0.5);
    }
}
