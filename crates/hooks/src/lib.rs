//! The Xposed-like instrumentation layer: Socket Supervisor.
//!
//! Libspector's Socket Supervisor is "a custom module for the Xposed
//! Framework" (§II-B2): it places *post* hooks on `socket`/`connect`,
//! captures the active stack trace via `getStackTrace`, translates each
//! frame's dotted name back to a full method *type signature* using the
//! app's parsed dex files, obtains the connection's 4-tuple through
//! `getsockname`/`getpeername` (exposed over JNI by a small shared
//! library), and ships one UDP datagram per socket to the collection
//! servers — containing the apk's SHA-256, the 4-tuple, and the
//! translated stack.
//!
//! This crate reproduces all of that against the simulated runtime:
//!
//! * [`report`] — the binary wire format of the supervisor's UDP
//!   datagrams (encode on the device side, parse on the collector side);
//! * [`ledger`] — the wire format of the end-of-run sampling-ledger
//!   datagram the supervisor emits when sampled tracing is enabled;
//! * [`supervisor`] — the hook module itself, implementing
//!   [`spector_runtime::RuntimeHook`].
//!
//! Because the supervisor sends its reports through the same emulator
//! network stack the app uses, the datagrams land in the same packet
//! capture — the offline pipeline must recognize and exclude them, just
//! as the original analysis excluded Libspector's own UDP traffic.

pub mod ledger;
pub mod report;
pub mod supervisor;

pub use ledger::{LedgerRecord, LEDGER_MAGIC, LEDGER_WIRE_LEN};
pub use report::{ReportErrorKind, ReportParseError, SocketReport, REPORT_MAGIC};
pub use supervisor::{
    decode_report_datagram, decode_reports, decode_reports_classified, extract_reports,
    ReportDecodeStats, SocketSupervisor, SupervisorConfig, TimestampedReport,
};
