//! Wire format of the Socket Supervisor's sampling-ledger datagrams.
//!
//! When the supervisor runs with sampling or a trace budget enabled it
//! sends one extra UDP datagram at the end of the run: the app's
//! [`SamplingLedger`] — how many reports it observed, emitted, and
//! suppressed, by bucket. The analysis side needs those counts to
//! scale the sampled volumes back to population estimates; carrying
//! them on the same out-of-band channel as the reports means they
//! survive any transport the reports survive.
//!
//! Layout (all integers little-endian, fixed width):
//!
//! ```text
//! magic              4 bytes  "SLGR"
//! apk sha256         32 bytes
//! reports_observed   8 bytes
//! reports_emitted    8 bytes
//! sampled_out        8 bytes
//! budget_suppressed  8 bytes
//! windows_exhausted  8 bytes
//! ```
//!
//! An exact run (rate 1.0, no budget) emits no ledger at all — the
//! capture stays byte-identical to a build without the sampling layer.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use spector_dex::sha256::Digest;
use spector_sampling::SamplingLedger;

use crate::report::{ReportErrorKind, ReportParseError};

/// Magic prefix of every ledger datagram.
pub const LEDGER_MAGIC: &[u8; 4] = b"SLGR";

/// Encoded size: magic + digest + five fixed-width counters.
pub const LEDGER_WIRE_LEN: usize = 4 + 32 + 5 * 8;

/// One app run's sampling ledger as carried on the wire.
/// `ledgers_lost` is a decode-side tally, so it never travels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerRecord {
    /// SHA-256 of the apk under test.
    pub apk_sha256: Digest,
    /// The run's counted loss.
    pub ledger: SamplingLedger,
}

impl LedgerRecord {
    /// Serializes the record into datagram payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(LEDGER_WIRE_LEN);
        buf.put_slice(LEDGER_MAGIC);
        buf.put_slice(&self.apk_sha256.0);
        buf.put_u64_le(self.ledger.reports_observed);
        buf.put_u64_le(self.ledger.reports_emitted);
        buf.put_u64_le(self.ledger.sampled_out);
        buf.put_u64_le(self.ledger.budget_suppressed);
        buf.put_u64_le(self.ledger.windows_exhausted);
        buf.to_vec()
    }

    /// Parses a ledger record from datagram payload bytes.
    ///
    /// # Errors
    ///
    /// Classified like [`SocketReport::decode`](crate::SocketReport::decode):
    /// a strict prefix of a valid encoding is `Truncated`; wrong magic,
    /// trailing bytes, or counters that violate the balance invariant
    /// (`observed == emitted + sampled_out + budget_suppressed`) are
    /// `Malformed`.
    pub fn decode(payload: &[u8]) -> Result<Self, ReportParseError> {
        let mut buf = Bytes::copy_from_slice(payload);
        if buf.remaining() < 4 {
            return Err(parse_error(
                if LEDGER_MAGIC.starts_with(payload) {
                    ReportErrorKind::Truncated
                } else {
                    ReportErrorKind::Malformed
                },
                "truncated magic",
            ));
        }
        if &buf.split_to(4)[..] != LEDGER_MAGIC {
            return Err(parse_error(ReportErrorKind::Malformed, "bad magic"));
        }
        if payload.len() < LEDGER_WIRE_LEN {
            return Err(parse_error(ReportErrorKind::Truncated, "truncated body"));
        }
        if payload.len() > LEDGER_WIRE_LEN {
            return Err(parse_error(ReportErrorKind::Malformed, "trailing bytes"));
        }
        let mut digest = [0u8; 32];
        buf.copy_to_slice(&mut digest);
        let ledger = SamplingLedger {
            reports_observed: buf.get_u64_le(),
            reports_emitted: buf.get_u64_le(),
            sampled_out: buf.get_u64_le(),
            budget_suppressed: buf.get_u64_le(),
            windows_exhausted: buf.get_u64_le(),
            ledgers_lost: 0,
        };
        if !ledger.is_balanced() {
            return Err(parse_error(
                ReportErrorKind::Malformed,
                "ledger counters violate the balance invariant",
            ));
        }
        Ok(LedgerRecord {
            apk_sha256: Digest(digest),
            ledger,
        })
    }

    /// Quick check whether a UDP payload is a ledger datagram — the
    /// peel every decode path applies before trying report decode.
    pub fn is_ledger_payload(payload: &[u8]) -> bool {
        payload.len() >= 4 && &payload[..4] == LEDGER_MAGIC
    }
}

fn parse_error(kind: ReportErrorKind, message: &str) -> ReportParseError {
    ReportParseError {
        kind,
        message: format!("sampling ledger: {message}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_dex::sha256::Sha256;

    fn sample() -> LedgerRecord {
        LedgerRecord {
            apk_sha256: Sha256::digest(b"apk-bytes"),
            ledger: SamplingLedger {
                reports_observed: 40,
                reports_emitted: 25,
                sampled_out: 10,
                budget_suppressed: 5,
                windows_exhausted: 2,
                ledgers_lost: 0,
            },
        }
    }

    #[test]
    fn roundtrip() {
        let record = sample();
        let bytes = record.encode();
        assert_eq!(bytes.len(), LEDGER_WIRE_LEN);
        assert_eq!(LedgerRecord::decode(&bytes).unwrap(), record);
    }

    #[test]
    fn every_strict_prefix_is_truncated() {
        let bytes = sample().encode();
        for len in 1..bytes.len() {
            let err = LedgerRecord::decode(&bytes[..len]).unwrap_err();
            assert_eq!(err.kind, ReportErrorKind::Truncated, "len {len}");
        }
    }

    #[test]
    fn rejects_wrong_magic_and_trailing_bytes() {
        let mut bad_magic = sample().encode();
        bad_magic[0] = b'X';
        assert_eq!(
            LedgerRecord::decode(&bad_magic).unwrap_err().kind,
            ReportErrorKind::Malformed
        );
        let mut trailing = sample().encode();
        trailing.push(0);
        assert_eq!(
            LedgerRecord::decode(&trailing).unwrap_err().kind,
            ReportErrorKind::Malformed
        );
    }

    #[test]
    fn rejects_unbalanced_counters() {
        let mut record = sample();
        record.ledger.reports_observed += 1;
        let err = LedgerRecord::decode(&record.encode()).unwrap_err();
        assert_eq!(err.kind, ReportErrorKind::Malformed);
    }

    #[test]
    fn ledger_and_report_magics_are_disjoint() {
        let bytes = sample().encode();
        assert!(LedgerRecord::is_ledger_payload(&bytes));
        assert!(!crate::SocketReport::is_report_payload(&bytes));
        assert!(!LedgerRecord::is_ledger_payload(b"SRPT"));
        assert!(!LedgerRecord::is_ledger_payload(b"SL"));
        // A ledger payload never peeks as a report either, so the live
        // producer routes it to the fallback shard.
        assert_eq!(crate::SocketReport::peek_pair(&bytes), None);
    }
}
