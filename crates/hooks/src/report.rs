//! Wire format of the Socket Supervisor's UDP report datagrams.
//!
//! Legacy layout — emitted for every IPv4 connection-level report, so
//! pre-dual-stack campaigns produce byte-identical datagrams (integers
//! little-endian unless noted, lengths uleb128):
//!
//! ```text
//! magic       4 bytes  "SRPT"
//! apk sha256  32 bytes
//! src ip      4 bytes  (network order)
//! src port    2 bytes  (big endian)
//! dst ip      4 bytes
//! dst port    2 bytes
//! timestamp   8 bytes  little-endian microseconds
//! frame count uleb128
//!   frames    uleb128 length + UTF-8, most recent first
//! ```
//!
//! Modern layout — used only when the report cannot be expressed in
//! the legacy form (an IPv6 endpoint, or a per-stream report carrying
//! a keep-alive stream ordinal):
//!
//! ```text
//! magic       4 bytes  "SRP2"
//! apk sha256  32 bytes
//! family      1 byte   4 or 6
//! src ip      4 or 16 bytes per family (network order)
//! src port    2 bytes  (big endian)
//! dst ip      4 or 16 bytes
//! dst port    2 bytes
//! timestamp   8 bytes  little-endian microseconds
//! stream      uleb128  ordinal + 1 (0 = connection-level report)
//! frame count uleb128
//!   frames    uleb128 length + UTF-8, most recent first
//! ```
//!
//! Frames are the *translated* stack: full smali type signatures where
//! the app's dex defines the method, the raw dotted name for framework
//! frames the dex knows nothing about.

use std::error::Error;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use spector_dex::sha256::Digest;
use spector_netsim::packet::{canonical_ip, SocketPair};

/// Magic prefix of legacy (IPv4, connection-level) report datagrams.
pub const REPORT_MAGIC: &[u8; 4] = b"SRPT";
/// Magic prefix of modern (IPv6-capable, stream-aware) report datagrams.
pub const REPORT_MAGIC_V2: &[u8; 4] = b"SRP2";

/// One socket report: everything the offline pipeline needs to join a
/// stack trace with its TCP stream in the capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketReport {
    /// SHA-256 of the apk under test.
    pub apk_sha256: Digest,
    /// The connection 4-tuple at hook time.
    pub pair: SocketPair,
    /// Virtual timestamp when the hook fired (microseconds).
    pub timestamp_micros: u64,
    /// Keep-alive stream ordinal within the connection (0-based) for
    /// per-stream reports; `None` for connection-level reports, which
    /// attribute the whole epoch's volume as before.
    pub stream: Option<u32>,
    /// Translated stack frames, most recent first.
    pub frames: Vec<String>,
}

/// Why a report datagram failed to parse. Truncation is what datagram
/// loss and capture snapping produce — the payload is a strict prefix
/// of a possible encoding; everything else (wrong magic, impossible
/// counts, non-UTF-8 frames, trailing bytes) is malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportErrorKind {
    /// The payload ends before the encoding does.
    Truncated,
    /// The payload is structurally not a report.
    Malformed,
}

/// Error produced when parsing a malformed report datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportParseError {
    /// Failure classification.
    pub kind: ReportErrorKind,
    /// What was malformed.
    pub message: String,
}

impl ReportParseError {
    fn new(kind: ReportErrorKind, message: impl Into<String>) -> Self {
        ReportParseError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ReportParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed socket report: {}", self.message)
    }
}

impl Error for ReportParseError {}

fn put_uleb128(buf: &mut BytesMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            break;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_uleb128(buf: &mut Bytes) -> Result<u64, ReportParseError> {
    let mut result: u64 = 0;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(ReportParseError::new(
                ReportErrorKind::Truncated,
                "truncated uleb128",
            ));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(ReportParseError::new(
                ReportErrorKind::Malformed,
                "uleb128 overflow",
            ));
        }
        result |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
    }
}

/// Writes an address known to be IPv4 as its 4 network-order bytes.
fn put_ip4(buf: &mut BytesMut, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => buf.put_slice(&v4.octets()),
        IpAddr::V6(_) => unreachable!("family-4 encoding of a v6 address"),
    }
}

/// The 16-byte v6 form of an address for SRP2 family-6 encoding.
fn v6_octets(ip: IpAddr) -> [u8; 16] {
    match ip {
        IpAddr::V4(v4) => v4.to_ipv6_mapped().octets(),
        IpAddr::V6(v6) => v6.octets(),
    }
}

impl SocketReport {
    /// `true` when this report needs the modern "SRP2" layout: any v6
    /// endpoint, or a per-stream ordinal. Everything else encodes as a
    /// byte-identical legacy "SRPT" datagram.
    fn needs_v2(&self) -> bool {
        self.stream.is_some()
            || !matches!(
                (self.pair.src_ip, self.pair.dst_ip),
                (IpAddr::V4(_), IpAddr::V4(_))
            )
    }

    /// Serializes the report into datagram payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        if !self.needs_v2() {
            buf.put_slice(REPORT_MAGIC);
            buf.put_slice(&self.apk_sha256.0);
            put_ip4(&mut buf, self.pair.src_ip);
            buf.put_u16(self.pair.src_port);
            put_ip4(&mut buf, self.pair.dst_ip);
            buf.put_u16(self.pair.dst_port);
            buf.put_u64_le(self.timestamp_micros);
        } else {
            let family6 = self.pair.src_ip.is_ipv6() || self.pair.dst_ip.is_ipv6();
            buf.put_slice(REPORT_MAGIC_V2);
            buf.put_slice(&self.apk_sha256.0);
            buf.put_u8(if family6 { 6 } else { 4 });
            if family6 {
                buf.put_slice(&v6_octets(self.pair.src_ip));
                buf.put_u16(self.pair.src_port);
                buf.put_slice(&v6_octets(self.pair.dst_ip));
            } else {
                put_ip4(&mut buf, self.pair.src_ip);
                buf.put_u16(self.pair.src_port);
                put_ip4(&mut buf, self.pair.dst_ip);
            }
            buf.put_u16(self.pair.dst_port);
            buf.put_u64_le(self.timestamp_micros);
            put_uleb128(&mut buf, self.stream.map(|s| u64::from(s) + 1).unwrap_or(0));
        }
        put_uleb128(&mut buf, self.frames.len() as u64);
        for frame in &self.frames {
            put_uleb128(&mut buf, frame.len() as u64);
            buf.put_slice(frame.as_bytes());
        }
        buf.to_vec()
    }

    /// Parses a report from datagram payload bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ReportParseError`] on bad magic, truncation, non-UTF-8
    /// frames, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, ReportParseError> {
        let mut buf = Bytes::copy_from_slice(payload);
        // A short payload that is a prefix of either magic counts as
        // truncated; anything else up front is a foreign datagram.
        if buf.remaining() < 4 {
            return Err(ReportParseError::new(
                if REPORT_MAGIC.starts_with(payload) || REPORT_MAGIC_V2.starts_with(payload) {
                    ReportErrorKind::Truncated
                } else {
                    ReportErrorKind::Malformed
                },
                "truncated magic",
            ));
        }
        let magic = buf.split_to(4);
        let v2 = match &magic[..] {
            m if m == REPORT_MAGIC => false,
            m if m == REPORT_MAGIC_V2 => true,
            _ => {
                return Err(ReportParseError::new(
                    ReportErrorKind::Malformed,
                    "bad magic",
                ));
            }
        };
        if buf.remaining() < 32 {
            return Err(ReportParseError::new(
                ReportErrorKind::Truncated,
                "truncated header",
            ));
        }
        let mut digest = [0u8; 32];
        buf.copy_to_slice(&mut digest);
        let family6 = if v2 {
            if !buf.has_remaining() {
                return Err(ReportParseError::new(
                    ReportErrorKind::Truncated,
                    "truncated family",
                ));
            }
            match buf.get_u8() {
                4 => false,
                6 => true,
                other => {
                    return Err(ReportParseError::new(
                        ReportErrorKind::Malformed,
                        format!("bad address family {other}"),
                    ));
                }
            }
        } else {
            false
        };
        let addr_len = if family6 { 16 } else { 4 };
        if buf.remaining() < 2 * addr_len + 4 + 8 {
            return Err(ReportParseError::new(
                ReportErrorKind::Truncated,
                "truncated header",
            ));
        }
        let get_ip = |buf: &mut Bytes| -> IpAddr {
            if family6 {
                let mut ip = [0u8; 16];
                buf.copy_to_slice(&mut ip);
                // A v4 endpoint of a mixed-family pair travels
                // v4-mapped on the v6 wire; fold it back so decode
                // restores the address the supervisor observed.
                canonical_ip(IpAddr::V6(Ipv6Addr::from(ip)))
            } else {
                let mut ip = [0u8; 4];
                buf.copy_to_slice(&mut ip);
                IpAddr::V4(Ipv4Addr::from(ip))
            }
        };
        let src_ip = get_ip(&mut buf);
        let src_port = buf.get_u16();
        let dst_ip = get_ip(&mut buf);
        let dst_port = buf.get_u16();
        let timestamp_micros = buf.get_u64_le();
        let stream = if v2 {
            match get_uleb128(&mut buf)? {
                0 => None,
                n if n <= u64::from(u32::MAX) => Some((n - 1) as u32),
                _ => {
                    return Err(ReportParseError::new(
                        ReportErrorKind::Malformed,
                        "stream ordinal overflow",
                    ));
                }
            }
        } else {
            None
        };
        let count = get_uleb128(&mut buf)? as usize;
        if count > payload.len() {
            return Err(ReportParseError::new(
                ReportErrorKind::Malformed,
                "frame count exceeds payload",
            ));
        }
        let mut frames = Vec::with_capacity(count);
        for _ in 0..count {
            let len = get_uleb128(&mut buf)? as usize;
            if buf.remaining() < len {
                return Err(ReportParseError::new(
                    ReportErrorKind::Truncated,
                    "truncated frame",
                ));
            }
            let raw = buf.split_to(len);
            frames.push(
                std::str::from_utf8(&raw)
                    .map_err(|_| {
                        ReportParseError::new(ReportErrorKind::Malformed, "frame not UTF-8")
                    })?
                    .to_owned(),
            );
        }
        if buf.has_remaining() {
            return Err(ReportParseError::new(
                ReportErrorKind::Malformed,
                "trailing bytes",
            ));
        }
        Ok(SocketReport {
            apk_sha256: Digest(digest),
            pair: SocketPair::new(src_ip, src_port, dst_ip, dst_port),
            timestamp_micros,
            stream,
            frames,
        })
    }

    /// Quick check whether a UDP payload looks like a supervisor report
    /// — used by the pipeline to exclude instrumentation traffic from
    /// the app's accounting.
    pub fn is_report_payload(payload: &[u8]) -> bool {
        payload.len() >= 4 && (&payload[..4] == REPORT_MAGIC || &payload[..4] == REPORT_MAGIC_V2)
    }

    /// Bytes [`peek_pair`](Self::peek_pair) needs for a legacy "SRPT"
    /// datagram: magic (4) + apk digest (32) + the embedded v4 socket
    /// pair (12). "SRP2" datagrams need up to
    /// [`PEEK_PREFIX_LEN_V6`](Self::PEEK_PREFIX_LEN_V6).
    pub const PEEK_PREFIX_LEN: usize = 4 + 32 + 12;

    /// Bytes the peek needs for the largest header form: "SRP2" with
    /// family 6 (magic + digest + family byte + 36-byte pair).
    pub const PEEK_PREFIX_LEN_V6: usize = 4 + 32 + 1 + 36;

    /// Extracts the report's *embedded* socket pair from the fixed
    /// header prefix without decoding the rest of the payload. This is
    /// the producer-side routing peek of the live engine: a report
    /// must land on the shard that owns its flow's epochs, which is
    /// keyed by this pair (not by the carrying datagram's 4-tuple).
    /// Handles both magics; the stream ordinal does not affect routing
    /// (all streams of a connection share its flow epochs).
    ///
    /// Returns `None` when the magic is wrong or the payload is too
    /// short — in which case [`decode`](Self::decode) is guaranteed to
    /// fail too, so the caller can route the bytes to a fallback shard
    /// and let the shard-local decode classify the failure.
    pub fn peek_pair(payload: &[u8]) -> Option<SocketPair> {
        if payload.len() < 4 {
            return None;
        }
        let (pair, family6) = match &payload[..4] {
            m if m == REPORT_MAGIC => (payload.get(36..48)?, false),
            m if m == REPORT_MAGIC_V2 => match payload.get(36)? {
                4 => (payload.get(37..49)?, false),
                6 => (payload.get(37..73)?, true),
                _ => return None,
            },
            _ => return None,
        };
        if family6 {
            let mut src = [0u8; 16];
            src.copy_from_slice(&pair[0..16]);
            let mut dst = [0u8; 16];
            dst.copy_from_slice(&pair[18..34]);
            // Fold v4-mapped endpoints exactly as decode() does, so
            // peek-based routing agrees with post-decode routing.
            Some(SocketPair::new(
                canonical_ip(IpAddr::V6(Ipv6Addr::from(src))),
                u16::from_be_bytes([pair[16], pair[17]]),
                canonical_ip(IpAddr::V6(Ipv6Addr::from(dst))),
                u16::from_be_bytes([pair[34], pair[35]]),
            ))
        } else {
            Some(SocketPair::new(
                Ipv4Addr::new(pair[0], pair[1], pair[2], pair[3]),
                u16::from_be_bytes([pair[4], pair[5]]),
                Ipv4Addr::new(pair[6], pair[7], pair[8], pair[9]),
                u16::from_be_bytes([pair[10], pair[11]]),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_dex::sha256::Sha256;

    fn sample() -> SocketReport {
        SocketReport {
            apk_sha256: Sha256::digest(b"apk-bytes"),
            pair: SocketPair::new(
                Ipv4Addr::new(10, 0, 2, 15),
                40_001,
                Ipv4Addr::new(198, 51, 100, 7),
                443,
            ),
            timestamp_micros: 123_456_789,
            stream: None,
            frames: vec![
                "java.net.Socket.connect".to_owned(),
                "Lcom/unity3d/ads/android/cache/b;->a()V".to_owned(),
                "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/Object;)Ljava/lang/Object;".to_owned(),
                "android.os.AsyncTask$2.call".to_owned(),
            ],
        }
    }

    fn sample_v6() -> SocketReport {
        let mut report = sample();
        report.pair = SocketPair::new(
            "fd00:5eca::a00:20f".parse::<Ipv6Addr>().unwrap(),
            40_001,
            "fd00:5eca::c633:6407".parse::<Ipv6Addr>().unwrap(),
            443,
        );
        report.stream = Some(2);
        report
    }

    #[test]
    fn roundtrip() {
        let report = sample();
        let decoded = SocketReport::decode(&report.encode()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn legacy_reports_keep_the_legacy_magic() {
        // The inertness pin: a v4 connection-level report must encode
        // as a byte-identical legacy "SRPT" datagram.
        let bytes = sample().encode();
        assert_eq!(&bytes[..4], REPORT_MAGIC);
    }

    #[test]
    fn v6_stream_roundtrip() {
        let report = sample_v6();
        let bytes = report.encode();
        assert_eq!(&bytes[..4], REPORT_MAGIC_V2);
        assert_eq!(SocketReport::decode(&bytes).unwrap(), report);
        assert!(SocketReport::is_report_payload(&bytes));
    }

    #[test]
    fn v4_stream_report_uses_v2_family_4() {
        // A pooled stream on a v4 connection: v2 magic, 4-byte addrs.
        let mut report = sample();
        report.stream = Some(0);
        let bytes = report.encode();
        assert_eq!(&bytes[..4], REPORT_MAGIC_V2);
        assert_eq!(bytes[36], 4);
        assert_eq!(SocketReport::decode(&bytes).unwrap(), report);
        assert_eq!(SocketReport::peek_pair(&bytes), Some(report.pair));
    }

    #[test]
    fn v2_rejects_truncation_everywhere() {
        let bytes = sample_v6().encode();
        for len in 0..bytes.len() {
            let err = SocketReport::decode(&bytes[..len]).unwrap_err();
            assert_eq!(err.kind, ReportErrorKind::Truncated, "len {len}");
        }
    }

    #[test]
    fn v2_rejects_bad_family_and_trailing() {
        let mut bytes = sample_v6().encode();
        bytes[36] = 5;
        assert_eq!(
            SocketReport::decode(&bytes).unwrap_err().kind,
            ReportErrorKind::Malformed
        );
        assert_eq!(SocketReport::peek_pair(&bytes), None);
        let mut bytes = sample_v6().encode();
        bytes.push(0);
        assert_eq!(
            SocketReport::decode(&bytes).unwrap_err().kind,
            ReportErrorKind::Malformed
        );
    }

    #[test]
    fn v2_peek_pair_reads_the_embedded_pair() {
        let report = sample_v6();
        let bytes = report.encode();
        assert_eq!(SocketReport::peek_pair(&bytes), Some(report.pair));
        for len in 0..SocketReport::PEEK_PREFIX_LEN_V6 {
            assert_eq!(SocketReport::peek_pair(&bytes[..len]), None, "len {len}");
            assert!(SocketReport::decode(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn empty_frames_roundtrip() {
        let mut report = sample();
        report.frames.clear();
        assert_eq!(SocketReport::decode(&report.encode()).unwrap(), report);
    }

    #[test]
    fn is_report_payload_detects_magic() {
        assert!(SocketReport::is_report_payload(&sample().encode()));
        assert!(!SocketReport::is_report_payload(b"SRP"));
        assert!(!SocketReport::is_report_payload(b"HTTP/1.1 200 OK"));
        assert!(!SocketReport::is_report_payload(&[]));
    }

    #[test]
    fn peek_pair_reads_the_embedded_pair_without_decoding() {
        let report = sample();
        let bytes = report.encode();
        assert_eq!(SocketReport::peek_pair(&bytes), Some(report.pair));
        // Too short or wrong magic: no peek — and decode fails too.
        for len in 0..SocketReport::PEEK_PREFIX_LEN {
            assert_eq!(SocketReport::peek_pair(&bytes[..len]), None, "len {len}");
            assert!(SocketReport::decode(&bytes[..len]).is_err());
        }
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(SocketReport::peek_pair(&bad_magic), None);
        assert!(SocketReport::decode(&bad_magic).is_err());
        // A corrupted *body* still peeks (the pair prefix is intact):
        // routing works, the shard-local decode classifies the damage.
        let mut bad_body = bytes.clone();
        let last = bad_body.len() - 1;
        bad_body[last] ^= 0xff;
        assert_eq!(SocketReport::peek_pair(&bad_body), Some(report.pair));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = SocketReport::decode(&bytes[..len]).unwrap_err();
            assert_eq!(err.kind, ReportErrorKind::Truncated, "len {len}");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = sample().encode();
        bytes.push(0);
        let err = SocketReport::decode(&bytes).unwrap_err();
        assert_eq!(err.kind, ReportErrorKind::Malformed);
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        let err = SocketReport::decode(&bytes).unwrap_err();
        assert_eq!(err.kind, ReportErrorKind::Malformed);
    }
}
