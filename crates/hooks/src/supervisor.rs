//! The Socket Supervisor hook module.
//!
//! Attached to the runtime's post-`connect` hook point, the supervisor
//! performs the §II-B2 sequence for every socket the app creates:
//!
//! 1. capture the active stack trace (`getStackTrace` — dotted names,
//!    most recent first);
//! 2. translate each frame to its full method *type signature* using the
//!    parsed dex (framework frames, which the dex does not define, pass
//!    through untranslated — the offline filter removes them anyway);
//! 3. obtain the socket-pair parameters via the shared-library syscalls
//!    (`getsockname`/`getpeername` — here [`NetStack::socket_pair`]);
//! 4. prepend the apk's SHA-256 and the connection parameters, and send
//!    the result as one UDP datagram to the collection server.
//!
//! Translation ambiguity: a dotted name does not carry parameter types,
//! so overloaded methods map to several candidate signatures; like the
//! original (which keys off dex parse order), the supervisor picks the
//! first candidate in definition order.

use std::net::Ipv4Addr;

use spector_dex::model::SigIndex;
use spector_dex::sha256::Digest;
use spector_netsim::packet::SocketPair;
use spector_netsim::SocketId;
use spector_runtime::{HookContext, RuntimeHook};
use spector_sampling::{should_sample, BudgetState, SamplingConfig, SamplingLedger};

use crate::ledger::LedgerRecord;
use crate::report::{ReportErrorKind, ReportParseError, SocketReport};

/// Supervisor settings.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Collection server address.
    pub collector_ip: Ipv4Addr,
    /// Collection server UDP port.
    pub collector_port: u16,
    /// Instrumentation latency added per hooked connection, in
    /// microseconds. The paper measured a 0.5 ms (9.75 %) worst-case
    /// per-request delay; the default models a typical 300 µs.
    pub hook_latency_micros: u64,
    /// Sampled-tracing settings. The default is exact (rate 1.0, no
    /// budget), in which case the supervisor's wire behavior is
    /// byte-identical to a build without the sampling layer.
    pub sampling: SamplingConfig,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            collector_ip: Ipv4Addr::new(10, 0, 2, 2),
            collector_port: 47_000,
            hook_latency_micros: 300,
            sampling: SamplingConfig::default(),
        }
    }
}

/// The hook module. One instance is attached per app run.
#[derive(Debug)]
pub struct SocketSupervisor {
    apk_sha256: Digest,
    index: SigIndex,
    config: SupervisorConfig,
    reports_sent: u64,
    ledger: SamplingLedger,
    budget: BudgetState,
}

impl SocketSupervisor {
    /// Creates a supervisor for an app with the given apk checksum and
    /// dex signature index.
    pub fn new(apk_sha256: Digest, index: SigIndex, config: SupervisorConfig) -> Self {
        SocketSupervisor {
            apk_sha256,
            index,
            config,
            reports_sent: 0,
            ledger: SamplingLedger::default(),
            budget: BudgetState::default(),
        }
    }

    /// Number of report datagrams sent so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// The run's sampling ledger so far (all-zero on the exact path).
    pub fn ledger(&self) -> SamplingLedger {
        self.ledger
    }

    /// The seeded inclusion decision for one socket: keyed by the
    /// sampling seed, the apk digest, and the canonical 4-tuple, so it
    /// is reproducible across workers, shards, and re-runs.
    fn sampled(&self, pair: &SocketPair) -> bool {
        use std::net::IpAddr;
        let canonical = pair.canonical();
        // Pure-v4 pairs keep the exact 12-byte key the pre-dual-stack
        // supervisor hashed, so legacy sampling decisions are inert;
        // any v6 endpoint widens both addresses to 16 bytes (36 total).
        let key: Vec<u8> = match (canonical.src_ip, canonical.dst_ip) {
            (IpAddr::V4(src), IpAddr::V4(dst)) => {
                let mut key = Vec::with_capacity(12);
                key.extend_from_slice(&src.octets());
                key.extend_from_slice(&canonical.src_port.to_be_bytes());
                key.extend_from_slice(&dst.octets());
                key.extend_from_slice(&canonical.dst_port.to_be_bytes());
                key
            }
            (src, dst) => {
                let widen = |ip: IpAddr| match ip {
                    IpAddr::V4(v4) => v4.to_ipv6_mapped().octets(),
                    IpAddr::V6(v6) => v6.octets(),
                };
                let mut key = Vec::with_capacity(36);
                key.extend_from_slice(&widen(src));
                key.extend_from_slice(&canonical.src_port.to_be_bytes());
                key.extend_from_slice(&widen(dst));
                key.extend_from_slice(&canonical.dst_port.to_be_bytes());
                key
            }
        };
        should_sample(
            self.config.sampling.seed,
            &self.apk_sha256.0,
            &key,
            self.config.sampling.rate,
        )
    }

    /// Translates one dotted stack-frame name: the full type signature
    /// when the app's dex defines the method, the dotted name otherwise.
    fn translate_frame(&self, dotted: &str) -> String {
        match self.index.candidates(dotted).first() {
            Some(&id) => self
                .index
                .sig_of(id)
                .map(|sig| sig.as_smali().to_owned())
                .unwrap_or_else(|| dotted.to_owned()),
            None => dotted.to_owned(),
        }
    }

    /// The shared report path behind both hook points: sampling gate,
    /// budget gate, stack translation, latency model, datagram send.
    /// `stream` is `None` for the connection-level report fired at
    /// connect time, `Some(ordinal)` for keep-alive per-stream reports.
    fn emit_report(&mut self, ctx: &mut HookContext<'_>, socket: SocketId, stream: Option<u32>) {
        // Shared-library syscall shim: getsockname + getpeername.
        let Some(pair) = ctx.net.socket_pair(socket) else {
            return;
        };
        self.ledger.reports_observed += 1;
        // Sampled tracing: suppressed reports are counted, never
        // silent, and the decision never touches the virtual clock —
        // at rate 1.0 with no budget this path is byte-identical to
        // the unsampled supervisor. The decision is per-socket (not
        // per-stream), so a connection's streams sample as one unit.
        if !self.sampled(&pair) {
            self.ledger.sampled_out += 1;
            return;
        }
        if let Some(budget) = self.config.sampling.budget {
            let now = ctx.net.clock().now_micros();
            if !self.budget.admit(&budget, now, &mut self.ledger) {
                return;
            }
        }
        // getStackTrace: most recent first.
        let frames: Vec<String> = ctx
            .stack
            .snapshot()
            .iter()
            .map(|dotted| self.translate_frame(dotted))
            .collect();
        let report = SocketReport {
            apk_sha256: self.apk_sha256,
            pair,
            timestamp_micros: ctx.net.clock().now_micros(),
            stream,
            frames,
        };
        // Model the measured instrumentation latency on the request path.
        ctx.net
            .clock()
            .advance_micros(self.config.hook_latency_micros);
        ctx.net.udp_send(
            self.config.collector_ip,
            self.config.collector_port,
            &report.encode(),
        );
        self.ledger.reports_emitted += 1;
        self.reports_sent += 1;
    }
}

impl RuntimeHook for SocketSupervisor {
    fn after_socket_connect(&mut self, ctx: &mut HookContext<'_>, socket: SocketId) {
        self.emit_report(ctx, socket, None);
    }

    fn after_stream_start(&mut self, ctx: &mut HookContext<'_>, socket: SocketId, ordinal: u32) {
        self.emit_report(ctx, socket, Some(ordinal));
    }

    fn on_run_finish(&mut self, ctx: &mut HookContext<'_>) {
        // Exact runs flush nothing: the capture must stay byte-
        // identical to a build without the sampling layer. Sampled
        // runs ship the ledger on the same out-of-band channel as the
        // reports, with no clock perturbation.
        if self.config.sampling.is_exact() {
            return;
        }
        let record = LedgerRecord {
            apk_sha256: self.apk_sha256,
            ledger: self.ledger,
        };
        ctx.net.udp_send(
            self.config.collector_ip,
            self.config.collector_port,
            &record.encode(),
        );
    }
}

/// Extracts all supervisor reports from a packet capture, in capture
/// order — the collection-server side of the pipeline.
///
/// This decodes every packet in the capture just to find the report
/// datagrams. Pipelines that already walk the capture once (via
/// [`spector_netsim::CaptureIndex`]) should feed the pre-extracted
/// payloads to [`decode_reports`] instead.
pub fn extract_reports(
    capture: &[spector_netsim::pcap::CapturedPacket],
    collector_port: u16,
) -> Vec<SocketReport> {
    use spector_netsim::packet::{decode_frame_ref, TransportRef};
    let mut reports = Vec::new();
    for packet in capture {
        let Ok(frame) = decode_frame_ref(&packet.data) else {
            continue;
        };
        let TransportRef::Udp { payload } = frame.transport else {
            continue;
        };
        if frame.pair.dst_port != collector_port {
            continue;
        }
        if let Ok(report) = SocketReport::decode(payload) {
            reports.push(report);
        }
    }
    reports
}

/// Decodes supervisor reports from raw datagram payloads (the
/// [`spector_netsim::CaptureIndex::report_payloads`] view), in order.
/// Payloads that are not valid reports are skipped, exactly as in
/// [`extract_reports`].
pub fn decode_reports<'a>(payloads: impl IntoIterator<Item = &'a [u8]>) -> Vec<SocketReport> {
    payloads
        .into_iter()
        .filter_map(|payload| SocketReport::decode(payload).ok())
        .collect()
}

/// Per-classification tallies of collector-port payloads that failed
/// report decode — the report-lane half of degraded-mode accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportDecodeStats {
    /// Payloads rejected as truncated (datagram loss, capture snap).
    pub truncated: usize,
    /// Payloads rejected as structurally malformed.
    pub malformed: usize,
}

impl ReportDecodeStats {
    /// Tallies one decode failure.
    pub fn record(&mut self, kind: ReportErrorKind) {
        match kind {
            ReportErrorKind::Truncated => self.truncated += 1,
            ReportErrorKind::Malformed => self.malformed += 1,
        }
    }

    /// Total payloads that failed to decode.
    pub fn total(&self) -> usize {
        self.truncated + self.malformed
    }
}

/// [`decode_reports`], also tallying the payloads that failed to
/// decode by classification. The returned reports are identical to
/// [`decode_reports`]'s; the stats make the skipped payloads
/// measurable instead of silent.
pub fn decode_reports_classified<'a>(
    payloads: impl IntoIterator<Item = &'a [u8]>,
) -> (Vec<SocketReport>, ReportDecodeStats) {
    let mut reports = Vec::new();
    let mut stats = ReportDecodeStats::default();
    for payload in payloads {
        match SocketReport::decode(payload) {
            Ok(report) => reports.push(report),
            Err(error) => stats.record(error.kind),
        }
    }
    (reports, stats)
}

/// A decoded report paired with the capture timestamp of the datagram
/// that carried it.
///
/// The report's own [`SocketReport::timestamp_micros`] is *hook time* —
/// when the supervisor observed the `connect`. `arrival_micros` is when
/// the datagram reached the wire, which is strictly later (hook latency
/// plus send path). Streaming consumers key their time-to-live
/// bookkeeping off arrival, while the flow join keys off hook time,
/// exactly as the offline pipeline does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimestampedReport {
    /// Capture timestamp of the carrying datagram, microseconds.
    pub arrival_micros: u64,
    /// The decoded report.
    pub report: SocketReport,
}

/// Decodes one datagram payload into a [`TimestampedReport`]. Payloads
/// that are not valid reports yield the structured parse error — with
/// its truncated/malformed classification — so streaming consumers can
/// count what they drop instead of silently skipping it (the
/// counterpart of [`decode_reports_classified`]'s stats).
pub fn decode_report_datagram(
    arrival_micros: u64,
    payload: &[u8],
) -> Result<TimestampedReport, ReportParseError> {
    SocketReport::decode(payload).map(|report| TimestampedReport {
        arrival_micros,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_dex::model::{CodeItem, Connector, DexFile, Instruction, MethodDef, NetworkOp};
    use spector_dex::sha256::Sha256;
    use spector_dex::sig::MethodSig;
    use spector_netsim::clock::Clock;
    use spector_netsim::stack::NetStack;
    use spector_runtime::{Runtime, RuntimeConfig};

    fn network_dex() -> DexFile {
        DexFile {
            methods: vec![MethodDef {
                sig: MethodSig::new("com.vendor.sdk", "Fetcher", "pull", "()V"),
                code: CodeItem {
                    instructions: vec![
                        Instruction::Network(NetworkOp {
                            domain: "api.vendor.example".into(),
                            port: 443,
                            send_bytes: 256,
                            recv_bytes: 8_192,
                            connector: Connector::AndroidOkHttp,
                            shape: spector_dex::model::WireShape::Plain,
                        }),
                        Instruction::Return,
                    ],
                },
            }],
            classes: vec![],
        }
    }

    fn run_app() -> (Vec<spector_netsim::pcap::CapturedPacket>, Digest) {
        let dex = network_dex();
        let index = SigIndex::build(&dex);
        let digest = Sha256::digest(b"test-apk");
        let net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        let mut rt = Runtime::new(dex, net, RuntimeConfig::default());
        rt.add_hook(Box::new(SocketSupervisor::new(
            digest,
            index,
            SupervisorConfig::default(),
        )));
        rt.invoke_entry(&MethodSig::new("com.vendor.sdk", "Fetcher", "pull", "()V"));
        let (net, _) = rt.into_parts();
        (net.into_capture(), digest)
    }

    #[test]
    fn report_emitted_per_socket_with_translated_frames() {
        let (capture, digest) = run_app();
        let reports = extract_reports(&capture, SupervisorConfig::default().collector_port);
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.apk_sha256, digest);
        assert_eq!(report.pair.dst_port, 443);
        // Most recent frame is the connect syscall (builtin, untranslated).
        assert_eq!(report.frames[0], "java.net.Socket.connect");
        // The app frame is translated to its full type signature.
        assert!(report
            .frames
            .iter()
            .any(|f| f == "Lcom/vendor/sdk/Fetcher;->pull()V"));
    }

    #[test]
    fn report_pair_matches_a_tcp_flow_in_capture() {
        let (capture, _) = run_app();
        let reports = extract_reports(&capture, SupervisorConfig::default().collector_port);
        let flows = spector_netsim::flows::FlowTable::from_capture(&capture);
        let flow = flows
            .lookup(&reports[0].pair, reports[0].timestamp_micros)
            .expect("report must join with a flow");
        assert_eq!(flow.recv_payload_bytes, 8_192);
        assert_eq!(flow.sent_payload_bytes, 256);
    }

    #[test]
    fn extract_ignores_non_report_udp() {
        let mut net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        net.udp_send(Ipv4Addr::new(10, 0, 2, 2), 47_000, b"not a report");
        net.udp_send(Ipv4Addr::new(10, 0, 2, 2), 9_999, b"SRPTgarbage");
        let reports = extract_reports(net.capture(), 47_000);
        assert!(reports.is_empty());
    }

    #[test]
    fn decode_reports_matches_extract_reports() {
        let (mut capture, _) = run_app();
        // Add noise: a non-report datagram on the collector port and an
        // undecodable frame, both of which each path must skip.
        let mut net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        net.udp_send(
            Ipv4Addr::new(10, 0, 2, 2),
            SupervisorConfig::default().collector_port,
            b"not a report",
        );
        capture.extend(net.into_capture());
        capture.push(spector_netsim::pcap::CapturedPacket {
            timestamp_micros: 7,
            data: vec![0xff, 0x00],
        });

        let port = SupervisorConfig::default().collector_port;
        let via_scan = extract_reports(&capture, port);
        let index = spector_netsim::CaptureIndex::build(&capture, port);
        let via_index = decode_reports(index.report_payloads.iter().copied());
        assert_eq!(via_scan, via_index);
        assert_eq!(via_scan.len(), 1);
    }

    #[test]
    fn overload_translation_picks_first_definition() {
        let dex = DexFile {
            methods: vec![
                MethodDef {
                    sig: MethodSig::new("com.a", "C", "m", "(I)V"),
                    code: CodeItem::default(),
                },
                MethodDef {
                    sig: MethodSig::new("com.a", "C", "m", "(J)V"),
                    code: CodeItem::default(),
                },
            ],
            classes: vec![],
        };
        let sup = SocketSupervisor::new(
            Sha256::digest(b"x"),
            SigIndex::build(&dex),
            SupervisorConfig::default(),
        );
        assert_eq!(sup.translate_frame("com.a.C.m"), "Lcom/a/C;->m(I)V");
        assert_eq!(sup.translate_frame("unknown.F.g"), "unknown.F.g");
    }

    /// Drives the supervisor directly over `sockets` distinct flows,
    /// firing the end-of-run hook point at the end, and returns the
    /// supervisor plus the capture.
    fn drive(
        config: SupervisorConfig,
        sockets: usize,
    ) -> (SocketSupervisor, Vec<spector_netsim::pcap::CapturedPacket>) {
        use spector_runtime::stack::Frame;
        let dex = network_dex();
        let mut sup =
            SocketSupervisor::new(Sha256::digest(b"test-apk"), SigIndex::build(&dex), config);
        let mut net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        let stack = spector_runtime::CallStack::with_base([
            Frame::new("android.os.Handler.dispatchMessage"),
            Frame::new("com.vendor.sdk.Fetcher.pull"),
            Frame::new("java.net.Socket.connect"),
        ]);
        for i in 0..sockets {
            let ip = net.resolve(
                &format!("s{i}.example.net"),
                Ipv4Addr::new(198, 51, 100, (i % 250 + 1) as u8),
            );
            let sock = net.tcp_connect(ip, 443);
            let mut ctx = HookContext {
                stack: &stack,
                net: &mut net,
            };
            sup.after_socket_connect(&mut ctx, sock);
            net.tcp_transfer(sock, 100, 1_000);
            net.tcp_close(sock);
        }
        let mut ctx = HookContext {
            stack: &stack,
            net: &mut net,
        };
        sup.on_run_finish(&mut ctx);
        (sup, net.into_capture())
    }

    #[test]
    fn sampled_run_counts_all_loss_and_ships_the_ledger() {
        let config = SupervisorConfig {
            sampling: spector_sampling::SamplingConfig {
                rate: 0.5,
                seed: 7,
                budget: None,
            },
            ..Default::default()
        };
        let (sup, capture) = drive(config.clone(), 40);
        let ledger = sup.ledger();
        assert_eq!(ledger.reports_observed, 40);
        assert!(ledger.sampled_out > 0, "rate 0.5 over 40 sockets");
        assert!(ledger.reports_emitted > 0);
        assert!(ledger.is_balanced());
        // The capture holds exactly `emitted` reports plus one ledger
        // datagram that round-trips the supervisor's counts.
        let reports = extract_reports(&capture, config.collector_port);
        assert_eq!(reports.len() as u64, ledger.reports_emitted);
        let shipped: Vec<crate::LedgerRecord> = capture
            .iter()
            .filter_map(|p| {
                let frame = spector_netsim::packet::decode_frame_ref(&p.data).ok()?;
                match frame.transport {
                    spector_netsim::packet::TransportRef::Udp { payload }
                        if crate::LedgerRecord::is_ledger_payload(payload) =>
                    {
                        crate::LedgerRecord::decode(payload).ok()
                    }
                    _ => None,
                }
            })
            .collect();
        assert_eq!(shipped.len(), 1);
        assert_eq!(shipped[0].ledger, ledger);
    }

    #[test]
    fn rate_one_without_budget_is_byte_identical_to_unsampled() {
        let exact = SupervisorConfig {
            sampling: spector_sampling::SamplingConfig {
                rate: 1.0,
                seed: 999, // seed must be irrelevant on the exact path
                budget: None,
            },
            ..Default::default()
        };
        let (sup, sampled_capture) = drive(exact, 12);
        let (_, plain_capture) = drive(SupervisorConfig::default(), 12);
        assert_eq!(sampled_capture, plain_capture);
        assert_eq!(sup.ledger().reports_emitted, 12);
        assert_eq!(sup.ledger().suppressed(), 0);
    }

    #[test]
    fn budget_exhaustion_degrades_to_counted_loss() {
        let config = SupervisorConfig {
            sampling: spector_sampling::SamplingConfig {
                rate: 1.0,
                seed: 0,
                budget: Some(spector_sampling::TraceBudget {
                    max_reports: 3,
                    window_micros: 0,
                }),
            },
            ..Default::default()
        };
        let (sup, capture) = drive(config.clone(), 10);
        let ledger = sup.ledger();
        assert_eq!(ledger.reports_observed, 10);
        assert_eq!(ledger.reports_emitted, 3);
        assert_eq!(ledger.budget_suppressed, 7);
        assert_eq!(ledger.windows_exhausted, 1);
        assert!(ledger.is_balanced());
        assert_eq!(
            extract_reports(&capture, config.collector_port).len(),
            3,
            "only the admitted reports reach the wire"
        );
    }

    #[test]
    fn hook_latency_advances_clock() {
        let (capture, _) = run_app();
        // DNS (2) + handshake (3) then the report datagram; its
        // timestamp reflects the added latency relative to the SYN.
        let reports = extract_reports(&capture, SupervisorConfig::default().collector_port);
        assert!(reports[0].timestamp_micros >= 300);
    }
}
