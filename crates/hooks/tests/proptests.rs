//! Property tests for the supervisor report codec.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use spector_dex::sha256::Digest;
use spector_hooks::report::SocketReport;
use spector_netsim::packet::SocketPair;

fn digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 32]>().prop_map(Digest)
}

fn pair() -> impl Strategy<Value = SocketPair> {
    (any::<[u8; 4]>(), any::<u16>(), any::<[u8; 4]>(), any::<u16>()).prop_map(
        |(src, sp, dst, dp)| {
            SocketPair::new(Ipv4Addr::from(src), sp, Ipv4Addr::from(dst), dp)
        },
    )
}

fn report() -> impl Strategy<Value = SocketReport> {
    (
        digest(),
        pair(),
        any::<u64>(),
        proptest::collection::vec(".{0,80}", 0..24),
    )
        .prop_map(|(apk_sha256, pair, timestamp_micros, frames)| SocketReport {
            apk_sha256,
            pair,
            timestamp_micros,
            frames,
        })
}

proptest! {
    #[test]
    fn roundtrip(original in report()) {
        let decoded = SocketReport::decode(&original.encode()).expect("must decode");
        prop_assert_eq!(decoded, original);
    }

    #[test]
    fn every_encoding_is_detected_as_report(original in report()) {
        prop_assert!(SocketReport::is_report_payload(&original.encode()));
    }

    #[test]
    fn decode_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = SocketReport::decode(&noise);
        let _ = SocketReport::is_report_payload(&noise);
    }

    #[test]
    fn any_truncation_fails_cleanly(original in report(), cut in 0usize..1_000) {
        let bytes = original.encode();
        let cut = cut % bytes.len().max(1);
        if cut < bytes.len() {
            prop_assert!(SocketReport::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn single_byte_append_is_rejected(original in report(), extra in any::<u8>()) {
        let mut bytes = original.encode();
        bytes.push(extra);
        prop_assert!(SocketReport::decode(&bytes).is_err());
    }
}
