//! Property tests for the supervisor report codec.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use proptest::prelude::*;
use spector_dex::sha256::Digest;
use spector_hooks::report::SocketReport;
use spector_hooks::{decode_report_datagram, decode_reports_classified, ReportErrorKind};
use spector_netsim::packet::SocketPair;

fn digest() -> impl Strategy<Value = Digest> {
    any::<[u8; 32]>().prop_map(Digest)
}

fn pair() -> impl Strategy<Value = SocketPair> {
    (
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<[u8; 4]>(),
        any::<u16>(),
    )
        .prop_map(|(src, sp, dst, dp)| {
            SocketPair::new(Ipv4Addr::from(src), sp, Ipv4Addr::from(dst), dp)
        })
}

fn ip_any_family() -> impl Strategy<Value = IpAddr> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| IpAddr::V4(Ipv4Addr::from(o))),
        any::<[u8; 16]>().prop_map(|o| IpAddr::V6(Ipv6Addr::from(o))),
    ]
}

/// Pairs spanning both families, including mixed-family endpoints.
/// Addresses are folded through [`canonical_ip`] because the wire
/// carries v4-mapped v6 addresses as plain v4 — a pair stored in the
/// non-canonical `::ffff:a.b.c.d` representation roundtrips to its
/// canonical form, so only fold-stable pairs roundtrip byte-exactly.
fn pair_any_family() -> impl Strategy<Value = SocketPair> {
    use spector_netsim::packet::canonical_ip;
    (ip_any_family(), any::<u16>(), ip_any_family(), any::<u16>()).prop_map(|(src, sp, dst, dp)| {
        SocketPair::new(canonical_ip(src), sp, canonical_ip(dst), dp)
    })
}

fn report() -> impl Strategy<Value = SocketReport> {
    (
        digest(),
        pair(),
        any::<u64>(),
        proptest::collection::vec(".{0,80}", 0..24),
    )
        .prop_map(
            |(apk_sha256, pair, timestamp_micros, frames)| SocketReport {
                stream: None,
                apk_sha256,
                pair,
                timestamp_micros,
                frames,
            },
        )
}

/// Reports exercising the SRP2 extensions: any address family and an
/// optional stream ordinal.
fn report_v2() -> impl Strategy<Value = SocketReport> {
    (
        digest(),
        pair_any_family(),
        any::<u64>(),
        proptest::option::of(any::<u32>()),
        proptest::collection::vec(".{0,80}", 0..24),
    )
        .prop_map(
            |(apk_sha256, pair, timestamp_micros, stream, frames)| SocketReport {
                stream,
                apk_sha256,
                pair,
                timestamp_micros,
                frames,
            },
        )
}

proptest! {
    #[test]
    fn roundtrip(original in report()) {
        let decoded = SocketReport::decode(&original.encode()).expect("must decode");
        prop_assert_eq!(decoded, original);
    }

    #[test]
    fn every_encoding_is_detected_as_report(original in report()) {
        prop_assert!(SocketReport::is_report_payload(&original.encode()));
    }

    #[test]
    fn decode_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = SocketReport::decode(&noise);
        let _ = SocketReport::is_report_payload(&noise);
    }

    #[test]
    fn any_truncation_fails_cleanly(original in report(), cut in 0usize..1_000) {
        let bytes = original.encode();
        let cut = cut % bytes.len().max(1);
        if cut < bytes.len() {
            prop_assert!(SocketReport::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn single_byte_append_is_rejected(original in report(), extra in any::<u8>()) {
        let mut bytes = original.encode();
        bytes.push(extra);
        prop_assert!(SocketReport::decode(&bytes).is_err());
    }

    // --- SRP2 extensions: any family, optional stream ordinal.

    #[test]
    fn v2_roundtrip(original in report_v2()) {
        let decoded = SocketReport::decode(&original.encode()).expect("must decode");
        prop_assert_eq!(decoded, original);
    }

    #[test]
    fn v2_every_encoding_is_detected_as_report(original in report_v2()) {
        prop_assert!(SocketReport::is_report_payload(&original.encode()));
    }

    #[test]
    fn v2_peek_pair_matches_decoded_pair(original in report_v2()) {
        let bytes = original.encode();
        // The ingress peek must agree with the full decode for routing
        // to be stable under any shard count.
        prop_assert_eq!(SocketReport::peek_pair(&bytes), Some(original.pair));
    }

    #[test]
    fn v2_every_strict_prefix_classifies_as_truncated(original in report_v2(), cut in 0usize..1_200) {
        let bytes = original.encode();
        let cut = cut % bytes.len().max(1);
        if cut < bytes.len() {
            let error = SocketReport::decode(&bytes[..cut]).unwrap_err();
            prop_assert_eq!(error.kind, ReportErrorKind::Truncated, "cut at {}", cut);
        }
    }

    #[test]
    fn v2_mutations_never_panic_and_always_classify(
        original in report_v2(),
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = original.encode();
        for (position, value) in mutations {
            if bytes.is_empty() {
                break;
            }
            let position = position % bytes.len();
            bytes[position] = value;
        }
        if let Err(error) = decode_report_datagram(0, &bytes) {
            prop_assert!(matches!(
                error.kind,
                ReportErrorKind::Truncated | ReportErrorKind::Malformed
            ));
        }
    }

    #[test]
    fn legacy_shape_reports_never_use_v2(original in report()) {
        // The SRP2 magic appears only when a report actually needs it:
        // a pure-v4 connection-level report must stay byte-compatible
        // with the legacy decoder's expectations.
        let bytes = original.encode();
        prop_assert_eq!(&bytes[..4], b"SRPT");
    }

    // --- classification fuzz: the degraded-mode accounting depends on
    // --- every decode failure landing in the right bucket.

    #[test]
    fn every_strict_prefix_classifies_as_truncated(original in report(), cut in 0usize..1_000) {
        // Holds for any report with < 57 stack frames (the generator
        // caps at 24): a shorter prefix can't end mid-nothing.
        let bytes = original.encode();
        let cut = cut % bytes.len().max(1);
        if cut < bytes.len() {
            let error = SocketReport::decode(&bytes[..cut]).unwrap_err();
            prop_assert_eq!(error.kind, ReportErrorKind::Truncated, "cut at {}", cut);
        }
    }

    #[test]
    fn trailing_garbage_classifies_as_malformed(original in report(), extra in any::<u8>()) {
        let mut bytes = original.encode();
        bytes.push(extra);
        let error = SocketReport::decode(&bytes).unwrap_err();
        prop_assert_eq!(error.kind, ReportErrorKind::Malformed);
    }

    #[test]
    fn arbitrary_mutations_never_panic_and_always_classify(
        original in report(),
        mutations in proptest::collection::vec((any::<usize>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = original.encode();
        for (position, value) in mutations {
            if bytes.is_empty() {
                break;
            }
            let position = position % bytes.len();
            bytes[position] = value;
        }
        // Either the mutations canceled out / hit don't-care bytes and
        // the report still decodes, or the error carries a
        // classification; decoding must never panic.
        if let Err(error) = decode_report_datagram(0, &bytes) {
            prop_assert!(matches!(
                error.kind,
                ReportErrorKind::Truncated | ReportErrorKind::Malformed
            ));
        }
    }

    #[test]
    fn classified_batch_decode_accounts_for_every_payload(
        reports in proptest::collection::vec(report(), 0..6),
        noise in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..6),
    ) {
        let mut payloads: Vec<Vec<u8>> = reports.iter().map(SocketReport::encode).collect();
        payloads.extend(noise);
        let (decoded, errors) = decode_reports_classified(payloads.iter().map(|p| p.as_slice()));
        // Every payload is either decoded or counted as an error —
        // nothing disappears.
        prop_assert_eq!(decoded.len() + errors.total(), payloads.len());
        prop_assert!(decoded.len() >= reports.len());
    }
}
