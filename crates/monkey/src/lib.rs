//! The UI exerciser: an `adb monkey` stand-in.
//!
//! Libspector drives every app with the Android monkey — 1,000 random UI
//! events with 500 ms throttling (§II-B3) — because app behaviour,
//! including network activity, is overwhelmingly triggered from UI
//! callbacks. Coverage therefore depends on the *statistics* of random
//! event injection, which is what this crate reproduces:
//!
//! * [`ui`] — a widget-tree view of the app derived from its manifest:
//!   activities, their `onCreate` chains, and the handler methods their
//!   widgets dispatch to;
//! * [`monkey`] — the seeded random event generator with the stock
//!   monkey's event classes (touch, motion, key, app switch, …),
//!   configurable event count and throttle.
//!
//! # Examples
//!
//! ```no_run
//! use spector_monkey::monkey::{Monkey, MonkeyConfig};
//! use spector_monkey::ui::UiModel;
//! # fn demo(manifest: &spector_dex::Manifest, runtime: &mut spector_runtime::Runtime) {
//! let ui = UiModel::from_manifest(manifest);
//! let mut monkey = Monkey::new(MonkeyConfig { events: 1_000, throttle_ms: 500, seed: 42, ..Default::default() });
//! let report = monkey.run(runtime, &ui);
//! assert_eq!(report.events_issued, 1_000);
//! # }
//! ```

pub mod monkey;
pub mod ui;

pub use monkey::{Monkey, MonkeyConfig, MonkeyReport};
pub use ui::UiModel;
