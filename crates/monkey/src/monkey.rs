//! The seeded random UI event generator.
//!
//! Mirrors the stock `adb monkey`: a pseudo-random stream of UI events
//! with a fixed inter-event throttle, no model of what the app actually
//! shows (taps land on random positions, so some hit nothing). The paper
//! issues 1,000 events at 500 ms and observes that, because of the
//! randomness, measured coverage is a *lower bound* — reproduced here by
//! the miss probability and unweighted handler choice.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spector_runtime::Runtime;

use crate::ui::UiModel;

/// Classes of injected events, mirroring the monkey's event buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Touch press/release on a random coordinate.
    Touch,
    /// Motion (drag/swipe) gesture.
    Motion,
    /// Key press (volume, dpad, …).
    Key,
    /// Activity switch (launch another of the app's activities).
    AppSwitch,
    /// System keys (back), which can pop to the previous activity.
    Back,
}

/// Monkey settings. Defaults match the paper's experimental setup.
#[derive(Debug, Clone)]
pub struct MonkeyConfig {
    /// Number of events to inject.
    pub events: u32,
    /// Throttle between events, in milliseconds.
    pub throttle_ms: u64,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a touch lands on a live widget.
    pub touch_hit_probability: f64,
}

impl Default for MonkeyConfig {
    fn default() -> Self {
        MonkeyConfig {
            events: 1_000,
            throttle_ms: 500,
            seed: 0,
            touch_hit_probability: 0.45,
        }
    }
}

/// What a monkey run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonkeyReport {
    /// Events injected (equals the configured count).
    pub events_issued: u32,
    /// Handler methods actually dispatched.
    pub handlers_invoked: u32,
    /// Activity launches (including the initial one).
    pub activities_started: u32,
    /// Events that hit no live widget.
    pub misses: u32,
}

/// The exerciser. One instance drives one app session.
#[derive(Debug)]
pub struct Monkey {
    config: MonkeyConfig,
    rng: SmallRng,
}

impl Monkey {
    /// Creates a monkey with the given configuration.
    pub fn new(config: MonkeyConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        Monkey { config, rng }
    }

    fn pick_event(&mut self) -> EventKind {
        // Stock monkey default mix, coarsened to our event classes:
        // touch-heavy with occasional navigation.
        let roll: f64 = self.rng.gen();
        if roll < 0.55 {
            EventKind::Touch
        } else if roll < 0.75 {
            EventKind::Motion
        } else if roll < 0.85 {
            EventKind::Key
        } else if roll < 0.93 {
            EventKind::AppSwitch
        } else {
            EventKind::Back
        }
    }

    /// Runs the configured number of events against `runtime`, driving
    /// the app's UI as described by `ui`. Launches the main activity
    /// first (running its `onCreate` chain — app startup is where the
    /// paper observed AnT libraries already generating traffic).
    pub fn run(&mut self, runtime: &mut Runtime, ui: &UiModel) -> MonkeyReport {
        let mut report = MonkeyReport::default();
        let mut activity_stack: Vec<usize> = Vec::new();

        if !ui.is_empty() {
            self.start_activity(runtime, ui, 0, &mut activity_stack, &mut report);
        }

        for _ in 0..self.config.events {
            report.events_issued += 1;
            runtime
                .net()
                .clock()
                .advance_millis(self.config.throttle_ms);
            let Some(&current) = activity_stack.last() else {
                report.misses += 1;
                continue;
            };
            let activity = &ui.activities()[current];
            match self.pick_event() {
                EventKind::Touch | EventKind::Motion => {
                    let hit = !activity.handlers.is_empty()
                        && self.rng.gen::<f64>() < self.config.touch_hit_probability;
                    if hit {
                        let idx = self.rng.gen_range(0..activity.handlers.len());
                        let sig = activity.handlers[idx].clone();
                        if runtime.invoke_entry(&sig) {
                            report.handlers_invoked += 1;
                        } else {
                            report.misses += 1;
                        }
                    } else {
                        report.misses += 1;
                    }
                }
                EventKind::Key => {
                    // Key events rarely map to app handlers; count as a
                    // miss unless the screen has a handler to reuse.
                    report.misses += 1;
                }
                EventKind::AppSwitch => {
                    if ui.len() > 1 {
                        let next = self.rng.gen_range(0..ui.len());
                        if next != current {
                            self.start_activity(
                                runtime,
                                ui,
                                next,
                                &mut activity_stack,
                                &mut report,
                            );
                            continue;
                        }
                    }
                    report.misses += 1;
                }
                EventKind::Back => {
                    if activity_stack.len() > 1 {
                        activity_stack.pop();
                    } else {
                        report.misses += 1;
                    }
                }
            }
        }
        report
    }

    fn start_activity(
        &mut self,
        runtime: &mut Runtime,
        ui: &UiModel,
        index: usize,
        activity_stack: &mut Vec<usize>,
        report: &mut MonkeyReport,
    ) {
        activity_stack.push(index);
        report.activities_started += 1;
        for sig in &ui.activities()[index].on_create {
            if runtime.invoke_entry(sig) {
                report.handlers_invoked += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_dex::apk::{ActivityDecl, Manifest};
    use spector_dex::model::{CodeItem, DexFile, Instruction, MethodDef};
    use spector_dex::sig::MethodSig;
    use spector_netsim::clock::Clock;
    use spector_netsim::stack::NetStack;
    use spector_runtime::RuntimeConfig;
    use std::net::Ipv4Addr;

    fn sig(class: &str, m: &str) -> MethodSig {
        MethodSig::new("com.app", class, m, "()V")
    }

    fn app() -> (DexFile, Manifest) {
        let methods = vec![
            MethodDef {
                sig: sig("Main", "onCreate"),
                code: CodeItem {
                    instructions: vec![Instruction::Const(1), Instruction::Return],
                },
            },
            MethodDef {
                sig: sig("Main", "onClick"),
                code: CodeItem {
                    instructions: vec![Instruction::Const(2), Instruction::Return],
                },
            },
            MethodDef {
                sig: sig("Settings", "onToggle"),
                code: CodeItem {
                    instructions: vec![Instruction::Const(3), Instruction::Return],
                },
            },
        ];
        let manifest = Manifest {
            package: "com.app".into(),
            version_code: 1,
            category: "TOOLS".into(),
            dex_timestamp: 1,
            vt_scan_date: None,
            application_on_create: vec![],
            activities: vec![
                ActivityDecl {
                    class: "com.app.Main".into(),
                    handlers: vec![sig("Main", "onClick")],
                    on_create: vec![sig("Main", "onCreate")],
                },
                ActivityDecl {
                    class: "com.app.Settings".into(),
                    handlers: vec![sig("Settings", "onToggle")],
                    on_create: vec![],
                },
            ],
        };
        (
            DexFile {
                methods,
                classes: vec![],
            },
            manifest,
        )
    }

    fn runtime(dex: DexFile) -> Runtime {
        Runtime::new(
            dex,
            NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15)),
            RuntimeConfig::default(),
        )
    }

    #[test]
    fn run_issues_exact_event_count_and_advances_clock() {
        let (dex, manifest) = app();
        let mut rt = runtime(dex);
        let ui = UiModel::from_manifest(&manifest);
        let mut monkey = Monkey::new(MonkeyConfig {
            events: 100,
            throttle_ms: 500,
            seed: 7,
            ..Default::default()
        });
        let report = monkey.run(&mut rt, &ui);
        assert_eq!(report.events_issued, 100);
        // 100 events * 500ms throttle = at least 50 virtual seconds.
        assert!(rt.net().clock().now_micros() >= 50_000_000);
        assert!(report.activities_started >= 1);
    }

    #[test]
    fn same_seed_same_outcome() {
        let reports: Vec<MonkeyReport> = (0..2)
            .map(|_| {
                let (dex, manifest) = app();
                let mut rt = runtime(dex);
                let ui = UiModel::from_manifest(&manifest);
                Monkey::new(MonkeyConfig {
                    events: 200,
                    seed: 99,
                    ..Default::default()
                })
                .run(&mut rt, &ui)
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let run = |seed| {
            let (dex, manifest) = app();
            let mut rt = runtime(dex);
            let ui = UiModel::from_manifest(&manifest);
            Monkey::new(MonkeyConfig {
                events: 300,
                seed,
                ..Default::default()
            })
            .run(&mut rt, &ui)
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn handlers_actually_dispatch_into_runtime() {
        let (dex, manifest) = app();
        let mut rt = runtime(dex);
        let ui = UiModel::from_manifest(&manifest);
        let mut monkey = Monkey::new(MonkeyConfig {
            events: 500,
            seed: 3,
            ..Default::default()
        });
        let report = monkey.run(&mut rt, &ui);
        assert!(report.handlers_invoked > 0);
        // onCreate of Main ran, so it must appear in the trace.
        assert!(rt
            .profiler()
            .unique_methods()
            .contains(&sig("Main", "onCreate")));
    }

    #[test]
    fn empty_ui_only_misses() {
        let (dex, mut manifest) = app();
        manifest.activities.clear();
        let mut rt = runtime(dex);
        let ui = UiModel::from_manifest(&manifest);
        let report = Monkey::new(MonkeyConfig {
            events: 50,
            seed: 1,
            ..Default::default()
        })
        .run(&mut rt, &ui);
        assert_eq!(report.misses, 50);
        assert_eq!(report.handlers_invoked, 0);
        assert_eq!(report.activities_started, 0);
    }

    #[test]
    fn more_events_cover_no_fewer_methods() {
        let coverage = |events| {
            let (dex, manifest) = app();
            let mut rt = runtime(dex);
            let ui = UiModel::from_manifest(&manifest);
            Monkey::new(MonkeyConfig {
                events,
                seed: 5,
                ..Default::default()
            })
            .run(&mut rt, &ui);
            rt.profiler().unique_methods().len()
        };
        assert!(coverage(2_000) >= coverage(10));
    }
}
