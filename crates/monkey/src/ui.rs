//! Widget-tree UI model derived from an app's manifest.

use spector_dex::apk::Manifest;
use spector_dex::sig::MethodSig;

/// One activity screen: its startup chain and tappable widgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Activity {
    /// Dotted class name.
    pub class: String,
    /// Methods run when the activity starts.
    pub on_create: Vec<MethodSig>,
    /// Handler methods reachable from widgets on this screen.
    pub handlers: Vec<MethodSig>,
}

/// The app's UI surface as the monkey sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UiModel {
    activities: Vec<Activity>,
}

impl UiModel {
    /// Builds the model from the apk manifest's activity declarations.
    pub fn from_manifest(manifest: &Manifest) -> Self {
        let activities = manifest
            .activities
            .iter()
            .map(|decl| Activity {
                class: decl.class.clone(),
                on_create: decl.on_create.clone(),
                handlers: decl.handlers.clone(),
            })
            .collect();
        UiModel { activities }
    }

    /// All activities, launch order first.
    pub fn activities(&self) -> &[Activity] {
        &self.activities
    }

    /// Number of activities.
    pub fn len(&self) -> usize {
        self.activities.len()
    }

    /// Returns `true` when the app declares no activities (a service-
    /// only app: the monkey will issue events into the void).
    pub fn is_empty(&self) -> bool {
        self.activities.is_empty()
    }

    /// Total distinct handler methods across all screens.
    pub fn handler_count(&self) -> usize {
        self.activities.iter().map(|a| a.handlers.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_dex::apk::ActivityDecl;

    fn sig(m: &str) -> MethodSig {
        MethodSig::new("com.app", "Main", m, "()V")
    }

    fn manifest() -> Manifest {
        Manifest {
            package: "com.app".into(),
            version_code: 1,
            category: "TOOLS".into(),
            dex_timestamp: 1,
            vt_scan_date: None,
            application_on_create: vec![],
            activities: vec![
                ActivityDecl {
                    class: "com.app.Main".into(),
                    handlers: vec![sig("onClick"), sig("onLongClick")],
                    on_create: vec![sig("onCreate")],
                },
                ActivityDecl {
                    class: "com.app.Settings".into(),
                    handlers: vec![sig("onToggle")],
                    on_create: vec![],
                },
            ],
        }
    }

    #[test]
    fn from_manifest_preserves_structure() {
        let ui = UiModel::from_manifest(&manifest());
        assert_eq!(ui.len(), 2);
        assert!(!ui.is_empty());
        assert_eq!(ui.activities()[0].class, "com.app.Main");
        assert_eq!(ui.activities()[0].handlers.len(), 2);
        assert_eq!(ui.handler_count(), 3);
    }

    #[test]
    fn empty_manifest_means_empty_ui() {
        let mut m = manifest();
        m.activities.clear();
        let ui = UiModel::from_manifest(&m);
        assert!(ui.is_empty());
        assert_eq!(ui.handler_count(), 0);
    }
}
