//! Property tests: the interpreter must terminate within its budget and
//! never panic on arbitrary (even adversarial) dex programs, and the
//! profiler's unique set must equal the set of reachable app methods.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use spector_dex::model::{
    CodeItem, Connector, DexFile, Dispatcher, Instruction, MethodDef, MethodRef, NetworkOp,
    WireShape,
};
use spector_dex::sig::MethodSig;
use spector_netsim::clock::Clock;
use spector_netsim::stack::NetStack;
use spector_runtime::{Runtime, RuntimeConfig, TraceMode};

fn sig(i: usize) -> MethodSig {
    MethodSig::new("com.prop", &format!("C{}", i % 5), &format!("m{i}"), "()V")
}

/// Strategy for one instruction given `n` methods (indices may go out
/// of range deliberately — the runtime must tolerate invalid targets).
fn instruction(n: usize) -> impl Strategy<Value = Instruction> {
    prop_oneof![
        Just(Instruction::Nop),
        any::<u32>().prop_map(Instruction::Const),
        (0..(n as u32 + 3)).prop_map(|t| Instruction::Invoke(MethodRef::Internal(t))),
        Just(Instruction::Invoke(MethodRef::External(MethodSig::new(
            "android.util",
            "Log",
            "d",
            "()I"
        )))),
        (0..(n as u32 + 3), 0u8..3).prop_map(|(t, d)| Instruction::InvokeAsync {
            dispatcher: match d {
                0 => Dispatcher::AsyncTask,
                1 => Dispatcher::Thread,
                _ => Dispatcher::Executor,
            },
            target: MethodRef::Internal(t),
        }),
        (0u64..1_000, 0u64..4_000).prop_map(|(send, recv)| Instruction::Network(NetworkOp {
            shape: WireShape::Plain,
            domain: "prop.example".into(),
            port: 443,
            send_bytes: send,
            recv_bytes: recv,
            connector: Connector::AndroidOkHttp,
        })),
        Just(Instruction::Return),
    ]
}

prop_compose! {
    fn random_dex()(n in 1usize..8)
        (bodies in proptest::collection::vec(
            proptest::collection::vec(instruction(8), 0..8), n),
         n in Just(n))
        -> DexFile
    {
        let methods = (0..n)
            .map(|i| MethodDef {
                sig: sig(i),
                code: CodeItem {
                    instructions: bodies[i].clone(),
                },
            })
            .collect();
        DexFile { methods, classes: vec![] }
    }
}

fn runtime_for(dex: DexFile, budget: u64) -> Runtime {
    let net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
    Runtime::new(
        dex,
        net,
        RuntimeConfig {
            max_call_depth: 16,
            instruction_budget: budget,
            trace_mode: TraceMode::UniqueMethods,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interpreter_terminates_within_budget(dex in random_dex(), budget in 1u64..5_000) {
        let entry = dex.methods[0].sig.clone();
        let mut rt = runtime_for(dex, budget);
        rt.invoke_entry(&entry);
        prop_assert!(rt.stats().instructions <= budget);
    }

    #[test]
    fn repeated_entry_is_idempotent_on_coverage(dex in random_dex()) {
        let entry = dex.methods[0].sig.clone();
        let mut rt = runtime_for(dex, 10_000);
        rt.invoke_entry(&entry);
        let first = rt.profiler().unique_methods();
        rt.invoke_entry(&entry);
        prop_assert_eq!(rt.profiler().unique_methods(), first);
    }

    #[test]
    fn traffic_conserved_between_stats_and_capture(dex in random_dex()) {
        let expected_ops = {
            // Upper bound: every Network instruction could fire many
            // times, but never when stats say zero.
            dex.methods
                .iter()
                .flat_map(|m| m.code.network_ops())
                .count()
        };
        let entry = dex.methods[0].sig.clone();
        let mut rt = runtime_for(dex, 20_000);
        rt.invoke_entry(&entry);
        let stats = rt.stats();
        if expected_ops == 0 {
            prop_assert_eq!(stats.network_ops, 0);
            prop_assert_eq!(rt.net().captured_count(), 0);
        }
        if stats.network_ops > 0 {
            // DNS (2 packets, first op only) + handshake (3) + teardown
            // (3) per op at minimum.
            prop_assert!(rt.net().captured_count() as u64 >= stats.network_ops * 6);
        }
    }

    #[test]
    fn unique_methods_subset_of_dex_plus_framework(dex in random_dex()) {
        let dex_sigs: std::collections::HashSet<MethodSig> =
            dex.signatures().cloned().collect();
        let entry = dex.methods[0].sig.clone();
        let mut rt = runtime_for(dex, 10_000);
        rt.invoke_entry(&entry);
        for method in rt.profiler().unique_methods() {
            let in_dex = dex_sigs.contains(&method);
            let is_framework = method.package().starts_with("android");
            prop_assert!(in_dex || is_framework, "unexpected method {}", method);
        }
    }
}
