//! The interpreter driving an app's dex code.
//!
//! One `Runtime` instance models one emulator running one app: it owns
//! the app's parsed dex, the method-trace profiler, the simulated
//! network stack, and the attached hook modules. The UI layer (monkey)
//! calls [`Runtime::invoke_entry`] for each dispatched handler; the
//! interpreter walks the method's code item, recursing into synchronous
//! calls, queueing asynchronous ones onto the simulated scheduler, and
//! performing network operations through the framework client chains.

use std::collections::{HashMap, VecDeque};
use std::net::{Ipv4Addr, Ipv6Addr};

use spector_dex::model::{DexFile, Dispatcher, Instruction, MethodRef, NetworkOp, WireShape};
use spector_dex::sig::MethodSig;
use spector_netsim::shape::{encode_connect_preamble, encode_tls_hello, encode_tls_records};
use spector_netsim::stack::NetStack;

use crate::framework::{connector_frames, dispatcher_frames};
use crate::hook::{HookContext, RuntimeHook};
use crate::profiler::{Profiler, TraceMode};
use crate::stack::{CallStack, Frame};

/// Tunables bounding one runtime instance.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Maximum synchronous call depth (deeper calls are skipped, like a
    /// stack-overflow guard).
    pub max_call_depth: usize,
    /// Instruction budget per dispatched UI event, bounding runaway
    /// generated call graphs.
    pub instruction_budget: u64,
    /// Profiler mode.
    pub trace_mode: TraceMode,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_call_depth: 48,
            instruction_budget: 200_000,
            trace_mode: TraceMode::UniqueMethods,
        }
    }
}

/// Counters describing what a runtime executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Instructions interpreted.
    pub instructions: u64,
    /// Network operations performed.
    pub network_ops: u64,
    /// Async tasks executed.
    pub async_tasks: u64,
    /// Synchronous calls skipped by the depth guard.
    pub depth_truncated: u64,
    /// Framework (external) method invocations.
    pub framework_calls: u64,
    /// Network operations torn down by an enforcing hook's Block
    /// verdict before any payload moved.
    pub blocked_ops: u64,
}

/// The per-app runtime.
pub struct Runtime {
    dex: DexFile,
    net: NetStack,
    profiler: Profiler,
    hooks: Vec<Box<dyn RuntimeHook>>,
    resolver: HashMap<String, Ipv4Addr>,
    pending: VecDeque<(Dispatcher, MethodRef)>,
    config: RuntimeConfig,
    stats: RuntimeStats,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("methods", &self.dex.methods.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Runtime {
    /// Creates a runtime for `dex` on the given network stack.
    pub fn new(dex: DexFile, net: NetStack, config: RuntimeConfig) -> Self {
        let profiler = Profiler::new(config.trace_mode);
        Runtime {
            dex,
            net,
            profiler,
            hooks: Vec::new(),
            resolver: HashMap::new(),
            pending: VecDeque::new(),
            config,
            stats: RuntimeStats::default(),
        }
    }

    /// Attaches a hook module (the Xposed-like layer).
    pub fn add_hook(&mut self, hook: Box<dyn RuntimeHook>) {
        self.hooks.push(hook);
    }

    /// Registers the authoritative address for a domain (the workload
    /// model owns the DNS universe). Unregistered domains resolve to a
    /// deterministic hash-derived address.
    pub fn register_domain(&mut self, domain: &str, ip: Ipv4Addr) {
        self.resolver.insert(domain.to_owned(), ip);
    }

    /// The profiler (Method Monitor backend).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Execution counters.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// The loaded dex.
    pub fn dex(&self) -> &DexFile {
        &self.dex
    }

    /// Immutable access to the network stack (e.g. to read the capture).
    pub fn net(&self) -> &NetStack {
        &self.net
    }

    /// Consumes the runtime, returning the network stack (capture) and
    /// profiler.
    pub fn into_parts(self) -> (NetStack, Profiler) {
        (self.net, self.profiler)
    }

    /// Fires every hook's end-of-run point. Call once when the workload
    /// is done, before [`into_parts`](Self::into_parts) — hooks may
    /// still send traffic here (e.g. the supervisor's sampling ledger),
    /// which lands in the capture like any other.
    pub fn finish_hooks(&mut self) {
        let stack = CallStack::with_base([
            Frame::new("com.android.internal.os.ZygoteInit.main"),
            Frame::new("android.app.ActivityThread.main"),
        ]);
        let mut hooks = std::mem::take(&mut self.hooks);
        for hook in &mut hooks {
            let mut ctx = HookContext {
                stack: &stack,
                net: &mut self.net,
            };
            hook.on_run_finish(&mut ctx);
        }
        self.hooks = hooks;
    }

    /// Invokes an app method by signature on a fresh main-thread stack,
    /// then drains any async tasks it scheduled. Returns `false` when
    /// the signature is not defined by the app.
    pub fn invoke_entry(&mut self, sig: &MethodSig) -> bool {
        let Some(id) = self.dex.find_method(sig) else {
            return false;
        };
        let mut budget = self.config.instruction_budget;
        let mut stack = CallStack::with_base([
            Frame::new("com.android.internal.os.ZygoteInit.main"),
            Frame::new("android.app.ActivityThread.main"),
            Frame::new("android.os.Handler.dispatchMessage"),
        ]);
        self.invoke_id(id, &mut stack, 0, &mut budget);
        self.drain_pending(&mut budget);
        true
    }

    /// Runs queued async tasks until the queue is empty or the budget
    /// runs out.
    fn drain_pending(&mut self, budget: &mut u64) {
        while *budget > 0 {
            let Some((dispatcher, target)) = self.pending.pop_front() else {
                break;
            };
            self.stats.async_tasks += 1;
            let mut stack = CallStack::with_base(dispatcher_frames(dispatcher));
            match target {
                MethodRef::Internal(id) => self.invoke_id(id, &mut stack, 0, budget),
                MethodRef::External(sig) => self.framework_call(&sig, &mut stack, budget),
            }
        }
    }

    fn invoke_id(&mut self, id: u32, stack: &mut CallStack, depth: usize, budget: &mut u64) {
        let Some(method) = self.dex.methods.get(id as usize) else {
            return;
        };
        let sig = method.sig.clone();
        let instructions = method.code.instructions.clone();
        self.profiler
            .on_method_entry(&sig, self.net.clock().now_micros());
        stack.push(Frame::new(sig.dotted_name()));
        for inst in instructions {
            if *budget == 0 {
                break;
            }
            *budget -= 1;
            self.stats.instructions += 1;
            match inst {
                Instruction::Nop | Instruction::Const(_) => {}
                Instruction::Return => break,
                Instruction::Invoke(MethodRef::Internal(next)) => {
                    if depth + 1 < self.config.max_call_depth {
                        self.invoke_id(next, stack, depth + 1, budget);
                    } else {
                        self.stats.depth_truncated += 1;
                    }
                }
                Instruction::Invoke(MethodRef::External(ext)) => {
                    self.framework_call(&ext, stack, budget);
                }
                Instruction::InvokeAsync { dispatcher, target } => {
                    self.pending.push_back((dispatcher, target));
                }
                Instruction::Network(op) => {
                    self.perform_network(&op, stack);
                }
            }
        }
        stack.pop();
    }

    /// Simulates a call into a framework (built-in) method: recorded in
    /// the trace (the Android Profiler sees native API calls too), but
    /// with no app code behind it.
    fn framework_call(&mut self, sig: &MethodSig, stack: &mut CallStack, _budget: &mut u64) {
        self.stats.framework_calls += 1;
        self.profiler
            .on_method_entry(sig, self.net.clock().now_micros());
        stack.push(Frame::new(sig.dotted_name()));
        stack.pop();
    }

    /// Performs a *system-initiated* network operation: platform
    /// services (connectivity checks, account sync, built-in apps)
    /// create sockets with no app code anywhere on the stack — only a
    /// scheduler base and the client chain. After builtin filtering such
    /// traffic either attributes to `com.android.okhttp` (Figure 3's red
    /// entries) or, for raw sockets, to no library at all (the `*`
    /// buckets that can only be categorized by destination domain).
    pub fn perform_system_network(&mut self, op: &NetworkOp, dispatcher: Dispatcher) {
        let mut stack = CallStack::with_base(dispatcher_frames(dispatcher));
        self.perform_network(op, &mut stack);
    }

    /// Performs one network operation through the configured client
    /// chain: push framework frames, resolve, connect, fire post-hooks,
    /// transfer, close. The op's [`WireShape`] decides the transport
    /// realism: address family, framing, tunnelling, connection reuse.
    fn perform_network(&mut self, op: &NetworkOp, stack: &mut CallStack) {
        self.stats.network_ops += 1;
        // The frame that issued the request (top of stack before the
        // client chain) — SDKs sometimes identify themselves in the
        // User-Agent, and that identity comes from the calling code.
        let owner_frame = stack.frames().last().map(|f| f.dotted.clone());
        let frames = connector_frames(op.connector);
        let pushed = frames.len();
        for frame in frames {
            stack.push(frame);
        }
        let registered = self
            .resolver
            .get(&op.domain)
            .copied()
            .unwrap_or_else(|| fallback_ip(&op.domain));
        let socket = match op.shape {
            // The legacy path: an A lookup on the wire, then a v4
            // connection — byte-identical to the pre-shape runtime.
            // Pooled connections establish exactly the same way; the
            // reuse happens after connect.
            WireShape::Plain | WireShape::Pooled { .. } => {
                let ip = self.net.resolve(&op.domain, registered);
                self.net.tcp_connect(ip, op.port)
            }
            // Dual-stack client: AAAA lookup, v6 connection.
            WireShape::V6 => {
                let ip6 = self.net.resolve6(&op.domain, remote_ipv6(registered));
                self.net.tcp_connect(ip6, op.port)
            }
            // TLS-like client resolving over an encrypted channel the
            // capture cannot see (DoH): no DNS on the wire — the only
            // observable name is the SNI in the ClientHello.
            WireShape::TlsSni => self.net.tcp_connect(registered, op.port),
            // Forward proxy: the TCP connection goes to the proxy; the
            // logical destination is named only in the tunnel preamble.
            WireShape::ConnectProxy => self.net.tcp_connect(PROXY_IP, PROXY_PORT),
        };
        // Post-hook: the connection exists and has concrete parameters.
        // Observers fire first, then enforcers vote; a single Block
        // verdict tears the connection down before payload moves.
        let mut hooks = std::mem::take(&mut self.hooks);
        let mut blocked = false;
        for hook in &mut hooks {
            let mut ctx = HookContext {
                stack,
                net: &mut self.net,
            };
            hook.after_socket_connect(&mut ctx, socket);
        }
        for hook in &mut hooks {
            let mut ctx = HookContext {
                stack,
                net: &mut self.net,
            };
            if hook.connect_verdict(&mut ctx, socket) == crate::hook::ConnectVerdict::Block {
                blocked = true;
                break;
            }
        }
        self.hooks = hooks;
        if blocked {
            self.stats.blocked_ops += 1;
        } else {
            match op.shape {
                WireShape::Plain | WireShape::V6 => {
                    self.transfer_once(socket, op, owner_frame.as_deref(), op.send_bytes);
                }
                WireShape::TlsSni => {
                    // ClientHello (carrying the SNI) plus application-
                    // data records padding the client payload to the
                    // op's send budget; the response is a record stream
                    // of exactly the op's receive budget.
                    let mut request = encode_tls_hello(&op.domain);
                    let remaining = op.send_bytes.saturating_sub(request.len() as u64);
                    if remaining >= 5 {
                        request.extend_from_slice(&encode_tls_records(remaining));
                    }
                    let response = encode_tls_records(op.recv_bytes.max(5));
                    self.net.tcp_exchange_with(socket, &request, &response);
                }
                WireShape::ConnectProxy => {
                    // Tunnel preamble naming the logical destination,
                    // then the ordinary request through the tunnel.
                    let mut request = encode_connect_preamble(&op.domain, op.port);
                    match op.connector {
                        spector_dex::model::Connector::DirectSocket => {
                            let request_len = request.len() as u64;
                            self.net.tcp_exchange_with(socket, &request, &[]);
                            self.net.tcp_transfer(
                                socket,
                                op.send_bytes.saturating_sub(request_len),
                                op.recv_bytes,
                            );
                        }
                        _ => {
                            request.extend_from_slice(&build_http_request(
                                op,
                                owner_frame.as_deref(),
                                op.send_bytes,
                            ));
                            self.net.tcp_exchange(socket, &request, op.recv_bytes);
                        }
                    }
                }
                WireShape::Pooled { streams } => {
                    // Keep-alive reuse: the logical exchanges share one
                    // connection. The connect-time hook covers stream 0;
                    // each later stream gets its own post-hook with the
                    // issuing thread's stack, so per-stream attribution
                    // has the same context a fresh connection would.
                    let n = u64::from(streams.max(1));
                    for ordinal in 0..streams.max(1) {
                        if ordinal > 0 {
                            let mut hooks = std::mem::take(&mut self.hooks);
                            for hook in &mut hooks {
                                let mut ctx = HookContext {
                                    stack,
                                    net: &mut self.net,
                                };
                                hook.after_stream_start(&mut ctx, socket, ordinal);
                            }
                            self.hooks = hooks;
                        }
                        let extra_send = if ordinal == 0 { op.send_bytes % n } else { 0 };
                        let extra_recv = if ordinal == 0 { op.recv_bytes % n } else { 0 };
                        let send = op.send_bytes / n + extra_send;
                        let recv = op.recv_bytes / n + extra_recv;
                        match op.connector {
                            spector_dex::model::Connector::DirectSocket => {
                                self.net.tcp_transfer(socket, send, recv);
                            }
                            _ => {
                                let request = build_http_request(op, owner_frame.as_deref(), send);
                                self.net.tcp_exchange(socket, &request, recv);
                            }
                        }
                    }
                }
            }
        }
        self.net.tcp_close(socket);
        for _ in 0..pushed {
            stack.pop();
        }
    }

    /// The single-exchange transfer shared by the plain and v6 shapes.
    fn transfer_once(
        &mut self,
        socket: spector_netsim::SocketId,
        op: &NetworkOp,
        owner_frame: Option<&str>,
        send_budget: u64,
    ) {
        match op.connector {
            spector_dex::model::Connector::DirectSocket => {
                // Raw protocol: opaque payload bytes only.
                self.net.tcp_transfer(socket, op.send_bytes, op.recv_bytes);
            }
            _ => {
                // HTTP clients put a real request head on the wire;
                // the User-Agent is the generic client token, with
                // an SDK identifier appended for the fraction of
                // libraries that tag their requests (what prior
                // work's header-based classification relied on).
                let request = build_http_request(op, owner_frame, send_budget);
                self.net.tcp_exchange(socket, &request, op.recv_bytes);
            }
        }
    }
}

/// Fixed forward-proxy endpoint for [`WireShape::ConnectProxy`] flows —
/// inside the emulator NAT range, like the DNS server at 10.0.2.3.
const PROXY_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 2, 88);
/// The proxy's listening port (conventional HTTP-proxy port).
const PROXY_PORT: u16 = 3128;

/// Deterministic global IPv6 address for a domain's v4 address: the
/// documentation prefix `2001:db8::/32` with the v4 octets embedded in
/// the low 32 bits — one stable v4↔v6 correspondence per destination.
fn remote_ipv6(v4: Ipv4Addr) -> Ipv6Addr {
    let o = v4.octets();
    Ipv6Addr::new(
        0x2001,
        0xdb8,
        0,
        0,
        0,
        0,
        u16::from_be_bytes([o[0], o[1]]),
        u16::from_be_bytes([o[2], o[3]]),
    )
}

/// Fraction (percent) of HTTP requests whose User-Agent carries an SDK
/// identifier in addition to the generic client token. Prior work's
/// header-based attribution only ever sees this minority.
const UA_TAGGED_PERCENT: u64 = 40;

/// Builds the HTTP request an operation puts on the wire. The head is
/// deterministic in `(op, owner)`; the body pads the total client
/// payload up to `send_budget` when the head is smaller (`send_budget`
/// is `op.send_bytes` for single-exchange shapes and the per-stream
/// share for pooled connections).
fn build_http_request(op: &NetworkOp, owner_frame: Option<&str>, send_budget: u64) -> Vec<u8> {
    let client = match op.connector {
        spector_dex::model::Connector::AndroidOkHttp => "okhttp/3.12.1",
        spector_dex::model::Connector::ApacheHttp => "Apache-HttpClient/UNAVAILABLE (java 1.4)",
        spector_dex::model::Connector::DirectSocket => "raw",
    };
    let tagged = fnv_mix(&op.domain) % 100 < UA_TAGGED_PERCENT;
    let user_agent = match owner_frame.filter(|_| tagged) {
        Some(frame) => {
            // Drop the class+method components to tag with the package.
            let parts: Vec<&str> = frame.split('.').collect();
            let package = if parts.len() > 2 {
                parts[..parts.len() - 2].join(".")
            } else {
                frame.to_owned()
            };
            format!("{client} {package}")
        }
        None => client.to_owned(),
    };
    let path = format!("/v1/r{}", fnv_mix(&op.domain) % 97);
    let probe = spector_netsim::http::HttpRequest {
        method: if send_budget > 512 { "POST" } else { "GET" }.to_owned(),
        path: path.clone(),
        host: op.domain.clone(),
        user_agent: user_agent.clone(),
        content_length: 0,
    };
    let head_len = probe.encode().len() as u64;
    let request = spector_netsim::http::HttpRequest {
        method: probe.method,
        path,
        host: op.domain.clone(),
        user_agent,
        content_length: send_budget.saturating_sub(head_len + 2),
    };
    request.encode()
}

fn fnv_mix(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Deterministic fallback address for unregistered domains (TEST-NET-3
/// plus a name hash), so behaviour never depends on ambient state.
fn fallback_ip(domain: &str) -> Ipv4Addr {
    let mut hash: u32 = 2_166_136_261;
    for b in domain.bytes() {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(16_777_619);
    }
    Ipv4Addr::new(203, 0, 113, (hash % 254 + 1) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_dex::model::{ClassDef, CodeItem, Connector, MethodDef};
    use spector_netsim::clock::Clock;
    use spector_netsim::flows::FlowTable;
    use spector_netsim::SocketId;

    fn msig(pkg: &str, class: &str, method: &str) -> MethodSig {
        MethodSig::new(pkg, class, method, "()V")
    }

    /// dex with: entry -> helper -> Network(ads.test:443)
    ///           entry -> InvokeAsync(AsyncTask, bg) ; bg -> Network
    fn test_dex() -> DexFile {
        let entry = MethodDef {
            sig: msig("com.app", "Main", "onClick"),
            code: CodeItem {
                instructions: vec![
                    Instruction::Const(1),
                    Instruction::Invoke(MethodRef::Internal(1)),
                    Instruction::InvokeAsync {
                        dispatcher: Dispatcher::AsyncTask,
                        target: MethodRef::Internal(2),
                    },
                    Instruction::Return,
                ],
            },
        };
        let helper = MethodDef {
            sig: msig("com.ads.sdk", "Loader", "load"),
            code: CodeItem {
                instructions: vec![
                    Instruction::Network(NetworkOp {
                        domain: "ads.test".into(),
                        port: 443,
                        send_bytes: 300,
                        recv_bytes: 5_000,
                        connector: Connector::AndroidOkHttp,
                        shape: WireShape::Plain,
                    }),
                    Instruction::Return,
                ],
            },
        };
        let bg = MethodDef {
            sig: msig("com.ads.sdk.cache", "b", "doInBackground"),
            code: CodeItem {
                instructions: vec![
                    Instruction::Network(NetworkOp {
                        domain: "cache.test".into(),
                        port: 80,
                        send_bytes: 100,
                        recv_bytes: 2_000,
                        connector: Connector::DirectSocket,
                        shape: WireShape::Plain,
                    }),
                    Instruction::Return,
                ],
            },
        };
        DexFile {
            methods: vec![entry, helper, bg],
            classes: vec![ClassDef {
                dotted_name: "com.app.Main".into(),
                method_indices: vec![0],
            }],
        }
    }

    fn new_runtime(dex: DexFile) -> Runtime {
        let net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        Runtime::new(dex, net, RuntimeConfig::default())
    }

    /// Hook that records stack snapshots at connect time.
    struct Recorder {
        snapshots: std::sync::Arc<std::sync::Mutex<Vec<Vec<String>>>>,
    }

    impl RuntimeHook for Recorder {
        fn after_socket_connect(&mut self, ctx: &mut HookContext<'_>, _socket: SocketId) {
            self.snapshots.lock().unwrap().push(ctx.stack.snapshot());
        }
    }

    #[test]
    fn sync_network_stack_has_full_context() {
        let mut rt = new_runtime(test_dex());
        let snaps = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        rt.add_hook(Box::new(Recorder {
            snapshots: snaps.clone(),
        }));
        assert!(rt.invoke_entry(&msig("com.app", "Main", "onClick")));
        let snaps = snaps.lock().unwrap();
        assert_eq!(snaps.len(), 2);
        // First connection: synchronous, so the full chain is visible.
        let sync = &snaps[0];
        assert_eq!(sync[0], "java.net.Socket.connect");
        assert!(sync.contains(&"com.ads.sdk.Loader.load".to_owned()));
        assert!(sync.contains(&"com.app.Main.onClick".to_owned()));
        // Second: via AsyncTask — caller context is gone, Listing 1 tail
        // frames are at the bottom.
        let async_snap = &snaps[1];
        assert_eq!(async_snap[0], "java.net.Socket.connect");
        assert!(async_snap.contains(&"com.ads.sdk.cache.b.doInBackground".to_owned()));
        assert!(!async_snap.contains(&"com.app.Main.onClick".to_owned()));
        assert_eq!(
            async_snap.last().unwrap(),
            "java.util.concurrent.FutureTask.run"
        );
    }

    #[test]
    fn unknown_entry_returns_false() {
        let mut rt = new_runtime(test_dex());
        assert!(!rt.invoke_entry(&msig("no.such", "Class", "method")));
        assert_eq!(rt.stats().instructions, 0);
    }

    #[test]
    fn profiler_records_unique_methods() {
        let mut rt = new_runtime(test_dex());
        let entry = msig("com.app", "Main", "onClick");
        rt.invoke_entry(&entry);
        rt.invoke_entry(&entry);
        let unique = rt.profiler().unique_methods();
        assert_eq!(unique.len(), 3); // all three app methods, deduped
        assert!(unique.contains(&entry));
    }

    #[test]
    fn traffic_lands_in_capture() {
        let mut rt = new_runtime(test_dex());
        rt.register_domain("ads.test", Ipv4Addr::new(198, 51, 100, 1));
        rt.register_domain("cache.test", Ipv4Addr::new(198, 51, 100, 2));
        rt.invoke_entry(&msig("com.app", "Main", "onClick"));
        let table = FlowTable::from_capture(rt.net().capture());
        assert_eq!(table.len(), 2);
        let total_payload: u64 = table
            .flows()
            .iter()
            .map(|f| f.sent_payload_bytes + f.recv_payload_bytes)
            .sum();
        assert_eq!(total_payload, 300 + 5_000 + 100 + 2_000);
        assert_eq!(rt.stats().network_ops, 2);
        assert_eq!(rt.stats().async_tasks, 1);
    }

    #[test]
    fn depth_guard_stops_recursion() {
        // Method 0 invokes itself forever.
        let dex = DexFile {
            methods: vec![MethodDef {
                sig: msig("com.app", "Rec", "spin"),
                code: CodeItem {
                    instructions: vec![Instruction::Invoke(MethodRef::Internal(0))],
                },
            }],
            classes: vec![],
        };
        let mut rt = new_runtime(dex);
        rt.invoke_entry(&msig("com.app", "Rec", "spin"));
        let stats = rt.stats();
        assert!(stats.depth_truncated >= 1);
        assert!(stats.instructions <= RuntimeConfig::default().instruction_budget);
    }

    #[test]
    fn async_self_scheduling_bounded_by_budget() {
        // Method 0 schedules itself asynchronously forever.
        let dex = DexFile {
            methods: vec![MethodDef {
                sig: msig("com.app", "Loop", "tick"),
                code: CodeItem {
                    instructions: vec![Instruction::InvokeAsync {
                        dispatcher: Dispatcher::Thread,
                        target: MethodRef::Internal(0),
                    }],
                },
            }],
            classes: vec![],
        };
        let net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        let mut rt = Runtime::new(
            dex,
            net,
            RuntimeConfig {
                instruction_budget: 500,
                ..RuntimeConfig::default()
            },
        );
        rt.invoke_entry(&msig("com.app", "Loop", "tick")); // must terminate
        assert!(rt.stats().async_tasks <= 501);
    }

    #[test]
    fn external_invokes_counted_as_framework_calls() {
        let dex = DexFile {
            methods: vec![MethodDef {
                sig: msig("com.app", "M", "go"),
                code: CodeItem {
                    instructions: vec![Instruction::Invoke(MethodRef::External(msig(
                        "android.util",
                        "Log",
                        "d",
                    )))],
                },
            }],
            classes: vec![],
        };
        let mut rt = new_runtime(dex);
        rt.invoke_entry(&msig("com.app", "M", "go"));
        assert_eq!(rt.stats().framework_calls, 1);
    }

    #[test]
    fn fallback_ip_is_deterministic_and_valid() {
        assert_eq!(fallback_ip("x.example"), fallback_ip("x.example"));
        let ip = fallback_ip("y.example");
        assert_eq!(ip.octets()[0], 203);
        assert_ne!(ip.octets()[3], 0);
    }

    #[test]
    fn stack_balanced_after_drive() {
        let mut rt = new_runtime(test_dex());
        rt.invoke_entry(&msig("com.app", "Main", "onClick"));
        // Internal invariant: a second drive behaves identically, which
        // would not hold if frames leaked between events.
        let before = rt.profiler().unique_methods().len();
        rt.invoke_entry(&msig("com.app", "Main", "onClick"));
        assert_eq!(rt.profiler().unique_methods().len(), before);
    }
}
