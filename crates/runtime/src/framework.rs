//! Built-in Android framework chains.
//!
//! Every network connection in a stack trace is sandwiched between
//! framework code: HTTP client internals above the app's deepest frame
//! (ending at `java.net.Socket.connect`), and thread-scheduler frames
//! below it when the call happens off the main thread. Both sets consist
//! of *built-in* packages — the ones the paper's footnote 2 regex filter
//! removes — and their exact dotted names matter, because the
//! attribution heuristics are exercised against them.

use spector_dex::model::{Connector, Dispatcher};

use crate::stack::Frame;

/// Dotted names of the client-chain frames for `connector`, oldest
/// first (the order they are pushed above the app frame). The last
/// entry is always the `connect` hook point.
pub fn connector_chain(connector: Connector) -> &'static [&'static str] {
    match connector {
        // Listing 1, read bottom-up from HttpURLConnectionImpl.connect.
        Connector::AndroidOkHttp => &[
            "com.android.okhttp.internal.huc.HttpURLConnectionImpl.connect",
            "com.android.okhttp.internal.huc.HttpURLConnectionImpl.execute",
            "com.android.okhttp.internal.http.HttpEngine.sendRequest",
            "com.android.okhttp.internal.http.HttpEngine.connect",
            "com.android.okhttp.OkHttpClient$1.connectAndSetOwner",
            "com.android.okhttp.Connection.connectAndSetOwner",
            "com.android.okhttp.Connection.connect",
            "com.android.okhttp.Connection.connectSocket",
            "com.android.okhttp.internal.Platform.connectSocket",
            "java.net.Socket.connect",
        ],
        Connector::ApacheHttp => &[
            "org.apache.http.impl.client.CloseableHttpClient.execute",
            "org.apache.http.impl.client.InternalHttpClient.doExecute",
            "org.apache.http.impl.execchain.MainClientExec.execute",
            "org.apache.http.impl.conn.DefaultHttpClientConnectionOperator.connect",
            "java.net.Socket.connect",
        ],
        Connector::DirectSocket => &["java.net.Socket.connect"],
    }
}

/// Dotted names of the scheduler frames a new thread starts with for
/// `dispatcher`, oldest first. These are the *only* frames below the
/// dispatched method, which is why asynchronous call sites lose their
/// original caller context.
pub fn dispatcher_base(dispatcher: Dispatcher) -> &'static [&'static str] {
    match dispatcher {
        // Listing 1, lines 13-14 (bottom of the trace).
        Dispatcher::AsyncTask => &[
            "java.util.concurrent.FutureTask.run",
            "android.os.AsyncTask$2.call",
        ],
        Dispatcher::Thread => &["java.lang.Thread.run"],
        Dispatcher::Executor => &[
            "java.lang.Thread.run",
            "java.util.concurrent.ThreadPoolExecutor$Worker.run",
            "java.util.concurrent.ThreadPoolExecutor.runWorker",
        ],
    }
}

/// Builds [`Frame`] values for a connector chain.
pub fn connector_frames(connector: Connector) -> Vec<Frame> {
    connector_chain(connector)
        .iter()
        .copied()
        .map(Frame::new)
        .collect()
}

/// Builds [`Frame`] values for a dispatcher base.
pub fn dispatcher_frames(dispatcher: Dispatcher) -> Vec<Frame> {
    dispatcher_base(dispatcher)
        .iter()
        .copied()
        .map(Frame::new)
        .collect()
}

/// The built-in package prefixes of Android API 25 that the attribution
/// stage filters out of stack traces — the paper's footnote 2 list,
/// verbatim. Note that `com.android.*` is deliberately *not* filtered:
/// the platform's bundled okhttp (and libraries like `com.android.volley`
/// that apps ship under that prefix) remain attributable, which is why
/// Figure 3 shows `com.android.*` origin-libraries in red.
pub const BUILTIN_PACKAGE_PREFIXES: &[&str] = &[
    "android.",
    "dalvik.",
    "java.",
    "javax.",
    "junit.",
    "org.apache.http.",
    "org.json.",
    "org.w3c.dom.",
    "org.xml.sax.",
    "org.xmlpull.v1.",
    // Non-public framework internals (ZygoteInit and friends) sit at
    // the bottom of every main-thread stack; the API-25 class index the
    // filter derives from treats them as built-in, unlike the *bundled*
    // com.android.okhttp / com.android.volley code that stays
    // attributable.
    "com.android.internal.",
];

/// The footnote 2 filter as a single regular-expression pattern,
/// suitable for [`spector_regexlite::Regex::new`].
pub fn builtin_filter_pattern() -> String {
    let escaped: Vec<String> = BUILTIN_PACKAGE_PREFIXES
        .iter()
        .map(|p| p.replace('.', "\\."))
        .collect();
    format!("^({})", escaped.join("|"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn android_okhttp_chain_matches_listing1() {
        let chain = connector_chain(Connector::AndroidOkHttp);
        assert_eq!(chain.len(), 10);
        assert_eq!(
            chain[0],
            "com.android.okhttp.internal.huc.HttpURLConnectionImpl.connect"
        );
        assert_eq!(*chain.last().unwrap(), "java.net.Socket.connect");
    }

    #[test]
    fn every_chain_ends_at_socket_connect() {
        for connector in [
            Connector::AndroidOkHttp,
            Connector::ApacheHttp,
            Connector::DirectSocket,
        ] {
            assert_eq!(
                *connector_chain(connector).last().unwrap(),
                "java.net.Socket.connect"
            );
        }
    }

    #[test]
    fn dispatcher_bases_are_builtin_but_okhttp_chain_is_not() {
        let is_builtin = |name: &str| BUILTIN_PACKAGE_PREFIXES.iter().any(|p| name.starts_with(p));
        for dispatcher in [
            Dispatcher::AsyncTask,
            Dispatcher::Thread,
            Dispatcher::Executor,
        ] {
            for frame in dispatcher_base(dispatcher) {
                assert!(is_builtin(frame), "{frame} must be builtin");
            }
        }
        // Footnote 2 keeps com.android.* attributable (Figure 3's red
        // bars), while apache/java frames are filtered.
        for frame in connector_chain(Connector::ApacheHttp) {
            assert!(is_builtin(frame), "{frame} must be builtin");
        }
        assert!(connector_chain(Connector::AndroidOkHttp)
            .iter()
            .any(|f| !is_builtin(f)));
    }

    #[test]
    fn asynctask_base_matches_listing1_tail() {
        assert_eq!(
            dispatcher_base(Dispatcher::AsyncTask),
            &[
                "java.util.concurrent.FutureTask.run",
                "android.os.AsyncTask$2.call"
            ]
        );
    }

    #[test]
    fn filter_pattern_escapes_dots() {
        let pattern = builtin_filter_pattern();
        assert!(pattern.starts_with("^("));
        assert!(pattern.contains("android\\."));
        assert!(pattern.contains("org\\.apache\\.http\\."));
    }

    #[test]
    fn frame_builders_mirror_chains() {
        assert_eq!(
            connector_frames(Connector::DirectSocket),
            vec![Frame::new("java.net.Socket.connect")]
        );
        assert_eq!(
            dispatcher_frames(Dispatcher::Thread),
            vec![Frame::new("java.lang.Thread.run")]
        );
    }
}
