//! Hook points for the Xposed-like instrumentation layer.
//!
//! The runtime fires a *post-hook* right after a TCP connection is
//! established — the moment at which (a) the connection has a concrete
//! 4-tuple (the reason the paper uses post-hooks), and (b) the Java
//! stack still contains the full creation context. The Socket Supervisor
//! in `spector-hooks` implements [`RuntimeHook`] to capture both.

use spector_netsim::stack::NetStack;
use spector_netsim::SocketId;

use crate::stack::CallStack;

/// Context handed to hooks when a socket has just connected.
///
/// The hook can read the creating thread's stack, query the socket's
/// connection parameters (the `getsockname`/`getpeername` JNI shim), and
/// send its own traffic (the supervisor's UDP reports) — all against the
/// same emulator network stack, so instrumentation traffic lands in the
/// same capture.
pub struct HookContext<'a> {
    /// Stack of the thread that created the socket.
    pub stack: &'a CallStack,
    /// The emulator network stack.
    pub net: &'a mut NetStack,
}

impl std::fmt::Debug for HookContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookContext")
            .field("stack_depth", &self.stack.depth())
            .finish()
    }
}

/// Decision an enforcing hook returns for a freshly-connected socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectVerdict {
    /// Let the transfer proceed.
    Allow,
    /// Tear the connection down before any payload moves (BorderPatrol-
    /// style library blacklisting). The handshake has already happened —
    /// post-hooks fire after `connect` — so the capture still records
    /// the attempt.
    Block,
}

/// A module attached to the runtime's hook points.
pub trait RuntimeHook: Send {
    /// Called immediately after a TCP socket finishes connecting.
    fn after_socket_connect(&mut self, ctx: &mut HookContext<'_>, socket: SocketId);

    /// Called when a pooled (keep-alive) connection starts a new logical
    /// request/response stream on an already-connected socket. `ordinal`
    /// is the zero-based stream index within the connection; the
    /// connect-time report covers stream 0, so the runtime fires this
    /// for ordinals 1.. only. Default: ignore (legacy hooks never see
    /// pooled traffic differently from a plain connection).
    fn after_stream_start(&mut self, _ctx: &mut HookContext<'_>, _socket: SocketId, _ordinal: u32) {
    }

    /// Called once when the run is over, before the capture is taken —
    /// the hook's last chance to flush out-of-band state (the Socket
    /// Supervisor's sampling ledger rides on this). Pure observers need
    /// nothing here, so the default is a no-op.
    fn on_run_finish(&mut self, _ctx: &mut HookContext<'_>) {}

    /// Policy decision for the new connection; the default permits
    /// everything (pure observers like the Socket Supervisor never
    /// interfere with the app).
    fn connect_verdict(&mut self, _ctx: &mut HookContext<'_>, _socket: SocketId) -> ConnectVerdict {
        ConnectVerdict::Allow
    }
}
