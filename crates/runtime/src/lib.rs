//! ART-like application runtime for Libspector.
//!
//! The original system modifies the Android 7.1.1 framework in two
//! places: the ART runtime's method tracing (so the Android Profiler
//! records *unique* methods instead of overflowing its buffer with
//! repeats), and — via an Xposed module — the socket/connect path (so
//! every connection's Java stack trace can be captured). This crate is
//! the runtime those modifications live in:
//!
//! * [`stack`] — Java-like call stacks whose snapshots have the exact
//!   shape of `Throwable.getStackTrace()` output (dotted
//!   `package.Class.method` frames, most recent first);
//! * [`profiler`] — the Method Monitor's trace backend, with both the
//!   stock bounded-buffer mode (which demonstrably overflows) and the
//!   paper's modified unique-method mode;
//! * [`framework`] — the built-in client chains (`com.android.okhttp`,
//!   `org.apache.http`, raw `java.net.Socket`) and async dispatchers
//!   (`AsyncTask`, `Thread`, executors) whose frames sandwich app code
//!   in every network stack trace;
//! * [`hook`] — the hook points the Xposed-like layer attaches to
//!   (post-hooks on socket connect);
//! * [`runtime`] — the interpreter that drives an app's dex code,
//!   scheduling async tasks and performing network operations against
//!   the simulated [`spector_netsim`] stack.

pub mod framework;
pub mod hook;
pub mod profiler;
pub mod runtime;
pub mod stack;
pub mod trace_file;

pub use hook::{ConnectVerdict, HookContext, RuntimeHook};
pub use profiler::{Profiler, TraceMode};
pub use runtime::{Runtime, RuntimeConfig, RuntimeStats};
pub use stack::CallStack;
