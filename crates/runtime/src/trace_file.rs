//! The method-trace file format.
//!
//! At the end of each experiment, the modified framework "writes the
//! set of method signatures which the app invoked during experiment
//! into a file" (§II-B3). The format here follows the spirit of the
//! Android Profiler's text trace header:
//!
//! ```text
//! *version 1 libspector-unique
//! *clock virtual-micros
//! *methods <count>
//! <one smali type signature per line, sorted>
//! *end
//! ```
//!
//! Sorting makes trace files byte-stable for a given method set, so
//! they diff cleanly across runs.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use spector_dex::sig::MethodSig;

/// Error produced when parsing a malformed trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the problem.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace file line {}: {}", self.line, self.message)
    }
}

impl Error for TraceParseError {}

/// Serializes a unique-method set into the trace file format.
pub fn write_trace(methods: &HashSet<MethodSig>) -> String {
    let mut sigs: Vec<&MethodSig> = methods.iter().collect();
    sigs.sort();
    let mut out = String::with_capacity(64 + sigs.len() * 48);
    out.push_str("*version 1 libspector-unique\n");
    out.push_str("*clock virtual-micros\n");
    out.push_str(&format!("*methods {}\n", sigs.len()));
    for sig in sigs {
        out.push_str(sig.as_smali());
        out.push('\n');
    }
    out.push_str("*end\n");
    out
}

/// Parses a trace file back into the method set.
///
/// # Errors
///
/// Returns [`TraceParseError`] on missing headers, a count mismatch,
/// unparseable signatures, duplicates, or a missing `*end` marker.
pub fn parse_trace(text: &str) -> Result<HashSet<MethodSig>, TraceParseError> {
    let err = |line: usize, message: &str| TraceParseError {
        line,
        message: message.to_owned(),
    };
    let mut lines = text.lines().enumerate();
    let (_, version) = lines.next().ok_or_else(|| err(1, "empty trace file"))?;
    if !version.starts_with("*version 1") {
        return Err(err(1, "unsupported version header"));
    }
    let (_, clock) = lines.next().ok_or_else(|| err(2, "missing clock header"))?;
    if !clock.starts_with("*clock ") {
        return Err(err(2, "missing clock header"));
    }
    let (_, methods_header) = lines
        .next()
        .ok_or_else(|| err(3, "missing methods header"))?;
    let count: usize = methods_header
        .strip_prefix("*methods ")
        .and_then(|raw| raw.trim().parse().ok())
        .ok_or_else(|| err(3, "malformed methods header"))?;

    let mut methods = HashSet::with_capacity(count);
    let mut saw_end = false;
    for (idx, line) in lines {
        if line == "*end" {
            saw_end = true;
            break;
        }
        let sig: MethodSig = line
            .parse()
            .map_err(|e| err(idx + 1, &format!("bad signature: {e}")))?;
        if !methods.insert(sig) {
            return Err(err(idx + 1, "duplicate signature"));
        }
    }
    if !saw_end {
        return Err(err(text.lines().count(), "missing *end marker"));
    }
    if methods.len() != count {
        return Err(err(
            3,
            &format!("header says {count} methods, found {}", methods.len()),
        ));
    }
    Ok(methods)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs(n: usize) -> HashSet<MethodSig> {
        (0..n)
            .map(|i| MethodSig::new("com.app", &format!("C{}", i % 7), &format!("m{i}"), "()V"))
            .collect()
    }

    #[test]
    fn roundtrip() {
        let methods = sigs(25);
        let text = write_trace(&methods);
        assert_eq!(parse_trace(&text).unwrap(), methods);
    }

    #[test]
    fn empty_set_roundtrips() {
        let methods = HashSet::new();
        let text = write_trace(&methods);
        assert!(text.contains("*methods 0"));
        assert_eq!(parse_trace(&text).unwrap(), methods);
    }

    #[test]
    fn output_is_sorted_and_stable() {
        let methods = sigs(30);
        assert_eq!(write_trace(&methods), write_trace(&methods.clone()));
        let text = write_trace(&methods);
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('*')).collect();
        let mut sorted = body.clone();
        sorted.sort_unstable();
        assert_eq!(body, sorted);
    }

    #[test]
    fn rejects_malformations() {
        let good = write_trace(&sigs(3));
        // Wrong version.
        assert!(parse_trace(&good.replace("*version 1", "*version 9")).is_err());
        // Count mismatch.
        assert!(parse_trace(&good.replace("*methods 3", "*methods 4")).is_err());
        // Missing end.
        assert!(parse_trace(good.trim_end_matches("*end\n")).is_err());
        // Garbage signature line.
        assert!(parse_trace(&good.replacen("Lcom/app/", "not-a-sig ", 1)).is_err());
        // Empty input.
        assert!(parse_trace("").is_err());
    }

    #[test]
    fn rejects_duplicates() {
        let methods = sigs(2);
        let mut text = write_trace(&methods);
        let line = text
            .lines()
            .find(|l| !l.starts_with('*'))
            .unwrap()
            .to_owned();
        text = text.replace("*end", &format!("{line}\n*end"));
        // Fix the count so only the duplicate trips.
        text = text.replace("*methods 2", "*methods 3");
        assert!(parse_trace(&text).is_err());
    }
}
