//! Java-like call stacks and `getStackTrace` snapshots.

use serde::{Deserialize, Serialize};

/// One frame on a call stack: the dotted `package.Class.method` name, as
/// `StackTraceElement` renders it (no parameter types — recovering the
/// full type signature requires the dex translation step, exactly as in
//  the paper's Socket Supervisor).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    /// Dotted method name, e.g. `com.unity3d.ads.android.cache.b.a`.
    pub dotted: String,
}

impl Frame {
    /// Builds a frame from a dotted method name.
    pub fn new(dotted: impl Into<String>) -> Self {
        Frame {
            dotted: dotted.into(),
        }
    }
}

/// A thread's call stack.
///
/// Frames are pushed on method entry and popped on exit; a *snapshot*
/// (the `getStackTrace` equivalent) lists frames most-recent-first, like
/// Listing 1 in the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a stack pre-seeded with scheduler base frames (oldest
    /// first) — how async dispatch threads start.
    pub fn with_base(base: impl IntoIterator<Item = Frame>) -> Self {
        CallStack {
            frames: base.into_iter().collect(),
        }
    }

    /// Pushes a frame (method entry).
    pub fn push(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    /// Pops the most recent frame (method exit).
    pub fn pop(&mut self) -> Option<Frame> {
        self.frames.pop()
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` when no frames are on the stack.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The `getStackTrace()` view: dotted frame names, most recent
    /// first.
    pub fn snapshot(&self) -> Vec<String> {
        self.frames.iter().rev().map(|f| f.dotted.clone()).collect()
    }

    /// Frames oldest-first (the push order), borrowed.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_most_recent_first() {
        let mut stack = CallStack::new();
        stack.push(Frame::new("a.B.old"));
        stack.push(Frame::new("a.B.mid"));
        stack.push(Frame::new("a.B.recent"));
        assert_eq!(stack.snapshot(), vec!["a.B.recent", "a.B.mid", "a.B.old"]);
        assert_eq!(stack.depth(), 3);
    }

    #[test]
    fn push_pop_balance() {
        let mut stack = CallStack::new();
        assert!(stack.is_empty());
        stack.push(Frame::new("x.Y.z"));
        assert_eq!(stack.pop(), Some(Frame::new("x.Y.z")));
        assert_eq!(stack.pop(), None);
        assert!(stack.is_empty());
    }

    #[test]
    fn with_base_keeps_order() {
        let stack = CallStack::with_base(vec![
            Frame::new("java.util.concurrent.FutureTask.run"),
            Frame::new("android.os.AsyncTask$2.call"),
        ]);
        // Snapshot: the AsyncTask frame is more recent than FutureTask,
        // matching Listing 1's bottom two lines.
        assert_eq!(
            stack.snapshot(),
            vec![
                "android.os.AsyncTask$2.call",
                "java.util.concurrent.FutureTask.run"
            ]
        );
        assert_eq!(
            stack.frames()[0].dotted,
            "java.util.concurrent.FutureTask.run"
        );
    }
}
