//! The Method Monitor's trace backend.
//!
//! Android's stock profiler (driven through the Activity Manager API)
//! writes every method entry/exit event into a user-sized buffer, which
//! the paper found "is filled within seconds of app initialization"
//! because listeners record *repeated* calls. Libspector modifies the
//! ART runtime so the profiler records each method only the first time
//! the app calls it.
//!
//! Both behaviours are implemented here so the difference is measurable:
//! [`TraceMode::StockBuffer`] drops events once full (and counts the
//! loss); [`TraceMode::UniqueMethods`] is the paper's modification.

use std::collections::HashSet;

use spector_dex::sig::MethodSig;

/// Profiler recording behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Stock Android: every entry event is buffered, up to a capacity;
    /// once the buffer is full further events are dropped.
    StockBuffer {
        /// Maximum number of buffered events.
        capacity: usize,
    },
    /// Libspector's modified ART: record each unique method once.
    UniqueMethods,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Entered method.
    pub sig: MethodSig,
    /// Virtual timestamp (microseconds).
    pub timestamp_micros: u64,
}

/// The method-trace recorder attached to a runtime.
#[derive(Debug, Clone)]
pub struct Profiler {
    mode: TraceMode,
    events: Vec<TraceEvent>,
    seen: HashSet<MethodSig>,
    /// Entry events that arrived after the stock buffer filled.
    dropped: u64,
    /// Total method-entry events offered (including repeats/drops).
    offered: u64,
}

impl Profiler {
    /// Creates a profiler in the given mode.
    pub fn new(mode: TraceMode) -> Self {
        Profiler {
            mode,
            events: Vec::new(),
            seen: HashSet::new(),
            dropped: 0,
            offered: 0,
        }
    }

    /// Records a method entry at `timestamp_micros`.
    pub fn on_method_entry(&mut self, sig: &MethodSig, timestamp_micros: u64) {
        self.offered += 1;
        match self.mode {
            TraceMode::StockBuffer { capacity } => {
                if self.events.len() < capacity {
                    self.events.push(TraceEvent {
                        sig: sig.clone(),
                        timestamp_micros,
                    });
                } else {
                    self.dropped += 1;
                }
            }
            TraceMode::UniqueMethods => {
                if self.seen.insert(sig.clone()) {
                    self.events.push(TraceEvent {
                        sig: sig.clone(),
                        timestamp_micros,
                    });
                }
            }
        }
    }

    /// The recorded events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The set of distinct methods recorded — what the modified
    /// framework writes to the trace file at the end of an experiment.
    pub fn unique_methods(&self) -> HashSet<MethodSig> {
        match self.mode {
            TraceMode::UniqueMethods => self.seen.clone(),
            TraceMode::StockBuffer { .. } => self.events.iter().map(|e| e.sig.clone()).collect(),
        }
    }

    /// Events dropped due to a full stock buffer.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total entry events offered, including repeats and drops.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The configured mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: u32) -> MethodSig {
        MethodSig::new("com.app", "C", &format!("m{n}"), "()V")
    }

    #[test]
    fn unique_mode_dedupes_repeats() {
        let mut p = Profiler::new(TraceMode::UniqueMethods);
        for t in 0..100 {
            p.on_method_entry(&sig(t % 5), t as u64);
        }
        assert_eq!(p.events().len(), 5);
        assert_eq!(p.unique_methods().len(), 5);
        assert_eq!(p.offered(), 100);
        assert_eq!(p.dropped(), 0);
        // First-call timestamps are retained.
        assert_eq!(p.events()[0].timestamp_micros, 0);
        assert_eq!(p.events()[4].timestamp_micros, 4);
    }

    #[test]
    fn stock_buffer_overflows_and_loses_methods() {
        let mut p = Profiler::new(TraceMode::StockBuffer { capacity: 10 });
        // A hot loop on one method fills the buffer before a *new*
        // method appears — the failure mode the paper describes.
        for t in 0..10 {
            p.on_method_entry(&sig(0), t);
        }
        p.on_method_entry(&sig(1), 10);
        assert_eq!(p.dropped(), 1);
        // The unique set from the stock buffer misses method 1 entirely.
        assert_eq!(p.unique_methods().len(), 1);
        // The modified mode would have captured both.
        let mut modified = Profiler::new(TraceMode::UniqueMethods);
        for t in 0..10 {
            modified.on_method_entry(&sig(0), t);
        }
        modified.on_method_entry(&sig(1), 10);
        assert_eq!(modified.unique_methods().len(), 2);
    }

    #[test]
    fn stock_buffer_records_repeats_within_capacity() {
        let mut p = Profiler::new(TraceMode::StockBuffer { capacity: 100 });
        for t in 0..6 {
            p.on_method_entry(&sig(t % 2), t as u64);
        }
        assert_eq!(p.events().len(), 6); // repeats are kept
        assert_eq!(p.unique_methods().len(), 2);
    }

    #[test]
    fn mode_accessor() {
        let p = Profiler::new(TraceMode::UniqueMethods);
        assert_eq!(p.mode(), TraceMode::UniqueMethods);
    }
}
