//! Chaos properties of the hardened campaign runner.
//!
//! The contract under test: for *any* seeded `FaultPlan`, the
//! accounting invariant holds and no panic escapes the pool; for the
//! *same* plan, results are byte-identical across worker counts; and
//! for the zero-fault plan, the hardened path reproduces the plain
//! `run_corpus` output exactly. Byte identity is asserted on the
//! serialized outcome, not field samples.

use std::path::PathBuf;
use std::sync::Once;

use libspector::knowledge::Knowledge;
use proptest::prelude::*;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_dispatch::{
    load_checkpoint, run_campaign, run_corpus, save_checkpoint, CampaignConfig, CampaignOutcome,
    CheckpointConfig, DispatchConfig, RetryPolicy,
};
use spector_faults::{FaultPlan, FaultProfile};

/// Injected panics are expected here; keep them out of test output.
/// (The hook is process-global, but every test in this binary that
/// panics on purpose wants the same silence.)
fn silence_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .unwrap_or(false);
            if !injected {
                default(info);
            }
        }));
    });
}

fn tiny_corpus(apps: usize, seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale: 0.004,
            ..Default::default()
        },
        ..Default::default()
    })
}

fn chaos_config(workers: usize, plan: FaultPlan) -> CampaignConfig {
    let mut dispatch = DispatchConfig {
        workers,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = 40;
    CampaignConfig {
        dispatch,
        chaos: Some(plan),
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_micros: 0,
            max_backoff_micros: 0,
        },
        ..Default::default()
    }
}

fn outcome_bytes(outcome: &CampaignOutcome) -> Vec<u8> {
    serde_json::to_vec(outcome).expect("outcome serializes")
}

fn temp_checkpoint(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spector-chaos-{}", std::process::id()));
    dir.join(format!("{name}.json"))
}

fn arb_profile() -> impl Strategy<Value = FaultProfile> {
    // Per-mille rates; the vendored proptest has no f64 range strategy.
    let p = |permille: u32| permille as f64 / 1000.0;
    (
        0u32..400,
        0u32..300,
        0u32..300,
        0u32..300,
        0u32..200,
        0u32..50,
        0u32..300,
        0u32..400,
        0u32..300,
        0u32..200,
    )
        .prop_map(
            move |(loss, dup, reorder, trunc, flip, frame, death, boot, hang, panic)| {
                FaultProfile {
                    report_loss: p(loss),
                    report_duplication: p(dup),
                    report_reorder: p(reorder),
                    report_truncation: p(trunc),
                    report_bit_flip: p(flip),
                    frame_truncation: p(frame),
                    capture_death: p(death),
                    boot_failure: p(boot),
                    monkey_hang: p(hang),
                    worker_panic: p(panic),
                }
            },
        )
}

proptest! {
    // Each case runs a full (tiny) campaign; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn accounting_invariant_holds_under_any_plan(
        seed in any::<u64>(),
        profile in arb_profile(),
    ) {
        silence_panics();
        let corpus = tiny_corpus(3, 31);
        let knowledge = Knowledge::from_corpus(&corpus);
        let config = chaos_config(2, FaultPlan::new(seed, profile));
        let outcome = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
        // Every app lands in exactly one bucket, retries accounted.
        prop_assert_eq!(outcome.total(), corpus.apps.len());
        let failure_attempts: usize = outcome
            .failures
            .iter()
            .map(|f| f.attempts as usize)
            .sum();
        prop_assert!(outcome.retried + outcome.failures.len() >= failure_attempts,
            "retried {} failures {} attempts {}", outcome.retried, outcome.failures.len(), failure_attempts);
        for failure in &outcome.failures {
            prop_assert!(failure.attempts >= 1);
            prop_assert!(failure.attempts <= config.retry.max_attempts);
            prop_assert!(!failure.error.is_empty());
        }
        // App order is preserved in both buckets.
        let analysis_packages: Vec<&str> =
            outcome.analyses.iter().map(|a| a.package.as_str()).collect();
        let mut expected = analysis_packages.clone();
        expected.sort_by_key(|p| corpus.apps.iter().position(|a| a.package == *p));
        prop_assert_eq!(analysis_packages, expected);
    }

    #[test]
    fn same_plan_is_byte_identical_across_worker_counts(
        seed in any::<u64>(),
        profile in arb_profile(),
    ) {
        silence_panics();
        let corpus = tiny_corpus(3, 32);
        let knowledge = Knowledge::from_corpus(&corpus);
        let plan = FaultPlan::new(seed, profile);
        let serial = run_campaign(&corpus, &knowledge, &chaos_config(1, plan), None, None).unwrap();
        let parallel = run_campaign(&corpus, &knowledge, &chaos_config(4, plan), None, None).unwrap();
        prop_assert_eq!(outcome_bytes(&serial), outcome_bytes(&parallel));
    }
}

#[test]
fn zero_fault_plan_reproduces_plain_run_corpus_exactly() {
    let corpus = tiny_corpus(4, 33);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers: 2,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = 40;
    let plain = run_corpus(&corpus, &knowledge, &dispatch, None);
    // Chaos machinery armed — retries allowed, plan present — but the
    // profile is all zeros, so nothing may change.
    let mut config = chaos_config(2, FaultPlan::new(987, FaultProfile::none()));
    config.dispatch = dispatch;
    let hardened = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
    assert_eq!(outcome_bytes(&plain), outcome_bytes(&hardened));
}

#[test]
fn no_panic_escapes_the_pool() {
    silence_panics();
    let corpus = tiny_corpus(3, 34);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut profile = FaultProfile::none();
    profile.worker_panic = 1.0;
    let config = chaos_config(2, FaultPlan::new(5, profile));
    // Every attempt panics; the campaign must still return, with every
    // app recorded as a failure (panics are not retryable).
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
    assert_eq!(outcome.analyses.len(), 0);
    assert_eq!(outcome.failures.len(), 3);
    for failure in &outcome.failures {
        assert!(failure.error.contains("panicked"), "{}", failure.error);
        assert_eq!(failure.attempts, 1);
    }
}

#[test]
fn retryable_faults_are_retried_with_bounded_attempts() {
    silence_panics();
    let corpus = tiny_corpus(6, 35);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut profile = FaultProfile::none();
    profile.boot_failure = 0.6;
    let config = chaos_config(2, FaultPlan::new(77, profile));
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
    assert_eq!(outcome.total(), 6);
    assert!(
        outcome.retried > 0,
        "a 60% boot-failure rate must trigger retries"
    );
    assert!(
        !outcome.analyses.is_empty(),
        "with 3 attempts at 60% failure, some app must eventually boot"
    );
    for failure in &outcome.failures {
        // Only the retryable fault fires, so every failure exhausted
        // its attempts.
        assert_eq!(failure.attempts, config.retry.max_attempts);
        assert!(failure.error.contains("boot"), "{}", failure.error);
    }
}

#[test]
fn injected_deadline_hangs_are_retried() {
    silence_panics();
    let corpus = tiny_corpus(3, 36);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut profile = FaultProfile::none();
    profile.monkey_hang = 1.0;
    let mut config = chaos_config(2, FaultPlan::new(6, profile));
    config.deadline_micros = Some(1_000_000_000);
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
    assert_eq!(outcome.analyses.len(), 0);
    assert_eq!(outcome.failures.len(), 3);
    assert_eq!(
        outcome.retried,
        3 * (config.retry.max_attempts as usize - 1)
    );
    for failure in &outcome.failures {
        assert!(failure.error.contains("hang"), "{}", failure.error);
        assert_eq!(failure.attempts, config.retry.max_attempts);
    }
}

#[test]
fn real_deadline_fires_on_virtual_clock() {
    let corpus = tiny_corpus(2, 37);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut config = chaos_config(1, FaultPlan::new(0, FaultProfile::none()));
    config.deadline_micros = Some(1); // Every run exceeds 1µs.
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
    assert_eq!(outcome.analyses.len(), 0);
    assert_eq!(outcome.failures.len(), 2);
    for failure in &outcome.failures {
        assert!(
            failure.error.contains("deadline exceeded"),
            "{}",
            failure.error
        );
    }
}

#[test]
fn resumed_campaign_matches_uninterrupted_run() {
    silence_panics();
    let corpus = tiny_corpus(5, 38);
    let knowledge = Knowledge::from_corpus(&corpus);
    let plan = FaultPlan::new(41, FaultProfile::light());
    let path = temp_checkpoint("resume");

    // The uninterrupted reference run, checkpointing as it goes.
    let mut config = chaos_config(2, plan);
    config.checkpoint = Some(CheckpointConfig {
        path: path.clone(),
        every: 1,
    });
    let uninterrupted = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();

    // Simulate a mid-run kill: strip the final checkpoint back to two
    // completed apps, exactly what an interrupted collector leaves.
    let fingerprint = config.fingerprint(corpus.apps.len());
    let mut partial = load_checkpoint(&path, &fingerprint).unwrap();
    assert_eq!(partial.completed(), 5);
    for slot in partial.results.iter_mut().skip(2) {
        *slot = None;
    }
    partial.retried = 0; // Conservative: retries of the lost apps replay.
    partial.injected = Default::default();
    save_checkpoint(&partial, &path).unwrap();

    // Resume from the truncated checkpoint; only 3 apps re-run.
    let mut resumed_config = config.clone();
    resumed_config.resume_from = Some(path.clone());
    let resumed = run_campaign(&corpus, &knowledge, &resumed_config, None, None).unwrap();
    assert_eq!(
        serde_json::to_vec(&resumed.analyses).unwrap(),
        serde_json::to_vec(&uninterrupted.analyses).unwrap(),
        "resumed analyses must be byte-identical to the uninterrupted run"
    );
    assert_eq!(
        serde_json::to_vec(&resumed.failures).unwrap(),
        serde_json::to_vec(&uninterrupted.failures).unwrap(),
    );
    // The final checkpoint now covers the whole campaign again.
    let final_checkpoint = load_checkpoint(&path, &fingerprint).unwrap();
    assert_eq!(final_checkpoint.completed(), 5);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_refuses_a_foreign_checkpoint() {
    let corpus = tiny_corpus(2, 39);
    let knowledge = Knowledge::from_corpus(&corpus);
    let path = temp_checkpoint("foreign");
    let mut config = chaos_config(1, FaultPlan::new(1, FaultProfile::none()));
    config.checkpoint = Some(CheckpointConfig {
        path: path.clone(),
        every: 1,
    });
    run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
    // Same checkpoint, different chaos seed: must be rejected.
    let mut other = chaos_config(1, FaultPlan::new(2, FaultProfile::none()));
    other.resume_from = Some(path.clone());
    let err = run_campaign(&corpus, &knowledge, &other, None, None).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_resume_checkpoint_starts_fresh() {
    let corpus = tiny_corpus(2, 40);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut config = chaos_config(1, FaultPlan::new(3, FaultProfile::none()));
    config.resume_from = Some(temp_checkpoint("never-written"));
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
    assert_eq!(outcome.total(), 2);
    assert_eq!(outcome.analyses.len(), 2);
}

#[test]
fn chaos_surfaces_in_degraded_mode_accounting() {
    let corpus = tiny_corpus(3, 42);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut profile = FaultProfile::none();
    profile.report_truncation = 1.0;
    let config = chaos_config(2, FaultPlan::new(13, profile));
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).unwrap();
    assert_eq!(outcome.analyses.len(), 3);
    assert!(outcome.injected.reports_truncated > 0);
    let truncated: usize = outcome
        .analyses
        .iter()
        .map(|a| a.integrity.reports_truncated)
        .sum();
    assert_eq!(
        truncated, outcome.injected.reports_truncated,
        "every injected truncation must be observed by the decoder"
    );
    assert!(outcome.analyses.iter().all(|a| a.integrity.is_degraded()));
}
