//! Parallel experiment campaigns (§II-B3).
//!
//! Libspector's data-collection framework is "a job dispatcher and
//! multiple workers which run different and fresh copies of the same
//! modified Android image". Here a campaign fans one job per app out to
//! a pool of OS threads over crossbeam channels; every worker boots a
//! fresh simulated emulator, runs the experiment, performs the offline
//! per-app analysis immediately (so captures never accumulate in
//! memory), and ships the [`AppAnalysis`] back to the collector.
//!
//! Per-app monkey seeds are derived from the campaign seed and the app
//! index, so campaign results are independent of worker count and
//! scheduling order.
//!
//! Both channels are **bounded**, sized to the worker pool: a feeder
//! thread trickles job indices in as workers free up, and the
//! collector drains results concurrently, so memory stays O(workers)
//! regardless of corpus size. Failed runs are never silently skipped:
//! every app ends up in exactly one of
//! [`CampaignOutcome::analyses`] or [`CampaignOutcome::failures`].
//!
//! With [`run_corpus_live`], each worker additionally streams its
//! finished run's capture through a [`LiveCollector`] — the bridge to
//! the `spector-live` online attribution engine — so a campaign can be
//! watched while it runs.

pub mod store;

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;
use libspector::experiment::{resolver_for, run_app, ExperimentConfig, RawRun};
use libspector::knowledge::Knowledge;
use libspector::pipeline::{analyze_run, AppAnalysis};
use spector_corpus::Corpus;
use spector_live::{LiveEngine, LiveSummary};

pub use store::{load_campaign, save_campaign, Campaign};

/// Campaign settings.
#[derive(Debug, Clone, Default)]
pub struct DispatchConfig {
    /// Worker threads (0 = one per available CPU).
    pub workers: usize,
    /// Per-app experiment settings; the monkey seed is re-derived per
    /// app from this base seed.
    pub experiment: ExperimentConfig,
}

/// One app whose experiment could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppFailure {
    /// Index of the app in the corpus.
    pub index: usize,
    /// The app's package name.
    pub package: String,
    /// Rendered experiment error.
    pub error: String,
}

/// Everything a campaign produced: successful analyses in app order,
/// plus an explicit record of every app that failed — the invariant
/// `analyses.len() + failures.len() == corpus.apps.len()` always
/// holds, so a hole in the data is visible instead of silent.
#[derive(Debug, Clone, Default)]
pub struct CampaignOutcome {
    /// Per-app analyses of the runs that succeeded, in app order.
    pub analyses: Vec<AppAnalysis>,
    /// Apps whose experiment failed, in app order.
    pub failures: Vec<AppFailure>,
}

impl CampaignOutcome {
    /// Total apps accounted for (successes plus failures).
    pub fn total(&self) -> usize {
        self.analyses.len() + self.failures.len()
    }
}

/// Dispatch-side adapter to the streaming engine: feeds each worker's
/// finished [`RawRun`] into a [`LiveEngine`] as one run's event
/// stream, keyed by the app's corpus index. Snapshots may be taken
/// from any thread while the campaign runs.
pub struct LiveCollector {
    engine: LiveEngine,
}

impl LiveCollector {
    /// Wraps a running engine.
    pub fn new(engine: LiveEngine) -> Self {
        LiveCollector { engine }
    }

    /// Streams one finished run into the engine as run `index`.
    pub fn observe(&self, index: u32, raw: &RawRun) {
        self.engine.push_run(index, &raw.capture);
    }

    /// A consistent point-in-time summary of the campaign so far.
    pub fn snapshot(&self) -> LiveSummary {
        self.engine.snapshot()
    }

    /// Closes the stream and returns the final summary.
    pub fn finish(self) -> LiveSummary {
        self.engine.finish()
    }
}

/// Runs every app in `corpus` and returns the campaign outcome.
///
/// `progress` (if given) is called after each finished app — success
/// or failure — with the number finished so far.
pub fn run_corpus(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &DispatchConfig,
    progress: Option<&(dyn Fn(usize) + Sync)>,
) -> CampaignOutcome {
    run_corpus_inner(corpus, knowledge, config, None, progress)
}

/// [`run_corpus`], additionally streaming every successful run's
/// capture through `collector` (run id = app index) the moment the
/// run finishes — before its offline analysis. The returned outcome
/// is identical to [`run_corpus`]'s; the collector's final summary is
/// the live view of the same campaign.
pub fn run_corpus_live(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &DispatchConfig,
    collector: &LiveCollector,
    progress: Option<&(dyn Fn(usize) + Sync)>,
) -> CampaignOutcome {
    run_corpus_inner(corpus, knowledge, config, Some(collector), progress)
}

fn run_corpus_inner(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &DispatchConfig,
    collector: Option<&LiveCollector>,
    progress: Option<&(dyn Fn(usize) + Sync)>,
) -> CampaignOutcome {
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        config.workers
    };
    let resolver = resolver_for(&corpus.domains);
    // Bounded to the pool: the feeder blocks once every worker has a
    // job in hand plus one queued, and the collector loop below drains
    // results as they appear, so neither queue grows with corpus size.
    let queue = workers.max(1) * 2;
    let (job_tx, job_rx) = channel::bounded::<usize>(queue);
    let (result_tx, result_rx) = channel::bounded::<(usize, Result<AppAnalysis, AppFailure>)>(queue);

    let done = AtomicUsize::new(0);
    let mut results: Vec<Option<Result<AppAnalysis, AppFailure>>> = Vec::new();
    results.resize_with(corpus.apps.len(), || None);

    crossbeam::scope(|scope| {
        let apps = corpus.apps.len();
        scope.spawn(move |_| {
            for index in 0..apps {
                if job_tx.send(index).is_err() {
                    break;
                }
            }
            // job_tx drops here; workers drain and exit.
        });
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            let resolver = &resolver;
            let done = &done;
            scope.spawn(move |_| {
                while let Ok(index) = job_rx.recv() {
                    let app = &corpus.apps[index];
                    let mut experiment = config.experiment.clone();
                    // Deterministic per-app monkey seed, independent of
                    // scheduling.
                    experiment.monkey.seed ^=
                        (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let system: Vec<_> = app
                        .system_ops
                        .iter()
                        .map(|s| (s.op.clone(), s.dispatcher))
                        .collect();
                    let result = match run_app(&app.apk, resolver, &system, &experiment) {
                        Ok(raw) => {
                            if let Some(collector) = collector {
                                collector.observe(index as u32, &raw);
                            }
                            Ok(analyze_run(
                                &raw,
                                knowledge,
                                experiment.supervisor.collector_port,
                            ))
                        }
                        Err(error) => Err(AppFailure {
                            index,
                            package: app.package.clone(),
                            error: error.to_string(),
                        }),
                    };
                    let count = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(callback) = progress {
                        callback(count);
                    }
                    let _ = result_tx.send((index, result));
                }
            });
        }
        drop(job_rx);
        drop(result_tx);
        for (index, result) in result_rx.iter() {
            results[index] = Some(result);
        }
    })
    .expect("worker panicked");

    let mut outcome = CampaignOutcome::default();
    for result in results.into_iter() {
        match result.expect("every app index produces exactly one result") {
            Ok(analysis) => outcome.analyses.push(analysis),
            Err(failure) => outcome.failures.push(failure),
        }
    }
    debug_assert_eq!(outcome.total(), corpus.apps.len());
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_corpus::{AppGenConfig, CorpusConfig};

    fn tiny_corpus(apps: usize, seed: u64) -> Corpus {
        Corpus::generate(&CorpusConfig {
            apps,
            seed,
            appgen: AppGenConfig {
                method_scale: 0.004,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn quick_dispatch(workers: usize) -> DispatchConfig {
        let mut config = DispatchConfig {
            workers,
            ..Default::default()
        };
        config.experiment.monkey.events = 40;
        config
    }

    #[test]
    fn campaign_covers_every_app_in_order() {
        let corpus = tiny_corpus(8, 21);
        let knowledge = Knowledge::from_corpus(&corpus);
        let outcome = run_corpus(&corpus, &knowledge, &quick_dispatch(3), None);
        assert_eq!(outcome.total(), corpus.apps.len());
        assert_eq!(outcome.analyses.len(), 8);
        assert!(outcome.failures.is_empty());
        for (app, analysis) in corpus.apps.iter().zip(&outcome.analyses) {
            assert_eq!(app.package, analysis.package);
        }
    }

    #[test]
    fn results_independent_of_worker_count() {
        let corpus = tiny_corpus(6, 22);
        let knowledge = Knowledge::from_corpus(&corpus);
        let serial = run_corpus(&corpus, &knowledge, &quick_dispatch(1), None);
        let parallel = run_corpus(&corpus, &knowledge, &quick_dispatch(4), None);
        assert_eq!(serial.total(), parallel.total());
        assert_eq!(serial.analyses.len(), parallel.analyses.len());
        for (a, b) in serial.analyses.iter().zip(&parallel.analyses) {
            assert_eq!(a.package, b.package);
            assert_eq!(a.flows, b.flows);
            assert_eq!(a.coverage, b.coverage);
        }
    }

    #[test]
    fn progress_reports_every_app() {
        let corpus = tiny_corpus(5, 23);
        let knowledge = Knowledge::from_corpus(&corpus);
        let seen = AtomicUsize::new(0);
        let callback = |_done: usize| {
            seen.fetch_add(1, Ordering::Relaxed);
        };
        run_corpus(&corpus, &knowledge, &quick_dispatch(2), Some(&callback));
        assert_eq!(seen.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn zero_workers_defaults_to_cpus() {
        let corpus = tiny_corpus(2, 24);
        let knowledge = Knowledge::from_corpus(&corpus);
        let outcome = run_corpus(&corpus, &knowledge, &quick_dispatch(0), None);
        assert_eq!(outcome.analyses.len(), 2);
        assert_eq!(outcome.total(), 2);
    }

    /// Replaces one app's `classes.dex` payload with garbage of the
    /// same length — the archive still parses, the dex does not, so
    /// `run_app` fails for exactly that app.
    fn corrupt_dex(corpus: &mut Corpus, victim: usize) {
        use spector_dex::apk::Apk;
        let mut raw = corpus.apps[victim].apk.to_bytes().to_vec();
        let name = b"classes.dex";
        let pos = raw
            .windows(name.len())
            .position(|w| w == name)
            .expect("apk contains a dex entry");
        let len_off = pos + name.len();
        let data_len =
            u32::from_le_bytes(raw[len_off..len_off + 4].try_into().unwrap()) as usize;
        for byte in &mut raw[len_off + 4..len_off + 4 + data_len] {
            *byte = 0xFF;
        }
        corpus.apps[victim].apk = Apk::from_bytes(&raw).expect("container still parses");
    }

    #[test]
    fn failed_apps_are_reported_not_silently_dropped() {
        let mut corpus = tiny_corpus(4, 25);
        corrupt_dex(&mut corpus, 2);
        let knowledge = Knowledge::from_corpus(&corpus);
        let seen = AtomicUsize::new(0);
        let callback = |_done: usize| {
            seen.fetch_add(1, Ordering::Relaxed);
        };
        let outcome = run_corpus(&corpus, &knowledge, &quick_dispatch(2), Some(&callback));
        // The count invariant: every app is accounted for, exactly once.
        assert_eq!(outcome.total(), corpus.apps.len());
        assert_eq!(outcome.analyses.len(), 3);
        assert_eq!(outcome.failures.len(), 1);
        let failure = &outcome.failures[0];
        assert_eq!(failure.index, 2);
        assert_eq!(failure.package, corpus.apps[2].package);
        assert!(!failure.error.is_empty());
        // The surviving analyses keep app order, skipping the hole.
        let packages: Vec<&str> = outcome.analyses.iter().map(|a| a.package.as_str()).collect();
        let expected: Vec<&str> = corpus
            .apps
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, a)| a.package.as_str())
            .collect();
        assert_eq!(packages, expected);
        // Progress fired for failures too.
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn live_collector_sees_the_campaign_as_it_runs() {
        use spector_live::{LiveConfig, LiveEngine};
        use std::sync::Arc;

        let corpus = tiny_corpus(4, 26);
        let knowledge = Knowledge::from_corpus(&corpus);
        let collector = LiveCollector::new(LiveEngine::start(
            Arc::new(knowledge.clone()),
            LiveConfig {
                shards: 2,
                ..Default::default()
            },
        ));
        let outcome = run_corpus_live(&corpus, &knowledge, &quick_dispatch(2), &collector, None);
        let live = collector.finish();
        assert_eq!(outcome.analyses.len(), 4);
        let offline = spector_live::LiveSummary::from_analyses(&outcome.analyses);
        assert_eq!(live.flows, offline.flows);
        assert_eq!(live.per_library, offline.per_library);
        assert_eq!(live.total_sent, offline.total_sent);
        assert_eq!(live.total_recv, offline.total_recv);
        assert_eq!(live.unjoined_reports(), offline.unjoined_reports());
        assert_eq!(live.dropped_events, 0);
    }
}
