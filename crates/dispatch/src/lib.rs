//! Parallel experiment campaigns (§II-B3).
//!
//! Libspector's data-collection framework is "a job dispatcher and
//! multiple workers which run different and fresh copies of the same
//! modified Android image". Here a campaign fans one job per app out to
//! a pool of OS threads over crossbeam channels; every worker boots a
//! fresh simulated emulator, runs the experiment, performs the offline
//! per-app analysis immediately (so captures never accumulate in
//! memory), and ships the [`AppAnalysis`] back to the collector.
//!
//! Per-app monkey seeds are derived from the campaign seed and the app
//! index, so campaign results are independent of worker count and
//! scheduling order.

pub mod store;

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;
use libspector::experiment::{resolver_for, run_app, ExperimentConfig};
use libspector::knowledge::Knowledge;
use libspector::pipeline::{analyze_run, AppAnalysis};
use spector_corpus::Corpus;

pub use store::{load_campaign, save_campaign, Campaign};

/// Campaign settings.
#[derive(Debug, Clone, Default)]
pub struct DispatchConfig {
    /// Worker threads (0 = one per available CPU).
    pub workers: usize,
    /// Per-app experiment settings; the monkey seed is re-derived per
    /// app from this base seed.
    pub experiment: ExperimentConfig,
}

/// Runs every app in `corpus` and returns the analyses in app order.
///
/// `progress` (if given) is called after each completed app with the
/// number done so far.
pub fn run_corpus(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &DispatchConfig,
    progress: Option<&(dyn Fn(usize) + Sync)>,
) -> Vec<AppAnalysis> {
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        config.workers
    };
    let resolver = resolver_for(&corpus.domains);
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    let (result_tx, result_rx) = channel::unbounded::<(usize, AppAnalysis)>();
    for index in 0..corpus.apps.len() {
        job_tx.send(index).expect("queue is open");
    }
    drop(job_tx);

    let done = AtomicUsize::new(0);
    let mut results: Vec<Option<AppAnalysis>> = Vec::new();
    results.resize_with(corpus.apps.len(), || None);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            let resolver = &resolver;
            let done = &done;
            scope.spawn(move |_| {
                while let Ok(index) = job_rx.recv() {
                    let app = &corpus.apps[index];
                    let mut experiment = config.experiment.clone();
                    // Deterministic per-app monkey seed, independent of
                    // scheduling.
                    experiment.monkey.seed ^=
                        (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    let system: Vec<_> = app
                        .system_ops
                        .iter()
                        .map(|s| (s.op.clone(), s.dispatcher))
                        .collect();
                    let Ok(raw) = run_app(&app.apk, resolver, &system, &experiment) else {
                        continue;
                    };
                    let analysis =
                        analyze_run(&raw, knowledge, experiment.supervisor.collector_port);
                    let count = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(callback) = progress {
                        callback(count);
                    }
                    let _ = result_tx.send((index, analysis));
                }
            });
        }
        drop(result_tx);
        for (index, analysis) in result_rx.iter() {
            results[index] = Some(analysis);
        }
    })
    .expect("worker panicked");

    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_corpus::{AppGenConfig, CorpusConfig};

    fn tiny_corpus(apps: usize, seed: u64) -> Corpus {
        Corpus::generate(&CorpusConfig {
            apps,
            seed,
            appgen: AppGenConfig {
                method_scale: 0.004,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn quick_dispatch(workers: usize) -> DispatchConfig {
        let mut config = DispatchConfig {
            workers,
            ..Default::default()
        };
        config.experiment.monkey.events = 40;
        config
    }

    #[test]
    fn campaign_covers_every_app_in_order() {
        let corpus = tiny_corpus(8, 21);
        let knowledge = Knowledge::from_corpus(&corpus);
        let analyses = run_corpus(&corpus, &knowledge, &quick_dispatch(3), None);
        assert_eq!(analyses.len(), 8);
        for (app, analysis) in corpus.apps.iter().zip(&analyses) {
            assert_eq!(app.package, analysis.package);
        }
    }

    #[test]
    fn results_independent_of_worker_count() {
        let corpus = tiny_corpus(6, 22);
        let knowledge = Knowledge::from_corpus(&corpus);
        let serial = run_corpus(&corpus, &knowledge, &quick_dispatch(1), None);
        let parallel = run_corpus(&corpus, &knowledge, &quick_dispatch(4), None);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.package, b.package);
            assert_eq!(a.flows, b.flows);
            assert_eq!(a.coverage, b.coverage);
        }
    }

    #[test]
    fn progress_reports_every_app() {
        let corpus = tiny_corpus(5, 23);
        let knowledge = Knowledge::from_corpus(&corpus);
        let seen = AtomicUsize::new(0);
        let callback = |_done: usize| {
            seen.fetch_add(1, Ordering::Relaxed);
        };
        run_corpus(&corpus, &knowledge, &quick_dispatch(2), Some(&callback));
        assert_eq!(seen.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn zero_workers_defaults_to_cpus() {
        let corpus = tiny_corpus(2, 24);
        let knowledge = Knowledge::from_corpus(&corpus);
        let analyses = run_corpus(&corpus, &knowledge, &quick_dispatch(0), None);
        assert_eq!(analyses.len(), 2);
    }
}
