//! Parallel experiment campaigns (§II-B3), hardened.
//!
//! Libspector's data-collection framework is "a job dispatcher and
//! multiple workers which run different and fresh copies of the same
//! modified Android image". Here a campaign fans one job per app out to
//! a pool of OS threads over crossbeam channels; every worker boots a
//! fresh simulated emulator, runs the experiment, performs the offline
//! per-app analysis immediately (so captures never accumulate in
//! memory), and ships the [`AppAnalysis`] back to the collector.
//!
//! Per-app monkey seeds are derived from the campaign seed and the app
//! index, so campaign results are independent of worker count and
//! scheduling order.
//!
//! Both channels are **bounded**, sized to the worker pool: a feeder
//! thread trickles job indices in as workers free up, and the
//! collector drains results concurrently, so memory stays O(workers)
//! regardless of corpus size. Failed runs are never silently skipped:
//! every app ends up in exactly one of
//! [`CampaignOutcome::analyses`] or [`CampaignOutcome::failures`].
//!
//! [`run_campaign`] is the hardened entry point, built for rigs that
//! fail:
//!
//! * **Chaos** — an optional seeded [`FaultPlan`] injects emulator boot
//!   failures, monkey hangs, worker panics, and wire faults
//!   (report loss/duplication/reordering/corruption, frame truncation,
//!   capture death) deterministically per `(app, attempt)`.
//! * **Isolation** — each attempt runs under `catch_unwind`, so one
//!   poisoned app records an [`AppFailure`] instead of sinking the
//!   campaign.
//! * **Retries** — boot failures and hangs (the *retryable* weather)
//!   are retried under a bounded [`RetryPolicy`] with exponential
//!   backoff and deterministic jitter; real errors are not.
//! * **Deadlines** — a per-app virtual-clock deadline turns a wedged
//!   run into a retryable failure instead of a stuck worker.
//! * **Checkpointing** — the collector persists a fingerprinted
//!   [`CampaignCheckpoint`] every N results; a killed campaign resumes
//!   from it without re-running completed apps, and produces the same
//!   [`CampaignOutcome`] an uninterrupted run would have.
//!
//! [`run_corpus`] remains the simple facade: no chaos, no retries, no
//! checkpointing — byte-identical to the pre-hardening dispatcher.
//!
//! With [`run_corpus_live`], each worker additionally streams its
//! finished run's capture through a [`LiveCollector`] — the bridge to
//! the `spector-live` online attribution engine — so a campaign can be
//! watched while it runs.

pub mod resilience;
pub mod store;

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crossbeam::channel;
use libspector::experiment::{resolver_for, run_app, ExperimentConfig, RawRun};
use libspector::knowledge::Knowledge;
use libspector::pipeline::{analyze_run_instrumented, AppAnalysis, PipelineTelemetry};
use serde::{Deserialize, Serialize};
use spector_corpus::Corpus;
use spector_faults::{perturb_capture, FaultPlan, FaultTelemetry, PerturbStats};
use spector_live::{LiveEngine, LiveSummary};
use spector_telemetry::{Counter, Histogram, StageRecorder, Telemetry, LATENCY_BOUNDS_MICROS};

pub use resilience::RetryPolicy;
pub use store::{
    load_campaign, load_checkpoint, save_campaign, save_checkpoint, Campaign, CampaignCheckpoint,
    CampaignFingerprint, CheckpointEntry,
};

/// Campaign settings.
#[derive(Debug, Clone, Default)]
pub struct DispatchConfig {
    /// Worker threads (0 = one per available CPU).
    pub workers: usize,
    /// Per-app experiment settings; the monkey seed is re-derived per
    /// app from this base seed.
    pub experiment: ExperimentConfig,
}

/// Periodic checkpoint settings for [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Where the checkpoint file lives (atomically replaced).
    pub path: PathBuf,
    /// Write a checkpoint every this many finished apps (min 1).
    pub every: usize,
}

/// Everything [`run_campaign`] needs beyond the corpus: pool settings
/// plus the resilience knobs. The default is exactly [`run_corpus`]'s
/// behavior — no chaos, single attempt, no deadline, no checkpoint.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker pool and per-app experiment settings.
    pub dispatch: DispatchConfig,
    /// Seeded fault plan; `None` (or a no-op plan) injects nothing.
    pub chaos: Option<FaultPlan>,
    /// Retry budget for retryable failures (boot failure, hang).
    pub retry: RetryPolicy,
    /// Per-app virtual-clock deadline, microseconds: a run whose
    /// virtual duration exceeds this counts as a hang (retryable).
    pub deadline_micros: Option<u64>,
    /// Periodic checkpointing; `None` disables it.
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from this checkpoint file if it exists (a missing file
    /// starts fresh; a fingerprint mismatch is an error).
    pub resume_from: Option<PathBuf>,
    /// Telemetry sink for campaign/pipeline/fault metrics. The default
    /// disabled handle reduces every instrumentation touch point to one
    /// branch; it never affects results, so it is deliberately not part
    /// of the checkpoint fingerprint.
    pub telemetry: Telemetry,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            dispatch: DispatchConfig::default(),
            chaos: None,
            retry: RetryPolicy::never(),
            deadline_micros: None,
            checkpoint: None,
            resume_from: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

impl CampaignConfig {
    /// The identity this campaign checkpoints under.
    pub fn fingerprint(&self, apps: usize) -> CampaignFingerprint {
        CampaignFingerprint {
            apps,
            seed: self.dispatch.experiment.monkey.seed,
            monkey_events: self.dispatch.experiment.monkey.events,
            chaos: self.chaos,
            sampling: self.dispatch.experiment.supervisor.sampling,
        }
    }
}

/// One app whose experiment could not run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppFailure {
    /// Index of the app in the corpus.
    pub index: usize,
    /// The app's package name.
    pub package: String,
    /// Rendered experiment error (the last attempt's).
    pub error: String,
    /// Attempts spent before giving up (1 = failed first try, no
    /// retries allowed or the failure was not retryable).
    #[serde(default)]
    pub attempts: u32,
}

/// Everything a campaign produced: successful analyses in app order,
/// plus an explicit record of every app that failed — the invariant
/// `analyses.len() + failures.len() == corpus.apps.len()` always
/// holds, so a hole in the data is visible instead of silent.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignOutcome {
    /// Per-app analyses of the runs that succeeded, in app order.
    pub analyses: Vec<AppAnalysis>,
    /// Apps whose experiment failed, in app order.
    pub failures: Vec<AppFailure>,
    /// Retry attempts spent beyond each app's first try.
    #[serde(default)]
    pub retried: usize,
    /// Wire faults the chaos plan injected (all zero without chaos).
    #[serde(default)]
    pub injected: PerturbStats,
}

impl CampaignOutcome {
    /// Total apps accounted for (successes plus failures).
    pub fn total(&self) -> usize {
        self.analyses.len() + self.failures.len()
    }
}

/// Dispatch-side adapter to the streaming engine: feeds each worker's
/// finished [`RawRun`] into a [`LiveEngine`] as one run's event
/// stream, keyed by the app's corpus index. Snapshots may be taken
/// from any thread while the campaign runs.
pub struct LiveCollector {
    engine: LiveEngine,
}

impl LiveCollector {
    /// Wraps a running engine.
    pub fn new(engine: LiveEngine) -> Self {
        LiveCollector { engine }
    }

    /// Streams one finished run into the engine as run `index`.
    pub fn observe(&self, index: u32, raw: &RawRun) {
        self.engine.push_run(index, &raw.capture);
    }

    /// A consistent point-in-time summary of the campaign so far.
    pub fn snapshot(&self) -> LiveSummary {
        self.engine.snapshot()
    }

    /// [`LiveCollector::snapshot`] plus the engine's merged telemetry.
    pub fn snapshot_full(&self) -> (LiveSummary, spector_telemetry::MetricsSnapshot) {
        self.engine.snapshot_full()
    }

    /// Closes the stream and returns the final summary.
    pub fn finish(self) -> LiveSummary {
        self.engine.finish()
    }

    /// [`LiveCollector::finish`] plus the final merged telemetry.
    pub fn finish_with_metrics(self) -> (LiveSummary, spector_telemetry::MetricsSnapshot) {
        self.engine.finish_with_metrics()
    }
}

/// Runs every app in `corpus` and returns the campaign outcome.
///
/// `progress` (if given) is called after each finished app — success
/// or failure — with the number finished so far.
pub fn run_corpus(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &DispatchConfig,
    progress: Option<&(dyn Fn(usize) + Sync)>,
) -> CampaignOutcome {
    let campaign = CampaignConfig {
        dispatch: config.clone(),
        ..Default::default()
    };
    run_campaign(corpus, knowledge, &campaign, None, progress)
        .expect("io is impossible without checkpoint/resume")
}

/// [`run_corpus`], additionally streaming every successful run's
/// capture through `collector` (run id = app index) the moment the
/// run finishes — before its offline analysis. The returned outcome
/// is identical to [`run_corpus`]'s; the collector's final summary is
/// the live view of the same campaign.
pub fn run_corpus_live(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &DispatchConfig,
    collector: &LiveCollector,
    progress: Option<&(dyn Fn(usize) + Sync)>,
) -> CampaignOutcome {
    let campaign = CampaignConfig {
        dispatch: config.clone(),
        ..Default::default()
    };
    run_campaign(corpus, knowledge, &campaign, Some(collector), progress)
        .expect("io is impossible without checkpoint/resume")
}

/// Pre-fetched telemetry handles for one campaign, cloned into every
/// worker: the pipeline's stage recorders and balance counters, the
/// fault-event counters, and the dispatcher's own campaign counters.
/// Built once per [`run_campaign`] from [`CampaignConfig::telemetry`];
/// everything is inert when that handle is disabled.
#[derive(Clone)]
pub struct CampaignInstruments {
    /// Offline-pipeline stages and join-balance counters.
    pub pipeline: PipelineTelemetry,
    /// Injected-fault counters (`spector_fault_*_total`).
    pub faults: FaultTelemetry,
    /// `experiment/run_app` stage: wall time of one experiment run.
    pub run_app_stage: StageRecorder,
    /// `spector_campaign_apps_ok_total`: apps that produced an analysis.
    pub apps_ok: Counter,
    /// `spector_campaign_apps_failed_total`: apps that exhausted their
    /// retry budget (or failed fatally).
    pub apps_failed: Counter,
    /// `spector_campaign_retries_total`: attempts beyond each app's
    /// first try.
    pub retries: Counter,
    /// `spector_campaign_checkpoints_total`: checkpoint files written.
    pub checkpoints: Counter,
    /// `spector_campaign_app_virtual_micros`: each successful run's
    /// virtual-clock duration — deterministic, unlike the wall spans.
    pub app_virtual_micros: Histogram,
}

impl CampaignInstruments {
    /// Fetches all campaign handles from `telemetry`.
    pub fn new(telemetry: &Telemetry) -> Self {
        CampaignInstruments {
            pipeline: PipelineTelemetry::new(telemetry),
            faults: FaultTelemetry::new(telemetry),
            run_app_stage: telemetry.stage_recorder("experiment/run_app"),
            apps_ok: telemetry.counter("spector_campaign_apps_ok_total"),
            apps_failed: telemetry.counter("spector_campaign_apps_failed_total"),
            retries: telemetry.counter("spector_campaign_retries_total"),
            checkpoints: telemetry.counter("spector_campaign_checkpoints_total"),
            app_virtual_micros: telemetry.histogram(
                "spector_campaign_app_virtual_micros",
                &LATENCY_BOUNDS_MICROS,
            ),
        }
    }
}

/// How one attempt at one app ended, before retry accounting.
enum AttemptError {
    /// Weather: worth retrying (boot failure, hang, deadline).
    Retryable(String),
    /// A real error or a panic: retrying would waste the budget.
    Fatal(String),
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// One worker's full retry loop for one app. Everything that can blow
/// up — the run, the perturbation, the analysis — executes under
/// `catch_unwind`, so the worst an app can do is record a failure.
#[allow(clippy::too_many_arguments)]
fn run_one_app(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &CampaignConfig,
    resolver: &std::collections::HashMap<String, std::net::Ipv4Addr>,
    collector: Option<&LiveCollector>,
    instruments: &CampaignInstruments,
    index: usize,
) -> (Result<AppAnalysis, AppFailure>, PerturbStats, u32) {
    let app = &corpus.apps[index];
    let chaos_seed = config.chaos.map(|p| p.seed()).unwrap_or(0);
    let deadline = config.deadline_micros.unwrap_or(u64::MAX);
    let mut injected = PerturbStats::default();
    let mut attempt: u32 = 0;
    loop {
        let faults = config
            .chaos
            .map(|plan| plan.process_faults(index, attempt))
            .unwrap_or_default();
        let attempt_result: Result<AppAnalysis, AttemptError> = if faults.boot_failure {
            instruments.faults.boot_failures.inc();
            Err(AttemptError::Retryable(
                "emulator failed to boot (injected)".to_owned(),
            ))
        } else {
            let guarded = catch_unwind(AssertUnwindSafe(|| {
                if faults.worker_panic {
                    instruments.faults.worker_panics.inc();
                    panic!("injected worker panic (chaos)");
                }
                let mut experiment = config.dispatch.experiment.clone();
                // Deterministic per-app monkey seed, independent of
                // scheduling and of the attempt number: a retried run
                // replays the same app behavior, only the faults move.
                experiment.monkey.seed ^= (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let system: Vec<_> = app
                    .system_ops
                    .iter()
                    .map(|s| (s.op.clone(), s.dispatcher))
                    .collect();
                let mut raw = match instruments
                    .run_app_stage
                    .time(|| run_app(&app.apk, resolver, &system, &experiment))
                {
                    Ok(raw) => raw,
                    Err(error) => return Err(AttemptError::Fatal(error.to_string())),
                };
                if faults.monkey_hang {
                    instruments.faults.monkey_hangs.inc();
                    return Err(AttemptError::Retryable(
                        "monkey hang: virtual clock stalled past the app deadline (injected)"
                            .to_owned(),
                    ));
                }
                if raw.duration_micros > deadline {
                    return Err(AttemptError::Retryable(format!(
                        "app deadline exceeded: run took {}µs of virtual time (deadline {}µs)",
                        raw.duration_micros, deadline
                    )));
                }
                let mut stats = PerturbStats::default();
                if let Some(plan) = &config.chaos {
                    let capture = std::mem::take(&mut raw.capture);
                    let (capture, perturbed) = perturb_capture(
                        plan,
                        index,
                        attempt,
                        capture,
                        experiment.supervisor.collector_port,
                    );
                    raw.capture = capture;
                    stats = perturbed;
                }
                if let Some(collector) = collector {
                    collector.observe(index as u32, &raw);
                }
                instruments.app_virtual_micros.record(raw.duration_micros);
                Ok((
                    analyze_run_instrumented(
                        &raw,
                        knowledge,
                        experiment.supervisor.collector_port,
                        &instruments.pipeline,
                    ),
                    stats,
                ))
            }));
            match guarded {
                Ok(Ok((analysis, stats))) => {
                    injected.merge(&stats);
                    Ok(analysis)
                }
                Ok(Err(error)) => Err(error),
                Err(payload) => Err(AttemptError::Fatal(format!(
                    "worker panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            }
        };
        match attempt_result {
            Ok(analysis) => return (Ok(analysis), injected, attempt),
            Err(AttemptError::Retryable(error)) if attempt + 1 < config.retry.max_attempts => {
                let backoff = config.retry.backoff_micros(chaos_seed, index, attempt);
                if backoff > 0 {
                    std::thread::sleep(Duration::from_micros(backoff));
                }
                attempt += 1;
                let _ = error;
            }
            Err(AttemptError::Retryable(error)) | Err(AttemptError::Fatal(error)) => {
                return (
                    Err(AppFailure {
                        index,
                        package: app.package.clone(),
                        error,
                        attempts: attempt + 1,
                    }),
                    injected,
                    attempt,
                )
            }
        }
    }
}

/// Runs a hardened campaign: [`run_corpus`] plus chaos injection,
/// panic isolation, bounded retries, per-app deadlines, and
/// checkpoint/resume. With the default [`CampaignConfig`] the outcome
/// is byte-identical to [`run_corpus`].
///
/// # Errors
///
/// Returns an error when the resume checkpoint exists but does not
/// match this campaign's fingerprint, or when a checkpoint write
/// fails. The experiment itself cannot error: every app failure is
/// recorded in the outcome.
pub fn run_campaign(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &CampaignConfig,
    collector: Option<&LiveCollector>,
    progress: Option<&(dyn Fn(usize) + Sync)>,
) -> io::Result<CampaignOutcome> {
    run_campaign_stored(corpus, knowledge, config, collector, progress, None)
}

/// [`run_campaign`] with a durable write path: every successful
/// analysis is appended to `store` the moment the collector loop sees
/// it — incrementally, beside the checkpoints — so a campaign's
/// records hit disk as it runs instead of only living in the returned
/// [`CampaignOutcome`]. Analyses prefilled from a resume checkpoint
/// are appended too (the writer registered a fresh store campaign, so
/// nothing is double-counted).
///
/// The writer rides in a `Mutex` because the caller keeps using it
/// after the campaign (live snapshot flushes, the final seal):
/// appends happen only from the single collector loop, so the lock is
/// uncontended here.
pub fn run_campaign_stored(
    corpus: &Corpus,
    knowledge: &Knowledge,
    config: &CampaignConfig,
    collector: Option<&LiveCollector>,
    progress: Option<&(dyn Fn(usize) + Sync)>,
    store: Option<&Mutex<spector_store::StoreWriter>>,
) -> io::Result<CampaignOutcome> {
    let apps = corpus.apps.len();
    let fingerprint = config.fingerprint(apps);
    let instruments = CampaignInstruments::new(&config.telemetry);

    let mut results: Vec<Option<Result<AppAnalysis, AppFailure>>> = Vec::new();
    results.resize_with(apps, || None);
    let mut retried: usize = 0;
    let mut injected = PerturbStats::default();
    if let Some(path) = &config.resume_from {
        match load_checkpoint(path, &fingerprint) {
            Ok(checkpoint) => {
                retried = checkpoint.retried;
                injected = checkpoint.injected;
                for (slot, entry) in results.iter_mut().zip(checkpoint.results) {
                    *slot = entry.map(|entry| match entry {
                        CheckpointEntry::Analysis(analysis) => Ok(analysis),
                        CheckpointEntry::Failure(failure) => Err(failure),
                    });
                }
            }
            // No checkpoint yet: a fresh campaign that will write one.
            Err(error) if error.kind() == io::ErrorKind::NotFound => {}
            Err(error) => return Err(error),
        }
    }
    if let Some(store) = store {
        // Checkpoint-resumed analyses belong to this writer's (new)
        // store campaign as much as freshly-computed ones do.
        let mut writer = store.lock().expect("store writer poisoned");
        for (index, slot) in results.iter().enumerate() {
            if let Some(Ok(analysis)) = slot {
                writer
                    .append_analysis(index as u32, analysis)
                    .map_err(io::Error::from)?;
            }
        }
    }
    let pending: Vec<usize> = (0..apps).filter(|i| results[*i].is_none()).collect();

    let workers = if config.dispatch.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    } else {
        config.dispatch.workers
    };
    let resolver = resolver_for(&corpus.domains);
    // Bounded to the pool: the feeder blocks once every worker has a
    // job in hand plus one queued, and the collector loop below drains
    // results as they appear, so neither queue grows with corpus size.
    let queue = workers.max(1) * 2;
    let (job_tx, job_rx) = channel::bounded::<usize>(queue);
    let (result_tx, result_rx) =
        channel::bounded::<(usize, Result<AppAnalysis, AppFailure>, PerturbStats, u32)>(queue);

    let done = AtomicUsize::new(apps - pending.len());
    let mut checkpoint_error: Option<io::Error> = None;
    let mut store_error: Option<io::Error> = None;
    crossbeam::scope(|scope| {
        scope.spawn(|_| {
            for index in &pending {
                if job_tx.send(*index).is_err() {
                    break;
                }
            }
            drop(job_tx);
            // job_tx drops here; workers drain and exit.
        });
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let result_tx = result_tx.clone();
            let resolver = &resolver;
            let done = &done;
            let instruments = &instruments;
            scope.spawn(move |_| {
                while let Ok(index) = job_rx.recv() {
                    let (result, stats, extra_attempts) = run_one_app(
                        corpus,
                        knowledge,
                        config,
                        resolver,
                        collector,
                        instruments,
                        index,
                    );
                    let count = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(callback) = progress {
                        callback(count);
                    }
                    let _ = result_tx.send((index, result, stats, extra_attempts));
                }
            });
        }
        drop(job_rx);
        drop(result_tx);
        let mut since_checkpoint = 0usize;
        for (index, result, stats, extra_attempts) in result_rx.iter() {
            retried += extra_attempts as usize;
            instruments.retries.add(extra_attempts as u64);
            injected.merge(&stats);
            instruments.faults.record(&stats);
            match &result {
                Ok(analysis) => {
                    instruments.apps_ok.inc();
                    if let Some(store) = store {
                        if store_error.is_none() {
                            let mut writer = store.lock().expect("store writer poisoned");
                            if let Err(error) = writer.append_analysis(index as u32, analysis) {
                                store_error = Some(error.into());
                            }
                        }
                    }
                }
                Err(_) => instruments.apps_failed.inc(),
            }
            results[index] = Some(result);
            if let Some(checkpoint) = &config.checkpoint {
                since_checkpoint += 1;
                if since_checkpoint >= checkpoint.every.max(1) && checkpoint_error.is_none() {
                    since_checkpoint = 0;
                    let snapshot = snapshot_checkpoint(&fingerprint, &results, retried, &injected);
                    if let Err(error) = save_checkpoint(&snapshot, &checkpoint.path) {
                        checkpoint_error = Some(error);
                    } else {
                        instruments.checkpoints.inc();
                    }
                }
            }
        }
    })
    .expect("worker panicked outside isolation");
    if let Some(error) = checkpoint_error {
        return Err(error);
    }
    if let Some(error) = store_error {
        return Err(error);
    }
    if let Some(checkpoint) = &config.checkpoint {
        let snapshot = snapshot_checkpoint(&fingerprint, &results, retried, &injected);
        save_checkpoint(&snapshot, &checkpoint.path)?;
        instruments.checkpoints.inc();
    }

    let mut outcome = CampaignOutcome {
        retried,
        injected,
        ..Default::default()
    };
    for result in results.into_iter() {
        match result.expect("every app index produces exactly one result") {
            Ok(analysis) => outcome.analyses.push(analysis),
            Err(failure) => outcome.failures.push(failure),
        }
    }
    debug_assert_eq!(outcome.total(), corpus.apps.len());
    Ok(outcome)
}

fn snapshot_checkpoint(
    fingerprint: &CampaignFingerprint,
    results: &[Option<Result<AppAnalysis, AppFailure>>],
    retried: usize,
    injected: &PerturbStats,
) -> CampaignCheckpoint {
    CampaignCheckpoint {
        fingerprint: fingerprint.clone(),
        results: results
            .iter()
            .map(|slot| {
                slot.as_ref().map(|result| match result {
                    Ok(analysis) => CheckpointEntry::Analysis(analysis.clone()),
                    Err(failure) => CheckpointEntry::Failure(failure.clone()),
                })
            })
            .collect(),
        retried,
        injected: *injected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_corpus::{AppGenConfig, CorpusConfig};

    fn tiny_corpus(apps: usize, seed: u64) -> Corpus {
        Corpus::generate(&CorpusConfig {
            apps,
            seed,
            appgen: AppGenConfig {
                method_scale: 0.004,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn quick_dispatch(workers: usize) -> DispatchConfig {
        let mut config = DispatchConfig {
            workers,
            ..Default::default()
        };
        config.experiment.monkey.events = 40;
        config
    }

    #[test]
    fn campaign_covers_every_app_in_order() {
        let corpus = tiny_corpus(8, 21);
        let knowledge = Knowledge::from_corpus(&corpus);
        let outcome = run_corpus(&corpus, &knowledge, &quick_dispatch(3), None);
        assert_eq!(outcome.total(), corpus.apps.len());
        assert_eq!(outcome.analyses.len(), 8);
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.retried, 0);
        assert_eq!(outcome.injected, PerturbStats::default());
        for (app, analysis) in corpus.apps.iter().zip(&outcome.analyses) {
            assert_eq!(app.package, analysis.package);
        }
    }

    #[test]
    fn results_independent_of_worker_count() {
        let corpus = tiny_corpus(6, 22);
        let knowledge = Knowledge::from_corpus(&corpus);
        let serial = run_corpus(&corpus, &knowledge, &quick_dispatch(1), None);
        let parallel = run_corpus(&corpus, &knowledge, &quick_dispatch(4), None);
        assert_eq!(serial.total(), parallel.total());
        assert_eq!(serial.analyses.len(), parallel.analyses.len());
        for (a, b) in serial.analyses.iter().zip(&parallel.analyses) {
            assert_eq!(a.package, b.package);
            assert_eq!(a.flows, b.flows);
            assert_eq!(a.coverage, b.coverage);
        }
    }

    #[test]
    fn progress_reports_every_app() {
        let corpus = tiny_corpus(5, 23);
        let knowledge = Knowledge::from_corpus(&corpus);
        let seen = AtomicUsize::new(0);
        let callback = |_done: usize| {
            seen.fetch_add(1, Ordering::Relaxed);
        };
        run_corpus(&corpus, &knowledge, &quick_dispatch(2), Some(&callback));
        assert_eq!(seen.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn zero_workers_defaults_to_cpus() {
        let corpus = tiny_corpus(2, 24);
        let knowledge = Knowledge::from_corpus(&corpus);
        let outcome = run_corpus(&corpus, &knowledge, &quick_dispatch(0), None);
        assert_eq!(outcome.analyses.len(), 2);
        assert_eq!(outcome.total(), 2);
    }

    /// Replaces one app's `classes.dex` payload with garbage of the
    /// same length — the archive still parses, the dex does not, so
    /// `run_app` fails for exactly that app.
    fn corrupt_dex(corpus: &mut Corpus, victim: usize) {
        use spector_dex::apk::Apk;
        let mut raw = corpus.apps[victim].apk.to_bytes().to_vec();
        let name = b"classes.dex";
        let pos = raw
            .windows(name.len())
            .position(|w| w == name)
            .expect("apk contains a dex entry");
        let len_off = pos + name.len();
        let data_len = u32::from_le_bytes(raw[len_off..len_off + 4].try_into().unwrap()) as usize;
        for byte in &mut raw[len_off + 4..len_off + 4 + data_len] {
            *byte = 0xFF;
        }
        corpus.apps[victim].apk = Apk::from_bytes(&raw).expect("container still parses");
    }

    #[test]
    fn failed_apps_are_reported_not_silently_dropped() {
        let mut corpus = tiny_corpus(4, 25);
        corrupt_dex(&mut corpus, 2);
        let knowledge = Knowledge::from_corpus(&corpus);
        let seen = AtomicUsize::new(0);
        let callback = |_done: usize| {
            seen.fetch_add(1, Ordering::Relaxed);
        };
        let outcome = run_corpus(&corpus, &knowledge, &quick_dispatch(2), Some(&callback));
        // The count invariant: every app is accounted for, exactly once.
        assert_eq!(outcome.total(), corpus.apps.len());
        assert_eq!(outcome.analyses.len(), 3);
        assert_eq!(outcome.failures.len(), 1);
        let failure = &outcome.failures[0];
        assert_eq!(failure.index, 2);
        assert_eq!(failure.package, corpus.apps[2].package);
        assert!(!failure.error.is_empty());
        assert_eq!(failure.attempts, 1, "apk errors are not retryable");
        // The surviving analyses keep app order, skipping the hole.
        let packages: Vec<&str> = outcome
            .analyses
            .iter()
            .map(|a| a.package.as_str())
            .collect();
        let expected: Vec<&str> = corpus
            .apps
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, a)| a.package.as_str())
            .collect();
        assert_eq!(packages, expected);
        // Progress fired for failures too.
        assert_eq!(seen.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn live_collector_sees_the_campaign_as_it_runs() {
        use spector_live::{LiveConfig, LiveEngine};
        use std::sync::Arc;

        let corpus = tiny_corpus(4, 26);
        let knowledge = Knowledge::from_corpus(&corpus);
        let collector = LiveCollector::new(LiveEngine::start(
            Arc::new(knowledge.clone()),
            LiveConfig {
                shards: 2,
                ..Default::default()
            },
        ));
        let outcome = run_corpus_live(&corpus, &knowledge, &quick_dispatch(2), &collector, None);
        let live = collector.finish();
        assert_eq!(outcome.analyses.len(), 4);
        let offline = spector_live::LiveSummary::from_analyses(&outcome.analyses);
        assert_eq!(live.flows, offline.flows);
        assert_eq!(live.per_library, offline.per_library);
        assert_eq!(live.total_sent, offline.total_sent);
        assert_eq!(live.total_recv, offline.total_recv);
        assert_eq!(live.unjoined_reports(), offline.unjoined_reports());
        assert_eq!(live.reports_truncated, offline.reports_truncated);
        assert_eq!(live.reports_malformed, offline.reports_malformed);
        assert_eq!(live.dropped_events, 0);
    }
}
