//! The campaign results store.
//!
//! The original system ships per-app results to "a central database for
//! later evaluation"; here a campaign serializes to a single JSON file
//! that the analysis stage (and the CLI's `report` command) loads back.

use std::fs;
use std::io;
use std::path::Path;

use libspector::pipeline::AppAnalysis;
use serde::{Deserialize, Serialize};

/// A completed campaign: settings fingerprint plus all per-app results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    /// Corpus seed the campaign ran on.
    pub seed: u64,
    /// Number of apps generated.
    pub apps: usize,
    /// Monkey events per app.
    pub monkey_events: u32,
    /// Per-app analyses, in app order.
    pub analyses: Vec<AppAnalysis>,
}

/// Writes a campaign to `path` as JSON.
///
/// # Errors
///
/// Propagates filesystem errors; serialization itself cannot fail for
/// these types.
pub fn save_campaign(campaign: &Campaign, path: &Path) -> io::Result<()> {
    let json = serde_json::to_vec(campaign).map_err(io::Error::other)?;
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, json)
}

/// Loads a campaign from `path`.
///
/// # Errors
///
/// Propagates filesystem errors and malformed JSON (as
/// [`io::ErrorKind::InvalidData`]).
pub fn load_campaign(path: &Path) -> io::Result<Campaign> {
    let bytes = fs::read(path)?;
    serde_json::from_slice(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use libspector::coverage::CoverageReport;

    fn sample() -> Campaign {
        Campaign {
            seed: 42,
            apps: 1,
            monkey_events: 100,
            analyses: vec![AppAnalysis {
                package: "com.a".into(),
                app_category: "TOOLS".into(),
                flows: vec![],
                unattributed_flows: 0,
                reports_without_flow: 0,
                coverage: CoverageReport {
                    total_methods: 100,
                    executed_methods: 9,
                    external_methods: 3,
                },
                dns_packets: 4,
                report_packets: 2,
            }],
        }
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("spector-store-test");
        let path = dir.join("campaign.json");
        let campaign = sample();
        save_campaign(&campaign, &path).unwrap();
        let loaded = load_campaign(&path).unwrap();
        assert_eq!(loaded.seed, campaign.seed);
        assert_eq!(loaded.analyses.len(), 1);
        assert_eq!(loaded.analyses[0].package, "com.a");
        assert_eq!(loaded.analyses[0].coverage, campaign.analyses[0].coverage);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed() {
        let dir = std::env::temp_dir().join("spector-store-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, b"{not json").unwrap();
        let err = load_campaign(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_not_found() {
        let err = load_campaign(Path::new("/definitely/missing.json")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
