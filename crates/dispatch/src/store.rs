//! The campaign results store.
//!
//! The original system ships per-app results to "a central database for
//! later evaluation"; here a campaign serializes to a single JSON file
//! that the analysis stage (and the CLI's `report` command) loads back.
//!
//! The store also holds **checkpoints**: periodic snapshots of a
//! running campaign's per-app results, fingerprinted against the
//! campaign settings so `--resume` can only continue the campaign it
//! came from. Checkpoint writes are atomic (temp file + rename), so a
//! campaign killed mid-write leaves the previous checkpoint intact.

use std::fs;
use std::io;
use std::path::Path;

use libspector::pipeline::AppAnalysis;
use serde::{Deserialize, Serialize};
use spector_faults::{FaultPlan, PerturbStats};
use spector_sampling::SamplingConfig;

use crate::AppFailure;

/// A completed campaign: settings fingerprint plus all per-app results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    /// Corpus seed the campaign ran on.
    pub seed: u64,
    /// Number of apps generated.
    pub apps: usize,
    /// Monkey events per app.
    pub monkey_events: u32,
    /// Per-app analyses, in app order.
    pub analyses: Vec<AppAnalysis>,
    /// Apps whose experiment failed, in app order (absent in campaigns
    /// saved before degraded-mode accounting existed).
    #[serde(default)]
    pub failures: Vec<AppFailure>,
}

/// What a checkpoint is keyed by: resuming a campaign under different
/// settings would stitch two different experiments together, so resume
/// refuses anything but an exact fingerprint match.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignFingerprint {
    /// Apps in the corpus.
    pub apps: usize,
    /// Base monkey seed (per-app seeds derive from it).
    pub seed: u64,
    /// Monkey events per app.
    pub monkey_events: u32,
    /// The chaos plan, if any — a resumed chaos campaign must replay
    /// the same faults.
    pub chaos: Option<FaultPlan>,
    /// Sampling and budget settings — resuming under a different rate
    /// would mix differently-thinned runs (defaults to exact for
    /// checkpoints saved before sampled tracing existed).
    #[serde(default)]
    pub sampling: SamplingConfig,
}

/// One finished app inside a checkpoint.
// Boxing the analysis would shrink the enum but the vendored serde
// derives have no `Box<T>` impls; checkpoints hold few entries.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CheckpointEntry {
    /// The app's run and analysis succeeded.
    Analysis(AppAnalysis),
    /// The app failed (after retries, if any were allowed).
    Failure(AppFailure),
}

/// A mid-campaign snapshot: every app slot is either done (`Some`) or
/// still owed (`None`). Resume prefills the done slots and only
/// dispatches the rest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Settings the campaign ran under.
    pub fingerprint: CampaignFingerprint,
    /// Per-app results, indexed by corpus position.
    pub results: Vec<Option<CheckpointEntry>>,
    /// Retry attempts spent so far.
    pub retried: usize,
    /// Wire faults injected so far.
    pub injected: PerturbStats,
}

impl CampaignCheckpoint {
    /// An empty checkpoint for a campaign that has produced nothing.
    pub fn empty(fingerprint: CampaignFingerprint, apps: usize) -> CampaignCheckpoint {
        CampaignCheckpoint {
            fingerprint,
            results: vec![None; apps],
            retried: 0,
            injected: PerturbStats::default(),
        }
    }

    /// Finished apps recorded in this checkpoint.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }
}

/// Writes a checkpoint atomically: serialize to `<path>.tmp` in the
/// same directory, then rename over `path`.
///
/// # Errors
///
/// Propagates filesystem errors from the write or the rename.
pub fn save_checkpoint(checkpoint: &CampaignCheckpoint, path: &Path) -> io::Result<()> {
    let json = serde_json::to_vec(checkpoint).map_err(io::Error::other)?;
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, json)?;
    fs::rename(&tmp, path)
}

/// Loads a checkpoint and validates it against `expected`.
///
/// # Errors
///
/// Filesystem errors propagate; malformed JSON and a fingerprint
/// mismatch both surface as [`io::ErrorKind::InvalidData`].
pub fn load_checkpoint(
    path: &Path,
    expected: &CampaignFingerprint,
) -> io::Result<CampaignCheckpoint> {
    let bytes = fs::read(path)?;
    let checkpoint: CampaignCheckpoint = serde_json::from_slice(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if &checkpoint.fingerprint != expected {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint fingerprint mismatch: checkpoint was taken under {:?}, campaign runs under {:?}",
                checkpoint.fingerprint, expected
            ),
        ));
    }
    if checkpoint.results.len() != expected.apps {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint covers {} apps, campaign has {}",
                checkpoint.results.len(),
                expected.apps
            ),
        ));
    }
    Ok(checkpoint)
}

/// Writes a campaign to `path` as JSON.
///
/// # Errors
///
/// Propagates filesystem errors; serialization itself cannot fail for
/// these types.
pub fn save_campaign(campaign: &Campaign, path: &Path) -> io::Result<()> {
    let json = serde_json::to_vec(campaign).map_err(io::Error::other)?;
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, json)
}

/// Loads a campaign from `path`.
///
/// # Errors
///
/// Propagates filesystem errors and malformed JSON (as
/// [`io::ErrorKind::InvalidData`]).
pub fn load_campaign(path: &Path) -> io::Result<Campaign> {
    let bytes = fs::read(path)?;
    serde_json::from_slice(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use libspector::coverage::CoverageReport;

    fn sample() -> Campaign {
        Campaign {
            seed: 42,
            apps: 1,
            monkey_events: 100,
            analyses: vec![AppAnalysis {
                package: "com.a".into(),
                app_category: "TOOLS".into(),
                flows: vec![],
                unattributed_flows: 0,
                reports_without_flow: 0,
                coverage: CoverageReport {
                    total_methods: 100,
                    executed_methods: 9,
                    external_methods: 3,
                },
                dns_packets: 4,
                report_packets: 2,
                integrity: Default::default(),
                detect: Default::default(),
                sampling: Default::default(),
            }],
            failures: vec![],
        }
    }

    fn fingerprint() -> CampaignFingerprint {
        CampaignFingerprint {
            apps: 3,
            seed: 7,
            monkey_events: 50,
            chaos: None,
            sampling: Default::default(),
        }
    }

    #[test]
    fn checkpoint_roundtrips_and_counts_completions() {
        let dir = std::env::temp_dir().join("spector-store-test");
        let path = dir.join("checkpoint.json");
        let mut checkpoint = CampaignCheckpoint::empty(fingerprint(), 3);
        checkpoint.results[1] = Some(CheckpointEntry::Failure(AppFailure {
            index: 1,
            package: "com.b".into(),
            error: "boom".into(),
            attempts: 2,
        }));
        checkpoint.retried = 1;
        assert_eq!(checkpoint.completed(), 1);
        save_checkpoint(&checkpoint, &path).unwrap();
        let loaded = load_checkpoint(&path, &fingerprint()).unwrap();
        assert_eq!(loaded.completed(), 1);
        assert_eq!(loaded.retried, 1);
        assert!(matches!(
            loaded.results[1],
            Some(CheckpointEntry::Failure(ref f)) if f.package == "com.b"
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_rejects_foreign_fingerprint() {
        let dir = std::env::temp_dir().join("spector-store-test");
        let path = dir.join("foreign.json");
        let checkpoint = CampaignCheckpoint::empty(fingerprint(), 3);
        save_checkpoint(&checkpoint, &path).unwrap();
        let mut other = fingerprint();
        other.seed = 8;
        let err = load_checkpoint(&path, &other).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("spector-store-test");
        let path = dir.join("campaign.json");
        let campaign = sample();
        save_campaign(&campaign, &path).unwrap();
        let loaded = load_campaign(&path).unwrap();
        assert_eq!(loaded.seed, campaign.seed);
        assert_eq!(loaded.analyses.len(), 1);
        assert_eq!(loaded.analyses[0].package, "com.a");
        assert_eq!(loaded.analyses[0].coverage, campaign.analyses[0].coverage);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed() {
        let dir = std::env::temp_dir().join("spector-store-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        fs::write(&path, b"{not json").unwrap();
        let err = load_campaign(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_not_found() {
        let err = load_campaign(Path::new("/definitely/missing.json")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
