//! Retry policy with exponential backoff and deterministic jitter.
//!
//! Retryable failures — emulator boot failures and monkey hangs — are
//! weather, not bugs: the fix is to try again, a little later. The
//! backoff schedule doubles per attempt up to a cap, and the jitter is
//! drawn from the campaign's fault RNG keyed by `(app, attempt)`, so
//! the *schedule* is as reproducible as everything else in a chaos run
//! (the sleep itself is wall-clock and affects nothing downstream).

use spector_faults::FaultRng;

/// Key-derivation lane for backoff jitter; disjoint from the fault
/// plan's process (1) and wire (2) lanes.
const LANE_RETRY: u64 = 3;

/// Bounded-retry settings for retryable app failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per app, including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, microseconds of wall time.
    pub base_backoff_micros: u64,
    /// Backoff ceiling, microseconds.
    pub max_backoff_micros: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_micros: 2_000,
            max_backoff_micros: 50_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the classic `run_corpus` behavior).
    pub fn never() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_micros: 0,
            max_backoff_micros: 0,
        }
    }

    /// Backoff before retrying `index` after failed attempt `attempt`
    /// (0-based): `base * 2^attempt` capped at the ceiling, scaled by a
    /// deterministic jitter factor in `[0.5, 1.5)` to decorrelate
    /// workers retrying in lockstep.
    pub fn backoff_micros(&self, seed: u64, index: usize, attempt: u32) -> u64 {
        let exponential = self
            .base_backoff_micros
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.max_backoff_micros);
        let mut rng = FaultRng::for_key(seed, LANE_RETRY, index as u64, u64::from(attempt));
        let jitter = 0.5 + (rng.below(1_000) as f64) / 1_000.0;
        (exponential as f64 * jitter) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_micros: 1_000,
            max_backoff_micros: 8_000,
        };
        // Jitter is within [0.5, 1.5), so bounds scale accordingly.
        for attempt in 0..10 {
            let backoff = policy.backoff_micros(1, 0, attempt);
            let raw = (1_000u64 << attempt).min(8_000);
            assert!(backoff >= raw / 2, "attempt {attempt}: {backoff}");
            assert!(backoff < raw + raw / 2 + 1, "attempt {attempt}: {backoff}");
        }
    }

    #[test]
    fn jitter_is_deterministic_but_varies_by_key() {
        let policy = RetryPolicy::default();
        assert_eq!(
            policy.backoff_micros(9, 4, 1),
            policy.backoff_micros(9, 4, 1)
        );
        let distinct: std::collections::HashSet<u64> = (0..32)
            .map(|index| policy.backoff_micros(9, index, 1))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn never_policy_has_single_attempt() {
        assert_eq!(RetryPolicy::never().max_attempts, 1);
    }
}
