//! Shared fixtures for the benchmark targets.
//!
//! Every table/figure bench needs a completed campaign to aggregate
//! over; [`campaign`] builds one lazily (once per bench process) at a
//! scale that keeps bench startup in seconds while still producing
//! hundreds of flows.

use std::sync::OnceLock;

use libspector::experiment::{resolver_for, run_app, ExperimentConfig, RawRun};
use libspector::knowledge::Knowledge;
use libspector::pipeline::AppAnalysis;
use spector_corpus::{obfuscate_corpus, AppGenConfig, Corpus, CorpusConfig, ObfuscationTier};
use spector_dispatch::{run_corpus, DispatchConfig};

/// Number of apps in the benchmark campaign.
pub const BENCH_APPS: usize = 40;
/// Monkey events per app in the benchmark campaign.
pub const BENCH_EVENTS: u32 = 120;

/// Generates the benchmark corpus (deterministic, seed 7777).
pub fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        Corpus::generate(&CorpusConfig {
            apps: BENCH_APPS,
            seed: 7_777,
            appgen: AppGenConfig {
                method_scale: 0.006,
                ..Default::default()
            },
            ..Default::default()
        })
    })
}

/// Corpus knowledge (LibRadar aggregate + domain labels).
pub fn knowledge() -> &'static Knowledge {
    static KNOWLEDGE: OnceLock<Knowledge> = OnceLock::new();
    KNOWLEDGE.get_or_init(|| Knowledge::from_corpus(corpus()))
}

/// The completed campaign all figure benches aggregate over.
pub fn campaign() -> &'static Vec<AppAnalysis> {
    static CAMPAIGN: OnceLock<Vec<AppAnalysis>> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        let mut dispatch = DispatchConfig::default();
        dispatch.experiment.monkey.events = BENCH_EVENTS;
        dispatch.experiment.monkey.seed = 7_777;
        run_corpus(corpus(), knowledge(), &dispatch, None).analyses
    })
}

/// Number of apps in the offline-analysis throughput campaign — the
/// paper's §IV scale (400 selected apps).
pub const THROUGHPUT_APPS: usize = 400;

/// Fixture for the `perf/throughput` benches: corpus knowledge, one
/// recorded [`RawRun`] per app of a 400-app store, and the collector
/// port to analyze against. The runs are recorded once per bench
/// process (the expensive part is the emulation, which is not what
/// those benches measure); each bench iteration replays the *offline*
/// pipeline over all of them.
pub fn throughput_fixture() -> &'static (Knowledge, Vec<RawRun>, u16) {
    static FIXTURE: OnceLock<(Knowledge, Vec<RawRun>, u16)> = OnceLock::new();
    FIXTURE.get_or_init(|| record_throughput_runs(ObfuscationTier::None))
}

/// [`throughput_fixture`] with the 400-app corpus obfuscated at `tier`
/// before knowledge extraction — the fixture for the `perf/detect`
/// cascade benches. The knowledge bases stay canonical, so verdict
/// lookups exercise exactly one fallback tier per obfuscation level
/// (Rename → exact fingerprint, Mangle/Junk → structural). Not cached:
/// each bench process builds the one tier it measures.
pub fn obfuscated_throughput_fixture(tier: ObfuscationTier) -> (Knowledge, Vec<RawRun>, u16) {
    record_throughput_runs(tier)
}

fn record_throughput_runs(tier: ObfuscationTier) -> (Knowledge, Vec<RawRun>, u16) {
    let mut corpus = Corpus::generate(&CorpusConfig {
        apps: THROUGHPUT_APPS,
        seed: 7_778,
        appgen: AppGenConfig {
            method_scale: 0.004,
            ..Default::default()
        },
        ..Default::default()
    });
    if tier != ObfuscationTier::None {
        obfuscate_corpus(&mut corpus, tier, 7_778 ^ 0x0bf5);
    }
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 60;
    let raws = corpus
        .apps
        .iter()
        .map(|app| {
            let system: Vec<_> = app
                .system_ops
                .iter()
                .map(|s| (s.op.clone(), s.dispatcher))
                .collect();
            run_app(&app.apk, &resolver, &system, &config).expect("bench app must run")
        })
        .collect();
    (knowledge, raws, config.supervisor.collector_port)
}
