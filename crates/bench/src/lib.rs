//! Shared fixtures for the benchmark targets.
//!
//! Every table/figure bench needs a completed campaign to aggregate
//! over; [`campaign`] builds one lazily (once per bench process) at a
//! scale that keeps bench startup in seconds while still producing
//! hundreds of flows.

use std::sync::OnceLock;

use libspector::knowledge::Knowledge;
use libspector::pipeline::AppAnalysis;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_dispatch::{run_corpus, DispatchConfig};

/// Number of apps in the benchmark campaign.
pub const BENCH_APPS: usize = 40;
/// Monkey events per app in the benchmark campaign.
pub const BENCH_EVENTS: u32 = 120;

/// Generates the benchmark corpus (deterministic, seed 7777).
pub fn corpus() -> &'static Corpus {
    static CORPUS: OnceLock<Corpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        Corpus::generate(&CorpusConfig {
            apps: BENCH_APPS,
            seed: 7_777,
            appgen: AppGenConfig {
                method_scale: 0.006,
                ..Default::default()
            },
            ..Default::default()
        })
    })
}

/// Corpus knowledge (LibRadar aggregate + domain labels).
pub fn knowledge() -> &'static Knowledge {
    static KNOWLEDGE: OnceLock<Knowledge> = OnceLock::new();
    KNOWLEDGE.get_or_init(|| Knowledge::from_corpus(corpus()))
}

/// The completed campaign all figure benches aggregate over.
pub fn campaign() -> &'static Vec<AppAnalysis> {
    static CAMPAIGN: OnceLock<Vec<AppAnalysis>> = OnceLock::new();
    CAMPAIGN.get_or_init(|| {
        let mut dispatch = DispatchConfig::default();
        dispatch.experiment.monkey.events = BENCH_EVENTS;
        dispatch.experiment.monkey.seed = 7_777;
        run_corpus(corpus(), knowledge(), &dispatch, None)
    })
}
