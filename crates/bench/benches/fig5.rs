//! Regenerates the paper's fig5 aggregation over the benchmark
//! campaign and measures its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use spector_analysis::fig5;
use spector_bench::campaign;

fn bench(c: &mut Criterion) {
    let analyses = campaign();
    c.bench_function("fig5/compute", |b| {
        b.iter(|| std::hint::black_box(fig5::compute(analyses)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
