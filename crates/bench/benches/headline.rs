//! Regenerates the paper's headline aggregation over the benchmark
//! campaign and measures its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use spector_analysis::headline;
use spector_bench::campaign;

fn bench(c: &mut Criterion) {
    let analyses = campaign();
    c.bench_function("headline/compute", |b| {
        b.iter(|| std::hint::black_box(headline::compute(analyses)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
