//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * profiler mode — stock bounded buffer vs the paper's unique-method
//!   modification (measurement cost of each);
//! * builtin-frame filtering on vs off in attribution;
//! * online policy enforcement attached vs observation only.

use criterion::{criterion_group, criterion_main, Criterion};
use libspector::attribution::{attribute, BuiltinFilter};
use libspector::experiment::{resolver_for, run_app, run_app_with_hooks, ExperimentConfig};
use libspector::knowledge::Knowledge;
use libspector::policy::{Action, Matcher, OnlineEnforcer, Policy};
use spector_bench::{corpus, knowledge};
use spector_runtime::TraceMode;

fn bench_profiler_modes(c: &mut Criterion) {
    let corpus = corpus();
    let resolver = resolver_for(&corpus.domains);
    let app = &corpus.apps[0];
    let mut group = c.benchmark_group("ablation/profiler");
    group.sample_size(10);
    for (name, mode) in [
        ("unique_methods", TraceMode::UniqueMethods),
        (
            "stock_buffer_8k",
            TraceMode::StockBuffer { capacity: 8_192 },
        ),
    ] {
        group.bench_function(name, |b| {
            let mut config = ExperimentConfig::default();
            config.monkey.events = 120;
            config.runtime.trace_mode = mode;
            b.iter(|| std::hint::black_box(run_app(&app.apk, &resolver, &[], &config).unwrap()));
        });
    }
    group.finish();
}

fn bench_filter_ablation(c: &mut Criterion) {
    let frames: Vec<String> = [
        "java.net.Socket.connect",
        "com.android.okhttp.internal.Platform.connectSocket",
        "com.android.okhttp.Connection.connect",
        "com.unity3d.ads.android.cache.b.a",
        "com.unity3d.ads.android.cache.b.doInBackground",
        "android.os.AsyncTask$2.call",
        "java.util.concurrent.FutureTask.run",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let enabled = BuiltinFilter::new();
    let disabled = BuiltinFilter::disabled();
    let mut group = c.benchmark_group("ablation/filter");
    group.bench_function("footnote2_enabled", |b| {
        b.iter(|| std::hint::black_box(attribute(&frames, &enabled)))
    });
    group.bench_function("disabled", |b| {
        b.iter(|| std::hint::black_box(attribute(&frames, &disabled)))
    });
    group.finish();
}

fn bench_enforcement(c: &mut Criterion) {
    let corpus = corpus();
    let knowledge: &Knowledge = knowledge();
    let resolver = resolver_for(&corpus.domains);
    let app = &corpus.apps[0];
    let domains: std::collections::HashMap<std::net::IpAddr, String> = corpus
        .domains
        .domains()
        .iter()
        .map(|d| (std::net::IpAddr::V4(d.ip), d.name.clone()))
        .collect();
    let mut group = c.benchmark_group("ablation/enforcement");
    group.sample_size(10);
    group.bench_function("observe_only", |b| {
        let mut config = ExperimentConfig::default();
        config.monkey.events = 120;
        b.iter(|| std::hint::black_box(run_app(&app.apk, &resolver, &[], &config).unwrap()));
    });
    group.bench_function("enforcing_block_ant", |b| {
        let mut config = ExperimentConfig::default();
        config.monkey.events = 120;
        b.iter(|| {
            let policy =
                Policy::allow_by_default().with_rule("no-ant", Matcher::AnyAnt, Action::Block);
            let enforcer = OnlineEnforcer::new(policy, knowledge, domains.clone());
            std::hint::black_box(
                run_app_with_hooks(&app.apk, &resolver, &[], &config, vec![Box::new(enforcer)])
                    .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_profiler_modes,
    bench_filter_ablation,
    bench_enforcement
);
criterion_main!(benches);
