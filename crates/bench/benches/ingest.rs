//! Ingest-service throughput: raw frames/sec through the loopback TCP
//! listener in front of `LiveEngine` — the full service path: client
//! framing and socket write, kernel loopback, server record parse,
//! peek/route/batch, shard-local decode, incremental join. Numbers
//! are recorded in `BENCH_pipeline.json` at the repo root.
//!
//! Each iteration starts a fresh server, streams every fixture run
//! over four concurrent connections (connection-per-emulator, like a
//! real rig), drains, and shuts down — so the number includes service
//! start/stop, which production pays once, not per frame. Lossless
//! delivery per iteration is asserted, not assumed.

use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spector_bench::throughput_fixture;
use spector_live::{IngestClient, IngestConfig, IngestServer, LiveConfig, LiveEngine};

/// Concurrent client connections per iteration.
const CONNECTIONS: usize = 4;

fn bench_ingest_service(c: &mut Criterion) {
    let (knowledge, raws, port) = throughput_fixture();
    let knowledge = Arc::new(knowledge.clone());
    let total_frames: u64 = raws.iter().map(|r| r.capture.len() as u64).sum();

    let mut group = c.benchmark_group("perf/ingest_service");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_frames));
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let engine = LiveEngine::start(
                        Arc::clone(&knowledge),
                        LiveConfig {
                            shards,
                            collector_port: *port,
                            ..Default::default()
                        },
                    );
                    let server = IngestServer::start(engine, IngestConfig::default())
                        .expect("loopback bind");
                    let addr = server.tcp_addr();
                    thread::scope(|scope| {
                        for lane in 0..CONNECTIONS {
                            let raws = &raws;
                            scope.spawn(move || {
                                let mut client =
                                    IngestClient::connect(addr).expect("loopback connect");
                                for (run, raw) in
                                    raws.iter().enumerate().skip(lane).step_by(CONNECTIONS)
                                {
                                    client.send_run(run as u32, &raw.capture).expect("send");
                                }
                                client.finish().expect("finish");
                            });
                        }
                    });
                    let summary = server.shutdown().finish();
                    assert_eq!(
                        summary.events, total_frames,
                        "TCP ingest must deliver every frame"
                    );
                    std::hint::black_box(summary)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ingest_service);
criterion_main!(benches);
