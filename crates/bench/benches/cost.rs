//! Regenerates the paper's cost aggregation over the benchmark
//! campaign and measures its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use spector_analysis::cost;
use spector_bench::campaign;

fn bench(c: &mut Criterion) {
    let analyses = campaign();
    c.bench_function("cost/compute", |b| {
        b.iter(|| std::hint::black_box(cost::compute(analyses)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
