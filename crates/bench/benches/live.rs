//! Streaming engine throughput: raw frames/sec through `LiveEngine`'s
//! two-phase ingress at the paper's campaign scale (the 400-run
//! throughput fixture), for 1 vs N shards. Numbers are recorded in
//! `BENCH_pipeline.json` at the repo root.
//!
//! Captures are lifted into `Arc<[u8]>`-backed [`RawFrame`] streams
//! once outside the measurement loop, so each iteration times what
//! production ingress does per frame: the producer's structural peek +
//! route + batch handoff, and the full classified decode on the
//! receiving shard — not the one-time cost of reading a capture.
//! Result identity across shard counts and vs the offline pipeline is
//! enforced by tests/live_equivalence.rs and crates/live/tests/.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spector_bench::throughput_fixture;
use spector_live::{LiveConfig, LiveEngine, RawFrame};

fn bench_live_throughput(c: &mut Criterion) {
    let (knowledge, raws, port) = throughput_fixture();
    let knowledge = Arc::new(knowledge.clone());
    let streams: Vec<Vec<RawFrame>> = raws
        .iter()
        .map(|raw| raw.capture.iter().map(RawFrame::from_packet).collect())
        .collect();
    let total_frames: u64 = streams.iter().map(|s| s.len() as u64).sum();

    let mut group = c.benchmark_group("perf/live_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_frames));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let engine = LiveEngine::start(
                        Arc::clone(&knowledge),
                        LiveConfig {
                            shards,
                            collector_port: *port,
                            ..Default::default()
                        },
                    );
                    for (run, stream) in streams.iter().enumerate() {
                        engine.push_raw_run(run as u32, stream);
                    }
                    std::hint::black_box(engine.finish())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_live_throughput);
criterion_main!(benches);
