//! Streaming engine throughput: events/sec through `LiveEngine` at
//! the paper's campaign scale (the 400-run throughput fixture), for
//! 1 vs N shards. Numbers are recorded in `BENCH_pipeline.json` at
//! the repo root.
//!
//! The event streams are decoded once outside the measurement loop —
//! the benches time the engine (routing, channels, incremental join),
//! not the frame decoder, which `perf/substrate` already covers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spector_bench::throughput_fixture;
use spector_live::{events_from_run, LiveConfig, LiveEngine, LiveEvent};

fn bench_live_throughput(c: &mut Criterion) {
    let (knowledge, raws, port) = throughput_fixture();
    let knowledge = Arc::new(knowledge.clone());
    let events: Vec<LiveEvent> = raws
        .iter()
        .enumerate()
        .flat_map(|(run, raw)| events_from_run(run as u32, &raw.capture, *port))
        .collect();

    let mut group = c.benchmark_group("perf/live_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let engine = LiveEngine::start(
                        Arc::clone(&knowledge),
                        LiveConfig {
                            shards,
                            collector_port: *port,
                            ..Default::default()
                        },
                    );
                    for event in &events {
                        engine.push(event.clone());
                    }
                    std::hint::black_box(engine.finish())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_live_throughput);
criterion_main!(benches);
