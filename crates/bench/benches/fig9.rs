//! Regenerates the paper's fig9 aggregation over the benchmark
//! campaign and measures its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use spector_analysis::fig9;
use spector_bench::campaign;

fn bench(c: &mut Criterion) {
    let analyses = campaign();
    c.bench_function("fig9/compute", |b| {
        b.iter(|| std::hint::black_box(fig9::compute(analyses)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
