//! `perf/detect` — cascade throughput per detection tier.
//!
//! Each leg replays the offline pipeline over the 400-app throughput
//! store with the corpus obfuscated at a different tier, so every
//! Library-origin verdict lookup resolves in exactly one layer of the
//! cascade:
//!
//! * `trie_only_apps`       — unobfuscated: every lookup is a trie
//!   longest-prefix hit (the legacy fast path; within noise of
//!   `perf/throughput analyze_run_apps`, which shares the fixture).
//! * `exact_fp_apps`        — Rename tier: the trie misses and the
//!   exact subtree-fingerprint index answers.
//! * `structural_apps`      — Mangle tier: both prefix layers miss and
//!   the structural profile index answers.
//!
//! Before timing, each leg asserts (via `DetectStats`) that the fixture
//! really routes lookups through the advertised tier — a mislabeled
//! bench is worse than no bench.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use libspector::experiment::RawRun;
use libspector::knowledge::Knowledge;
use libspector::pipeline::analyze_run;
use spector_bench::{obfuscated_throughput_fixture, throughput_fixture};
use spector_corpus::ObfuscationTier;

/// Sums the per-app detect stats over one full pass of the store.
fn tier_counts(knowledge: &Knowledge, raws: &[RawRun], port: u16) -> (u64, u64, u64, u64) {
    let mut trie = 0;
    let mut exact = 0;
    let mut structural = 0;
    let mut miss = 0;
    for raw in raws {
        let d = analyze_run(raw, knowledge, port).detect;
        trie += d.trie_hits;
        exact += d.exact_fp_hits;
        structural += d.structural_hits;
        miss += d.misses;
    }
    (trie, exact, structural, miss)
}

fn bench_leg(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    knowledge: &Knowledge,
    raws: &[RawRun],
    port: u16,
) {
    group.throughput(Throughput::Elements(raws.len() as u64));
    group.bench_function(name, |b| {
        b.iter(|| {
            for raw in raws {
                std::hint::black_box(analyze_run(raw, knowledge, port));
            }
        })
    });
}

fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf/detect");
    group.sample_size(10);

    let (knowledge, raws, port) = throughput_fixture();
    let (trie, exact, structural, _) = tier_counts(knowledge, raws, *port);
    assert!(trie > 0, "clean fixture must exercise the trie tier");
    assert_eq!(
        (exact, structural),
        (0, 0),
        "clean fixture must never fall through the trie tier"
    );
    bench_leg(&mut group, "trie_only_apps", knowledge, raws, *port);

    let (knowledge, raws, port) = obfuscated_throughput_fixture(ObfuscationTier::Rename);
    let (_, exact, structural, _) = tier_counts(&knowledge, &raws, port);
    assert!(exact > 0, "renamed fixture must exercise the exact-fp tier");
    assert_eq!(
        structural, 0,
        "renamed fixture must resolve before the structural tier"
    );
    bench_leg(&mut group, "exact_fp_apps", &knowledge, &raws, port);

    let (knowledge, raws, port) = obfuscated_throughput_fixture(ObfuscationTier::Mangle);
    let (_, exact, structural, _) = tier_counts(&knowledge, &raws, port);
    assert!(
        structural > 0,
        "mangled fixture must exercise the structural tier"
    );
    assert_eq!(
        exact, 0,
        "identifier mangling must defeat the exact-fp tier"
    );
    bench_leg(&mut group, "structural_apps", &knowledge, &raws, port);

    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
