//! The §IV-C event-budget calibration as a benchmark: cost of driving
//! one app at increasing monkey event budgets (10 → 1,000), the sweep
//! the authors used to justify stopping at 1,000 events.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use libspector::experiment::{resolver_for, run_app, ExperimentConfig};
use spector_bench::corpus;

fn bench(c: &mut Criterion) {
    let corpus = corpus();
    let resolver = resolver_for(&corpus.domains);
    let app = &corpus.apps[0];
    let system: Vec<_> = app
        .system_ops
        .iter()
        .map(|s| (s.op.clone(), s.dispatcher))
        .collect();

    let mut group = c.benchmark_group("event_sweep");
    group.sample_size(10);
    for events in [10u32, 100, 500, 1_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(events),
            &events,
            |b, &events| {
                let mut config = ExperimentConfig::default();
                config.monkey.events = events;
                b.iter(|| {
                    std::hint::black_box(run_app(&app.apk, &resolver, &system, &config).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
