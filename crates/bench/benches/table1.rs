//! Regenerates the paper's table1 aggregation over the benchmark
//! campaign and measures its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use spector_analysis::table1;
use spector_bench::campaign;

fn bench(c: &mut Criterion) {
    let analyses = campaign();
    c.bench_function("table1/compute", |b| {
        b.iter(|| std::hint::black_box(table1::compute(analyses)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
