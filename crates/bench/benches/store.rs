//! Durable-store performance: segment ingest and historical query
//! throughput at 10× and 100× the 400-app `perf/throughput` fixture.
//!
//! Each scale replicates the fixture campaign as that many *separate
//! campaigns* in one store directory — the multi-campaign shape the
//! query engine exists for — so `ingest_10x_apps` appends and seals
//! 4 000 app records per iteration and `query_100x_apps` scans 40 000
//! apps' columns (open + verify + columnar aggregation, the cost a
//! fresh `libspector query` process pays).
//!
//! Before timing anything, the bench asserts the tentpole identity on
//! the 400-app campaign: the store-backed report renders byte-for-byte
//! equal to the in-memory one.

use std::path::PathBuf;
use std::sync::OnceLock;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use libspector::pipeline::{analyze_run, AppAnalysis};
use spector_analysis::{storeq, FullReport};
use spector_bench::throughput_fixture;
use spector_store::{
    CampaignKind, CampaignMeta, CampaignSealRecord, StoreOptions, StoreReader, StoreWriter,
};

/// The 400 analyses of the throughput fixture, computed once.
fn analyses() -> &'static Vec<AppAnalysis> {
    static ANALYSES: OnceLock<Vec<AppAnalysis>> = OnceLock::new();
    ANALYSES.get_or_init(|| {
        let (knowledge, raws, port) = throughput_fixture();
        raws.iter()
            .map(|raw| analyze_run(raw, knowledge, *port))
            .collect()
    })
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spector-bench-store-{tag}-{}", std::process::id()))
}

/// Appends the fixture as `campaigns` sealed campaigns under `dir`.
fn ingest(dir: &PathBuf, campaigns: usize) {
    let base = analyses();
    let _ = std::fs::remove_dir_all(dir);
    for _ in 0..campaigns {
        let meta = CampaignMeta {
            seed: 7_778,
            apps: base.len(),
            monkey_events: 60,
            kind: CampaignKind::Run,
        };
        let mut writer =
            StoreWriter::create(dir, &meta, StoreOptions::default()).expect("store opens");
        for (index, analysis) in base.iter().enumerate() {
            writer
                .append_analysis(index as u32, analysis)
                .expect("append");
        }
        writer
            .finish(&CampaignSealRecord {
                seed: 7_778,
                apps: base.len(),
                monkey_events: 60,
                failures: vec![],
            })
            .expect("seal");
    }
}

/// The tentpole identity, asserted at bench scale before timing.
fn assert_byte_identity() {
    let dir = scratch("identity");
    ingest(&dir, 1);
    let reader = StoreReader::open(&dir).expect("store reads back");
    assert_eq!(reader.integrity().rejected.len(), 0);
    let stored = storeq::report_from_store(&reader, 0).render();
    let in_memory = FullReport::build(analyses()).render();
    assert_eq!(
        stored, in_memory,
        "store-backed report must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_store(c: &mut Criterion) {
    assert_byte_identity();
    let apps = analyses().len() as u64;

    let mut group = c.benchmark_group("perf/store");
    group.sample_size(10);
    for scale in [10u64, 100] {
        group.throughput(Throughput::Elements(apps * scale));
        let dir = scratch(&format!("ingest-{scale}x"));
        group.bench_function(&format!("ingest_{scale}x_apps"), |b| {
            b.iter(|| ingest(&dir, scale as usize));
        });
        let _ = std::fs::remove_dir_all(&dir);

        // Query cost as a fresh process pays it: open + verify every
        // fingerprint + full columnar aggregation over all campaigns.
        let dir = scratch(&format!("query-{scale}x"));
        ingest(&dir, scale as usize);
        group.bench_function(&format!("query_{scale}x_apps"), |b| {
            b.iter(|| {
                let reader = StoreReader::open(&dir).expect("store opens");
                let stats = storeq::compute(&reader, None);
                assert_eq!(stats.apps, apps * scale);
                std::hint::black_box(stats)
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
