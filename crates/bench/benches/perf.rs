//! Performance benchmarks for the measurement system itself (§II-B3):
//!
//! * per-connection instrumentation overhead (the paper measured a
//!   0.5 ms / 9.75 % worst-case per-request delay on-device);
//! * the per-app offline analysis (the paper: < 5 s per app);
//! * the hot substrate paths: frame encode/decode, SHA-256, dex
//!   disassembly, builtin-filter regex matching, report codec.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use libspector::attribution::{attribute, BuiltinFilter};
use libspector::experiment::{resolver_for, run_app, ExperimentConfig};
use libspector::pipeline::{analyze_run, analyze_run_oracle};
use spector_bench::{corpus, knowledge, throughput_fixture};
use spector_dex::sha256::Sha256;
use spector_dex::{parse_dex, write_dex};
use spector_hooks::report::SocketReport;
use spector_netsim::clock::Clock;
use spector_netsim::packet::{decode_frame, encode_tcp, tcp_flags, SocketPair};
use spector_netsim::stack::NetStack;

fn bench_hook_overhead(c: &mut Criterion) {
    // Time to connect+report with the supervisor attached vs the bare
    // connect, isolating the instrumentation cost the paper quantifies.
    use spector_dex::model::SigIndex;
    use spector_dex::DexFile;
    use spector_hooks::supervisor::{SocketSupervisor, SupervisorConfig};
    use spector_runtime::stack::{CallStack, Frame};
    use spector_runtime::{HookContext, RuntimeHook};

    let mut group = c.benchmark_group("perf/hook");
    group.bench_function("connect_bare", |b| {
        let mut net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        b.iter(|| {
            let sock = net.tcp_connect(Ipv4Addr::new(198, 18, 0, 1), 443);
            std::hint::black_box(sock)
        });
    });
    group.bench_function("connect_hooked", |b| {
        let mut net = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        let mut supervisor = SocketSupervisor::new(
            Sha256::digest(b"bench-apk"),
            SigIndex::build(&DexFile::new()),
            SupervisorConfig::default(),
        );
        let mut stack = CallStack::new();
        for i in 0..14 {
            stack.push(Frame::new(format!("com.bench.pkg.C{i}.m{i}")));
        }
        b.iter(|| {
            let sock = net.tcp_connect(Ipv4Addr::new(198, 18, 0, 1), 443);
            let mut ctx = HookContext {
                stack: &stack,
                net: &mut net,
            };
            supervisor.after_socket_connect(&mut ctx, sock);
            std::hint::black_box(sock)
        });
    });
    group.finish();
}

fn bench_per_app_pipeline(c: &mut Criterion) {
    let corpus = corpus();
    let knowledge = knowledge();
    let resolver = resolver_for(&corpus.domains);
    let app = &corpus.apps[0];
    let mut config = ExperimentConfig::default();
    config.monkey.events = 120;
    let system: Vec<_> = app
        .system_ops
        .iter()
        .map(|s| (s.op.clone(), s.dispatcher))
        .collect();
    let raw = run_app(&app.apk, &resolver, &system, &config).unwrap();

    let mut group = c.benchmark_group("perf/pipeline");
    group.sample_size(20);
    group.bench_function("experiment_one_app", |b| {
        b.iter(|| std::hint::black_box(run_app(&app.apk, &resolver, &system, &config).unwrap()));
    });
    // The paper's "<5 s offline analysis per app" path.
    group.bench_function("offline_analysis_one_app", |b| {
        b.iter(|| {
            std::hint::black_box(analyze_run(
                &raw,
                knowledge,
                config.supervisor.collector_port,
            ))
        });
    });
    group.finish();
}

/// Offline attribution throughput at the paper's campaign scale: the
/// whole §IV store (400 raw runs) through `analyze_run` per iteration.
/// Criterion's `elem/s` readout is apps/sec for the `*_apps` benches
/// and flows/sec for the `*_flows` benches (same loop, flow-weighted).
/// `oracle` is the retired three-pass/uncached pipeline, kept so the
/// speedup of the single-pass + trie + memoized path stays measured —
/// numbers are recorded in `BENCH_pipeline.json` at the repo root.
fn bench_analysis_throughput(c: &mut Criterion) {
    let (knowledge, raws, port) = throughput_fixture();
    let port = *port;
    let total_flows: u64 = raws
        .iter()
        .map(|raw| analyze_run(raw, knowledge, port).flows.len() as u64)
        .sum();

    let mut group = c.benchmark_group("perf/throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(raws.len() as u64));
    group.bench_function("analyze_run_apps", |b| {
        b.iter(|| {
            for raw in raws {
                std::hint::black_box(analyze_run(raw, knowledge, port));
            }
        });
    });
    group.bench_function("analyze_run_oracle_apps", |b| {
        b.iter(|| {
            for raw in raws {
                std::hint::black_box(analyze_run_oracle(raw, knowledge, port));
            }
        });
    });
    group.throughput(Throughput::Elements(total_flows));
    group.bench_function("analyze_run_flows", |b| {
        b.iter(|| {
            for raw in raws {
                std::hint::black_box(analyze_run(raw, knowledge, port));
            }
        });
    });
    group.finish();
}

/// Cost of the fault-injection layer when it is armed but rolls no
/// faults — the price every chaos-enabled campaign pays on its happy
/// path. `perturb_*` isolates the wire-perturbation pass over the 400
/// recorded captures (a zero-fault plan must fast-return; `light` pays
/// per-packet dice); `campaign_*` compares a full `run_campaign` with
/// no chaos against one threading a zero-fault plan + retry policy
/// through every worker. Numbers land in `BENCH_pipeline.json`.
fn bench_chaos_overhead(c: &mut Criterion) {
    use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
    use spector_dispatch::{run_campaign, CampaignConfig, DispatchConfig, RetryPolicy};
    use spector_faults::{perturb_capture, FaultPlan, FaultProfile};

    let (_, raws, port) = throughput_fixture();
    let port = *port;
    let noop = FaultPlan::new(7_779, FaultProfile::none());
    let light = FaultPlan::new(7_779, FaultProfile::light());

    let mut group = c.benchmark_group("perf/chaos_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(raws.len() as u64));
    group.bench_function("perturb_zero_fault_plan", |b| {
        b.iter(|| {
            for (index, raw) in raws.iter().enumerate() {
                std::hint::black_box(perturb_capture(&noop, index, 0, raw.capture.clone(), port));
            }
        });
    });
    group.bench_function("perturb_light_plan", |b| {
        b.iter(|| {
            for (index, raw) in raws.iter().enumerate() {
                std::hint::black_box(perturb_capture(&light, index, 0, raw.capture.clone(), port));
            }
        });
    });

    let corpus = Corpus::generate(&CorpusConfig {
        apps: 8,
        seed: 7_780,
        appgen: AppGenConfig {
            method_scale: 0.004,
            ..Default::default()
        },
        ..Default::default()
    });
    let knowledge = libspector::knowledge::Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig::default();
    dispatch.experiment.monkey.events = 40;
    dispatch.experiment.monkey.seed = 7_780;
    dispatch.workers = 1;
    group.throughput(Throughput::Elements(corpus.apps.len() as u64));
    group.bench_function("campaign_plain", |b| {
        let config = CampaignConfig {
            dispatch: dispatch.clone(),
            ..Default::default()
        };
        b.iter(|| {
            std::hint::black_box(run_campaign(&corpus, &knowledge, &config, None, None).unwrap())
        });
    });
    group.bench_function("campaign_zero_fault_plan", |b| {
        let config = CampaignConfig {
            dispatch: dispatch.clone(),
            chaos: Some(noop),
            retry: RetryPolicy::default(),
            ..Default::default()
        };
        b.iter(|| {
            std::hint::black_box(run_campaign(&corpus, &knowledge, &config, None, None).unwrap())
        });
    });
    group.finish();
}

/// Cost of the telemetry layer — the zero-overhead-when-disabled
/// contract, measured. `analyze_*` isolates the offline pipeline:
/// plain `analyze_run` vs the instrumented path with a disabled handle
/// (must be within noise — every touch point is one `Option` branch)
/// vs a fully enabled registry (atomics + virtual-clock spans, the
/// `--metrics` price). `campaign_*` measures the same at campaign
/// granularity. Numbers land in `BENCH_pipeline.json`.
fn bench_telemetry_overhead(c: &mut Criterion) {
    use libspector::pipeline::{analyze_run_instrumented, PipelineTelemetry};
    use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
    use spector_dispatch::{run_campaign, CampaignConfig, DispatchConfig};
    use spector_telemetry::Telemetry;

    let (knowledge, raws, port) = throughput_fixture();
    let port = *port;

    let mut group = c.benchmark_group("perf/telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(raws.len() as u64));
    group.bench_function("analyze_plain", |b| {
        b.iter(|| {
            for raw in raws {
                std::hint::black_box(analyze_run(raw, knowledge, port));
            }
        });
    });
    group.bench_function("analyze_instrumented_disabled", |b| {
        let pt = PipelineTelemetry::disabled_ref();
        b.iter(|| {
            for raw in raws {
                std::hint::black_box(analyze_run_instrumented(raw, knowledge, port, pt));
            }
        });
    });
    group.bench_function("analyze_instrumented_enabled", |b| {
        let telemetry = Telemetry::enabled();
        let pt = PipelineTelemetry::new(&telemetry);
        b.iter(|| {
            for raw in raws {
                std::hint::black_box(analyze_run_instrumented(raw, knowledge, port, &pt));
            }
        });
    });

    let corpus = Corpus::generate(&CorpusConfig {
        apps: 8,
        seed: 7_780,
        appgen: AppGenConfig {
            method_scale: 0.004,
            ..Default::default()
        },
        ..Default::default()
    });
    let knowledge = libspector::knowledge::Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig::default();
    dispatch.experiment.monkey.events = 40;
    dispatch.experiment.monkey.seed = 7_780;
    dispatch.workers = 1;
    group.throughput(Throughput::Elements(corpus.apps.len() as u64));
    group.bench_function("campaign_telemetry_disabled", |b| {
        let config = CampaignConfig {
            dispatch: dispatch.clone(),
            ..Default::default()
        };
        b.iter(|| {
            std::hint::black_box(run_campaign(&corpus, &knowledge, &config, None, None).unwrap())
        });
    });
    group.bench_function("campaign_telemetry_enabled", |b| {
        let config = CampaignConfig {
            dispatch: dispatch.clone(),
            telemetry: Telemetry::enabled(),
            ..Default::default()
        };
        b.iter(|| {
            std::hint::black_box(run_campaign(&corpus, &knowledge, &config, None, None).unwrap())
        });
    });
    group.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let pair = SocketPair::new(
        Ipv4Addr::new(10, 0, 2, 15),
        40_000,
        Ipv4Addr::new(198, 18, 0, 1),
        443,
    );
    let payload = vec![0xa5u8; 1_400];
    let frame = encode_tcp(&pair, 1, 1, tcp_flags::PSH | tcp_flags::ACK, &payload);

    let mut group = c.benchmark_group("perf/substrate");
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("tcp_frame_encode", |b| {
        b.iter(|| {
            std::hint::black_box(encode_tcp(
                &pair,
                1,
                1,
                tcp_flags::PSH | tcp_flags::ACK,
                &payload,
            ))
        });
    });
    group.bench_function("tcp_frame_decode", |b| {
        b.iter(|| std::hint::black_box(decode_frame(&frame).unwrap()));
    });
    let blob = vec![7u8; 64 * 1024];
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("sha256_64k", |b| {
        b.iter(|| std::hint::black_box(Sha256::digest(&blob)));
    });
    group.finish();

    // Dex disassembly (the Method Monitor's startup step).
    let dex = corpus().apps[0].apk.dex().unwrap();
    let bytes = write_dex(&dex);
    let mut group = c.benchmark_group("perf/dex");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("disassemble", |b| {
        b.iter(|| std::hint::black_box(parse_dex(&bytes).unwrap()));
    });
    group.finish();

    // Builtin-filter attribution over a Listing 1-shaped stack.
    let filter = BuiltinFilter::new();
    let frames: Vec<String> = [
        "java.net.Socket.connect",
        "com.android.okhttp.internal.Platform.connectSocket",
        "com.android.okhttp.Connection.connect",
        "com.android.okhttp.internal.http.HttpEngine.sendRequest",
        "com.unity3d.ads.android.cache.b.a",
        "com.unity3d.ads.android.cache.b.doInBackground",
        "android.os.AsyncTask$2.call",
        "java.util.concurrent.FutureTask.run",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let mut group = c.benchmark_group("perf/attribution");
    group.bench_function("attribute_stack", |b| {
        b.iter(|| std::hint::black_box(attribute(&frames, &filter)));
    });
    group.finish();

    // Report codec.
    let report = SocketReport {
        stream: None,
        apk_sha256: Sha256::digest(b"x"),
        pair,
        timestamp_micros: 123,
        frames,
    };
    let encoded = report.encode();
    let mut group = c.benchmark_group("perf/report");
    group.bench_function("encode", |b| {
        b.iter(|| std::hint::black_box(report.encode()))
    });
    group.bench_function("decode", |b| {
        b.iter(|| std::hint::black_box(SocketReport::decode(&encoded).unwrap()))
    });
    group.finish();

    let _ = HashMap::<u8, u8>::new(); // keep HashMap import meaningful under cfg tweaks
}

/// Cost of the sampled-tracing layer on the per-app experiment:
/// `exact` (rate 1.0, no budget) takes the wire-identical fast path
/// and must sit within noise of the pre-sampling pipeline numbers in
/// `BENCH_pipeline.json`; `sampled`/`budgeted` pay one SplitMix64 draw
/// (plus a window check) per socket. The bare inclusion decision is
/// timed on its own at the bottom.
fn bench_sampling_overhead(c: &mut Criterion) {
    use spector_sampling::{sample_draw, SamplingConfig, TraceBudget};

    let corpus = corpus();
    let resolver = resolver_for(&corpus.domains);
    let app = &corpus.apps[0];
    let system: Vec<_> = app
        .system_ops
        .iter()
        .map(|s| (s.op.clone(), s.dispatcher))
        .collect();
    let mut group = c.benchmark_group("perf/sampling_overhead");
    group.sample_size(20);
    let cases = [
        ("experiment_exact", 1.0, None),
        ("experiment_rate_0.5", 0.5, None),
        (
            "experiment_budget_64",
            1.0,
            Some(TraceBudget {
                max_reports: 64,
                window_micros: 50_000,
            }),
        ),
    ];
    for (label, rate, budget) in cases {
        let mut config = ExperimentConfig::default();
        config.monkey.events = 120;
        config.supervisor.sampling = SamplingConfig {
            rate,
            seed: 7,
            budget,
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(run_app(&app.apk, &resolver, &system, &config).unwrap())
            });
        });
    }
    let digest = [0xa5u8; 32];
    let pair = [10u8, 0, 2, 15, 0x9c, 0x40, 198, 18, 0, 1, 1, 0xbb];
    group.bench_function("inclusion_draw", |b| {
        b.iter(|| std::hint::black_box(sample_draw(7, &digest, &pair)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hook_overhead,
    bench_per_app_pipeline,
    bench_analysis_throughput,
    bench_chaos_overhead,
    bench_telemetry_overhead,
    bench_substrates,
    bench_sampling_overhead
);
criterion_main!(benches);
