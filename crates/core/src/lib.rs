//! # Libspector (reproduction)
//!
//! Context-aware, large-scale network traffic analysis of (simulated)
//! Android applications — a from-scratch Rust reproduction of the DSN
//! 2020 paper *"LIBSPECTOR: Context-Aware Large-Scale Network Traffic
//! Analysis of Android Applications"*.
//!
//! The library drives one app at a time through an instrumented
//! emulator session and then runs the offline pipeline that makes the
//! paper's measurements possible:
//!
//! 1. **Experiment** ([`experiment`]) — install the apk into a fresh
//!    runtime, attach the Socket Supervisor hook module, exercise the
//!    app with the monkey, and record the packet capture, supervisor
//!    reports, and the unique-method trace.
//! 2. **Attribution** ([`attribution`]) — translate each socket's stack
//!    trace, filter built-in frames, pick the chronologically-first
//!    non-builtin frame, and derive the *origin-library* and its
//!    *2-level* reduction.
//! 3. **Pipeline** ([`pipeline`]) — join supervisor reports with TCP
//!    stream epochs by connection 4-tuple, recover destination domains
//!    from captured DNS, categorize libraries (LibRadar aggregate +
//!    majority vote) and domains (Table I tokenizer), and compute
//!    per-app totals.
//! 4. **Coverage** ([`coverage`]) — executed ∩ dex methods over dex
//!    methods.
//! 5. **Cost** ([`cost`]) — the §IV-D monetary and energy models.
//!
//! # Examples
//!
//! ```
//! use libspector::experiment::{run_app, ExperimentConfig};
//! use libspector::knowledge::Knowledge;
//! use libspector::pipeline::analyze_run;
//! use spector_corpus::{Corpus, CorpusConfig};
//!
//! // Generate a one-app corpus and run it end to end.
//! let corpus = Corpus::generate(&CorpusConfig { apps: 1, seed: 1, ..Default::default() });
//! let app = &corpus.apps[0];
//! let mut config = ExperimentConfig::default();
//! config.monkey.events = 50;
//! let resolver = libspector::experiment::resolver_for(&corpus.domains);
//! let system: Vec<_> = app.system_ops.iter().map(|s| (s.op.clone(), s.dispatcher)).collect();
//! let raw = run_app(&app.apk, &resolver, &system, &config).unwrap();
//! let knowledge = Knowledge::from_corpus(&corpus);
//! let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
//! assert!(analysis.coverage.total_methods > 0);
//! ```

pub mod attribution;
pub mod baseline;
pub mod cost;
pub mod coverage;
pub mod experiment;
pub mod knowledge;
pub mod pipeline;
pub mod policy;

pub use attribution::{Attribution, OriginKind};
pub use coverage::CoverageReport;
pub use experiment::{run_app, ExperimentConfig, ExperimentError, RawRun};
pub use knowledge::Knowledge;
pub use pipeline::{
    analyze_run, analyze_run_instrumented, analyze_run_oracle, origin_label, AnalyzedFlow,
    AppAnalysis, PipelineTelemetry, RunIntegrity, BUILTIN_ORIGIN_LABEL,
};
pub use spector_netsim::shape::{FlowShape, IpFamily};
