//! Java method coverage (§IV-C).
//!
//! Coverage is "the ratio of method signatures which are listed in the
//! method trace file and available in the app's respective dex file
//! divided by the total number of methods in the dex file". The trace
//! includes native/framework API calls, which is why the intersection
//! with the dex's own signatures matters.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use spector_dex::sig::MethodSig;

/// Per-app coverage numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Methods defined in the apk's dex.
    pub total_methods: usize,
    /// Distinct traced methods that are defined in the dex.
    pub executed_methods: usize,
    /// Distinct traced methods *not* in the dex (framework calls).
    pub external_methods: usize,
}

impl CoverageReport {
    /// Coverage ratio in `[0, 1]`; zero for an empty dex.
    pub fn ratio(&self) -> f64 {
        if self.total_methods == 0 {
            0.0
        } else {
            self.executed_methods as f64 / self.total_methods as f64
        }
    }

    /// Coverage as a percentage.
    pub fn percent(&self) -> f64 {
        self.ratio() * 100.0
    }
}

/// Computes coverage from the traced set and the dex's signature set.
pub fn compute_coverage(
    traced: &HashSet<MethodSig>,
    dex_signatures: &HashSet<MethodSig>,
) -> CoverageReport {
    let executed_methods = traced.intersection(dex_signatures).count();
    CoverageReport {
        total_methods: dex_signatures.len(),
        executed_methods,
        external_methods: traced.len() - executed_methods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(n: u32) -> MethodSig {
        MethodSig::new("com.app", "C", &format!("m{n}"), "()V")
    }

    #[test]
    fn coverage_is_intersection_over_dex() {
        let dex: HashSet<MethodSig> = (0..100).map(sig).collect();
        let mut traced: HashSet<MethodSig> = (0..10).map(sig).collect();
        // Framework calls in the trace do not count toward coverage.
        traced.insert(MethodSig::new("java.net", "Socket", "connect", "()V"));
        let report = compute_coverage(&traced, &dex);
        assert_eq!(report.total_methods, 100);
        assert_eq!(report.executed_methods, 10);
        assert_eq!(report.external_methods, 1);
        assert!((report.ratio() - 0.10).abs() < 1e-12);
        assert!((report.percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dex_is_zero_coverage() {
        let report = compute_coverage(&HashSet::new(), &HashSet::new());
        assert_eq!(report.ratio(), 0.0);
        assert_eq!(report.total_methods, 0);
    }

    #[test]
    fn full_coverage() {
        let dex: HashSet<MethodSig> = (0..5).map(sig).collect();
        let report = compute_coverage(&dex.clone(), &dex);
        assert!((report.ratio() - 1.0).abs() < 1e-12);
    }
}
