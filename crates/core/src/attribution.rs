//! Origin-library attribution (§III-C).
//!
//! Given a socket's translated stack trace (most recent frame first),
//! the heuristic is:
//!
//! 1. drop every frame belonging to an Android built-in package
//!    (footnote 2 regex);
//! 2. the **origin frame** is the chronologically *first* invoked of
//!    the remaining frames — the last element of the most-recent-first
//!    list (Listing 1: `com.unity3d.ads.android.cache.b.doInBackground`);
//! 3. the **origin-library** is the origin frame's full package;
//! 4. the **2-level library** truncates that package to its first two
//!    dot components (`com.unity3d`).
//!
//! When *no* frame survives the filter, the socket was created entirely
//! by platform code; such traffic lands in the `*` buckets of Figure 3
//! and can only be characterized by its destination domain.

use serde::{Deserialize, Serialize};
use spector_dex::sig::{prefix_levels, MethodSig};
use spector_regexlite::Regex;
use spector_runtime::framework::builtin_filter_pattern;

/// Compiled builtin-package filter (footnote 2).
#[derive(Debug, Clone)]
pub struct BuiltinFilter {
    regex: Option<Regex>,
}

impl Default for BuiltinFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl BuiltinFilter {
    /// Compiles the footnote 2 pattern.
    pub fn new() -> Self {
        BuiltinFilter {
            regex: Some(
                Regex::new(&builtin_filter_pattern()).expect("footnote 2 pattern is valid"),
            ),
        }
    }

    /// A filter that matches nothing — the ablation variant used to
    /// measure how attribution degrades without frame filtering (every
    /// main-thread flow then attributes to scheduler internals).
    pub fn disabled() -> Self {
        BuiltinFilter { regex: None }
    }

    /// `true` when a frame (dotted or smali form) is built-in.
    pub fn is_builtin(&self, frame: &str) -> bool {
        match &self.regex {
            Some(regex) => regex.is_match(&dotted_of(frame)),
            None => false,
        }
    }
}

/// What a stack trace attributes to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OriginKind {
    /// A non-builtin origin frame was found.
    Library {
        /// Full package of the origin frame — the *origin-library*.
        origin_library: String,
        /// First two package components — the *2-level library*.
        two_level: String,
    },
    /// Only built-in frames remained: platform-created socket.
    Builtin,
}

/// The attribution result for one socket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribution {
    /// Attribution target.
    pub origin: OriginKind,
    /// The origin frame (dotted), when one exists.
    pub origin_frame: Option<String>,
    /// Frames surviving the builtin filter, most recent first.
    pub app_frames: usize,
}

/// Attributes a translated stack trace (most recent frame first).
pub fn attribute(frames: &[String], filter: &BuiltinFilter) -> Attribution {
    let surviving: Vec<&String> = frames.iter().filter(|f| !filter.is_builtin(f)).collect();
    match surviving.last() {
        None => Attribution {
            origin: OriginKind::Builtin,
            origin_frame: None,
            app_frames: 0,
        },
        Some(origin_frame) => {
            let dotted = dotted_of(origin_frame);
            let package = package_of(&dotted);
            Attribution {
                origin: OriginKind::Library {
                    two_level: prefix_levels(&package, 2),
                    origin_library: package,
                },
                origin_frame: Some(dotted),
                app_frames: surviving.len(),
            }
        }
    }
}

/// Normalizes a frame to its dotted `package.Class.method` form: smali
/// type signatures (produced by the supervisor's dex translation) are
/// parsed, anything else passes through.
fn dotted_of(frame: &str) -> String {
    if frame.starts_with('L') && frame.contains(";->") {
        if let Ok(sig) = frame.parse::<MethodSig>() {
            return sig.dotted_name();
        }
    }
    frame.to_owned()
}

/// Package of a dotted frame name: everything up to the class and
/// method components.
fn package_of(dotted: &str) -> String {
    let parts: Vec<&str> = dotted.split('.').collect();
    if parts.len() <= 2 {
        return String::new();
    }
    parts[..parts.len() - 2].join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Listing 1 stack trace, with the two app frames in their
    /// supervisor-translated smali form.
    fn listing1() -> Vec<String> {
        vec![
            "java.net.Socket.connect".to_owned(),
            "com.android.okhttp.internal.Platform.connectSocket".to_owned(),
            "com.android.okhttp.Connection.connectSocket".to_owned(),
            "com.android.okhttp.Connection.connect".to_owned(),
            "com.android.okhttp.Connection.connectAndSetOwner".to_owned(),
            "com.android.okhttp.OkHttpClient$1.connectAndSetOwner".to_owned(),
            "com.android.okhttp.internal.http.HttpEngine.connect".to_owned(),
            "com.android.okhttp.internal.http.HttpEngine.sendRequest".to_owned(),
            "com.android.okhttp.internal.huc.HttpURLConnectionImpl.execute".to_owned(),
            "com.android.okhttp.internal.huc.HttpURLConnectionImpl.connect".to_owned(),
            "Lcom/unity3d/ads/android/cache/b;->a()V".to_owned(),
            "Lcom/unity3d/ads/android/cache/b;->doInBackground([Ljava/lang/Object;)Ljava/lang/Object;"
                .to_owned(),
            "android.os.AsyncTask$2.call".to_owned(),
            "java.util.concurrent.FutureTask.run".to_owned(),
        ]
    }

    #[test]
    fn listing1_attributes_to_unity_cache() {
        // Per §III-C: origin-library com.unity3d.ads.android.cache,
        // 2-level library com.unity3d. Note: by footnote 2,
        // com.android.okhttp survives the filter, but the unity frames
        // are *chronologically earlier* (deeper), so attribution is
        // unchanged.
        let attribution = attribute(&listing1(), &BuiltinFilter::new());
        assert_eq!(
            attribution.origin,
            OriginKind::Library {
                origin_library: "com.unity3d.ads.android.cache".to_owned(),
                two_level: "com.unity3d".to_owned(),
            }
        );
        assert_eq!(
            attribution.origin_frame.as_deref(),
            Some("com.unity3d.ads.android.cache.b.doInBackground")
        );
    }

    #[test]
    fn platform_only_stack_is_builtin() {
        let frames = vec![
            "java.net.Socket.connect".to_owned(),
            "android.net.ConnectivityManager.reportNetworkConnectivity".to_owned(),
            "java.lang.Thread.run".to_owned(),
        ];
        let attribution = attribute(&frames, &BuiltinFilter::new());
        assert_eq!(attribution.origin, OriginKind::Builtin);
        assert_eq!(attribution.app_frames, 0);
        assert_eq!(attribution.origin_frame, None);
    }

    #[test]
    fn platform_okhttp_socket_attributes_to_com_android() {
        // System traffic through the platform okhttp: after filtering,
        // only com.android.okhttp frames remain (footnote 2 does not
        // cover them), and the deepest is the HttpURLConnectionImpl
        // entry.
        let frames: Vec<String> = listing1()[..10].to_vec();
        let attribution = attribute(&frames, &BuiltinFilter::new());
        assert_eq!(
            attribution.origin,
            OriginKind::Library {
                origin_library: "com.android.okhttp.internal.huc".to_owned(),
                two_level: "com.android".to_owned(),
            }
        );
    }

    #[test]
    fn sync_call_attributes_to_the_root_caller() {
        // A handler calling a library synchronously: the heuristic
        // attributes to the *handler* (chronologically first), which is
        // how first-party code accumulates the Unknown category.
        let frames = vec![
            "java.net.Socket.connect".to_owned(),
            "Lcom/adnet/sdk/Fetcher;->pull()V".to_owned(),
            "Lcom/myapp/Activity0;->onClick0(Landroid/view/View;)V".to_owned(),
            "android.os.Handler.dispatchMessage".to_owned(),
        ];
        let attribution = attribute(&frames, &BuiltinFilter::new());
        assert_eq!(
            attribution.origin,
            OriginKind::Library {
                origin_library: "com.myapp".to_owned(),
                two_level: "com.myapp".to_owned(),
            }
        );
        assert_eq!(attribution.app_frames, 2);
    }

    #[test]
    fn empty_stack_is_builtin() {
        let attribution = attribute(&[], &BuiltinFilter::new());
        assert_eq!(attribution.origin, OriginKind::Builtin);
    }

    #[test]
    fn short_names_have_empty_package() {
        let frames = vec!["Main.run".to_owned()];
        let attribution = attribute(&frames, &BuiltinFilter::new());
        match attribution.origin {
            OriginKind::Library {
                origin_library,
                two_level,
            } => {
                assert_eq!(origin_library, "");
                assert_eq!(two_level, "");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builtin_filter_matches_footnote2_exactly() {
        let filter = BuiltinFilter::new();
        for builtin in [
            "android.os.AsyncTask$2.call",
            "dalvik.system.DexClassLoader.loadClass",
            "java.util.concurrent.FutureTask.run",
            "javax.net.ssl.SSLSocketFactory.createSocket",
            "junit.framework.TestCase.run",
            "org.apache.http.impl.client.CloseableHttpClient.execute",
            "org.json.JSONObject.put",
            "org.w3c.dom.Document.getElementById",
            "org.xml.sax.XMLReader.parse",
            "org.xmlpull.v1.XmlPullParser.next",
        ] {
            assert!(filter.is_builtin(builtin), "{builtin}");
        }
        for kept in [
            "com.android.okhttp.internal.Platform.connectSocket",
            "com.android.volley.NetworkDispatcher.run",
            "androidx.core.view.ViewCompat.animate", // androidx ≠ android.
            "com.unity3d.ads.android.cache.b.a",
            "okhttp3.internal.http.RealConnection.connect",
        ] {
            assert!(!filter.is_builtin(kept), "{kept}");
        }
    }

    #[test]
    fn smali_frames_are_normalized() {
        let filter = BuiltinFilter::new();
        // A smali-form frame of a builtin class is still recognized.
        assert!(filter.is_builtin("Landroid/os/AsyncTask$2;->call()Ljava/lang/Object;"));
    }
}
