//! Library-granular policy enforcement (§IV-E "Security").
//!
//! BorderPatrol-style systems enforce per-library network policies but
//! need a-priori knowledge of *which* library to blacklist; the paper
//! positions Libspector as the system that supplies that knowledge.
//! This module closes the loop:
//!
//! * [`Policy`] — an ordered rule list (first match wins) over a flow's
//!   origin-library, library category, destination domain, or domain
//!   category;
//! * [`Policy::evaluate`] — the verdict for one analyzed flow;
//! * [`apply`] — a what-if replay over a campaign: flows that would
//!   have been blocked, bytes (and dollars) saved;
//! * [`suggest_blacklist`] — derives candidate blacklist entries from
//!   measured AnT traffic, the "insights on which library to blacklist"
//!   the paper describes.

use serde::{Deserialize, Serialize};
use spector_libradar::LibCategory;
use spector_vtcat::DomainCategory;

use crate::cost::DataPlan;
use crate::pipeline::{AnalyzedFlow, AppAnalysis};
use crate::OriginKind;

/// What a rule matches on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Matcher {
    /// Origin-library package prefix (whole-component match).
    LibraryPrefix(String),
    /// Predicted library category.
    LibraryCategory(LibCategory),
    /// Exact destination domain.
    Domain(String),
    /// Destination domain category.
    DomainCategory(DomainCategory),
    /// Flows whose origin is on the AnT list.
    AnyAnt,
    /// Platform-created sockets (no app frames).
    BuiltinOrigin,
}

impl Matcher {
    /// Does this matcher cover `flow`?
    pub fn matches(&self, flow: &AnalyzedFlow) -> bool {
        match self {
            Matcher::LibraryPrefix(prefix) => match &flow.origin {
                OriginKind::Library { origin_library, .. } => {
                    origin_library == prefix
                        || (origin_library.starts_with(prefix.as_str())
                            && origin_library.as_bytes().get(prefix.len()) == Some(&b'.'))
                }
                OriginKind::Builtin => false,
            },
            Matcher::LibraryCategory(category) => flow.lib_category == *category,
            Matcher::Domain(domain) => flow.domain.as_deref() == Some(domain.as_str()),
            Matcher::DomainCategory(category) => flow.domain_category == *category,
            Matcher::AnyAnt => flow.is_ant,
            Matcher::BuiltinOrigin => matches!(flow.origin, OriginKind::Builtin),
        }
    }
}

/// Verdict for a matched flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Permit the flow.
    Allow,
    /// Block the flow.
    Block,
}

/// One policy rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Human-readable rule name (reported per-rule in the outcome).
    pub name: String,
    /// Match condition.
    pub matcher: Matcher,
    /// Verdict when matched.
    pub action: Action,
}

/// An ordered policy: first matching rule wins; unmatched flows get the
/// default action.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    /// Rules, highest priority first.
    pub rules: Vec<Rule>,
    /// Verdict when no rule matches.
    pub default_action: Action,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            rules: Vec::new(),
            default_action: Action::Allow,
        }
    }
}

impl Policy {
    /// Creates an allow-by-default policy.
    pub fn allow_by_default() -> Self {
        Self::default()
    }

    /// Appends a rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, name: &str, matcher: Matcher, action: Action) -> Self {
        self.rules.push(Rule {
            name: name.to_owned(),
            matcher,
            action,
        });
        self
    }

    /// Verdict for one flow, with the deciding rule's name.
    pub fn evaluate(&self, flow: &AnalyzedFlow) -> (Action, Option<&str>) {
        for rule in &self.rules {
            if rule.matcher.matches(flow) {
                return (rule.action, Some(rule.name.as_str()));
            }
        }
        (self.default_action, None)
    }
}

/// Outcome of replaying a policy over a campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicyReport {
    /// Flows evaluated.
    pub flows: usize,
    /// Flows that would have been blocked.
    pub blocked_flows: usize,
    /// Wire bytes that would have been blocked.
    pub blocked_bytes: u64,
    /// Wire bytes allowed.
    pub allowed_bytes: u64,
    /// `(rule name, flows matched, bytes)` in rule order.
    pub per_rule: Vec<(String, usize, u64)>,
    /// Apps whose entire traffic would have been blocked.
    pub fully_blocked_apps: usize,
}

impl PolicyReport {
    /// Hourly savings implied by the blocked volume, per app, under a
    /// data plan.
    pub fn hourly_savings_usd(&self, plan: &DataPlan, apps: usize) -> f64 {
        plan.hourly_cost_usd(self.blocked_bytes as f64 / apps.max(1) as f64)
    }
}

/// Replays `policy` over a campaign's analyzed flows.
pub fn apply(policy: &Policy, analyses: &[AppAnalysis]) -> PolicyReport {
    let mut report = PolicyReport::default();
    let mut rule_stats: Vec<(usize, u64)> = vec![(0, 0); policy.rules.len()];
    for analysis in analyses {
        let mut app_total = 0u64;
        let mut app_blocked = 0u64;
        for flow in &analysis.flows {
            report.flows += 1;
            let bytes = flow.total_bytes();
            app_total += bytes;
            let (action, rule_name) = policy.evaluate(flow);
            if let Some(name) = rule_name {
                let idx = policy
                    .rules
                    .iter()
                    .position(|r| r.name == name)
                    .expect("rule came from this policy");
                rule_stats[idx].0 += 1;
                rule_stats[idx].1 += bytes;
            }
            match action {
                Action::Block => {
                    report.blocked_flows += 1;
                    report.blocked_bytes += bytes;
                    app_blocked += bytes;
                }
                Action::Allow => report.allowed_bytes += bytes,
            }
        }
        if app_total > 0 && app_blocked == app_total {
            report.fully_blocked_apps += 1;
        }
    }
    report.per_rule = policy
        .rules
        .iter()
        .zip(rule_stats)
        .map(|(rule, (flows, bytes))| (rule.name.clone(), flows, bytes))
        .collect();
    report
}

/// Online, in-emulator policy enforcement: a [`spector_runtime::RuntimeHook`]
/// that evaluates the policy at `connect` time and tears blocked
/// connections down before any payload moves — the BorderPatrol
/// enforcement model, fed by Libspector's own attribution heuristic
/// applied live to the creating thread's stack.
///
/// Library rules are evaluated against the origin the builtin-filter
/// heuristic derives from the live stack; domain rules resolve the
/// destination address through the supplied IP→domain map (the
/// enforcer's equivalent of a DNS inspection cache).
#[derive(Debug)]
pub struct OnlineEnforcer {
    policy: Policy,
    filter: crate::attribution::BuiltinFilter,
    domains: std::collections::HashMap<std::net::IpAddr, String>,
    lists: spector_libradar::LibraryLists,
    aggregated: spector_libradar::AggregatedLibraries,
    blocked: u64,
}

impl OnlineEnforcer {
    /// Builds an enforcer from a policy plus the knowledge needed to
    /// evaluate category/AnT rules online.
    pub fn new(
        policy: Policy,
        knowledge: &crate::knowledge::Knowledge,
        domains: std::collections::HashMap<std::net::IpAddr, String>,
    ) -> Self {
        OnlineEnforcer {
            policy,
            filter: crate::attribution::BuiltinFilter::new(),
            domains,
            lists: knowledge.lists.clone(),
            aggregated: knowledge.aggregated.clone(),
            blocked: 0,
        }
    }

    /// Connections this enforcer has blocked so far.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }
}

impl spector_runtime::RuntimeHook for OnlineEnforcer {
    fn after_socket_connect(
        &mut self,
        _ctx: &mut spector_runtime::HookContext<'_>,
        _socket: spector_netsim::SocketId,
    ) {
        // Pure enforcer: observation is the supervisor's job.
    }

    fn connect_verdict(
        &mut self,
        ctx: &mut spector_runtime::HookContext<'_>,
        socket: spector_netsim::SocketId,
    ) -> spector_runtime::ConnectVerdict {
        let Some(pair) = ctx.net.socket_pair(socket) else {
            return spector_runtime::ConnectVerdict::Allow;
        };
        let frames = ctx.stack.snapshot();
        let attribution = crate::attribution::attribute(&frames, &self.filter);
        let (lib_category, is_ant) = match &attribution.origin {
            OriginKind::Library { origin_library, .. } => (
                self.aggregated.predict_category(origin_library),
                self.lists.is_ant(origin_library),
            ),
            OriginKind::Builtin => (LibCategory::Unknown, false),
        };
        let domain = self
            .domains
            .get(&spector_netsim::canonical_ip(pair.dst_ip))
            .cloned();
        // Domain category is not known online (no VT labels inside the
        // emulator); domain-category rules only fire offline.
        let flow = AnalyzedFlow {
            domain,
            domain_category: DomainCategory::Unknown,
            origin: attribution.origin,
            lib_category,
            is_ant,
            is_common: false,
            sent_bytes: 0,
            recv_bytes: 0,
            sent_payload: 0,
            recv_payload: 0,
            start_micros: 0,
            http_user_agent: None,
            family: spector_netsim::shape::IpFamily::of(&pair),
            shape: spector_netsim::shape::FlowShape::Plain,
            stream: None,
        };
        match self.policy.evaluate(&flow).0 {
            Action::Block => {
                self.blocked += 1;
                spector_runtime::ConnectVerdict::Block
            }
            Action::Allow => spector_runtime::ConnectVerdict::Allow,
        }
    }
}

/// Suggests blacklist entries: the 2-level origins of AnT traffic,
/// ranked by bytes, keeping those above `min_bytes`. This is the
/// Libspector→BorderPatrol hand-off the paper describes.
pub fn suggest_blacklist(analyses: &[AppAnalysis], min_bytes: u64) -> Vec<(String, u64)> {
    let mut per_origin: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for analysis in analyses {
        for flow in &analysis.flows {
            if !flow.is_ant {
                continue;
            }
            if let OriginKind::Library { two_level, .. } = &flow.origin {
                *per_origin.entry(two_level.clone()).or_default() += flow.total_bytes();
            }
        }
    }
    let mut ranked: Vec<(String, u64)> = per_origin
        .into_iter()
        .filter(|(_, bytes)| *bytes >= min_bytes)
        .collect();
    ranked.sort_by_key(|(name, bytes)| (std::cmp::Reverse(*bytes), name.clone()));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageReport;

    fn flow(
        origin: Option<&str>,
        lib: LibCategory,
        domain: &str,
        dc: DomainCategory,
        bytes: u64,
    ) -> AnalyzedFlow {
        AnalyzedFlow {
            domain: Some(domain.to_owned()),
            domain_category: dc,
            origin: match origin {
                Some(pkg) => OriginKind::Library {
                    origin_library: pkg.to_owned(),
                    two_level: spector_dex::sig::prefix_levels(pkg, 2),
                },
                None => OriginKind::Builtin,
            },
            lib_category: lib,
            is_ant: matches!(
                lib,
                LibCategory::Advertisement | LibCategory::MobileAnalytics
            ),
            is_common: false,
            sent_bytes: 0,
            recv_bytes: bytes,
            sent_payload: 0,
            recv_payload: bytes,
            start_micros: 0,
            http_user_agent: None,
            family: Default::default(),
            shape: Default::default(),
            stream: None,
        }
    }

    fn app(flows: Vec<AnalyzedFlow>) -> AppAnalysis {
        AppAnalysis {
            package: "com.a".into(),
            app_category: "TOOLS".into(),
            flows,
            unattributed_flows: 0,
            reports_without_flow: 0,
            coverage: CoverageReport {
                total_methods: 1,
                executed_methods: 1,
                external_methods: 0,
            },
            dns_packets: 0,
            report_packets: 0,
            integrity: Default::default(),
            detect: Default::default(),
            sampling: Default::default(),
        }
    }

    #[test]
    fn first_match_wins_and_prefix_is_component_aware() {
        let policy = Policy::allow_by_default()
            .with_rule(
                "allow-unity-player",
                Matcher::LibraryPrefix("com.unity3d.player".into()),
                Action::Allow,
            )
            .with_rule(
                "block-unity",
                Matcher::LibraryPrefix("com.unity3d".into()),
                Action::Block,
            );
        let player = flow(
            Some("com.unity3d.player.core"),
            LibCategory::GameEngine,
            "g",
            DomainCategory::Games,
            10,
        );
        let ads = flow(
            Some("com.unity3d.ads.cache"),
            LibCategory::Advertisement,
            "a",
            DomainCategory::Advertisements,
            10,
        );
        let lookalike = flow(
            Some("com.unity3dx.thing"),
            LibCategory::Utility,
            "u",
            DomainCategory::InfoTech,
            10,
        );
        assert_eq!(
            policy.evaluate(&player),
            (Action::Allow, Some("allow-unity-player"))
        );
        assert_eq!(policy.evaluate(&ads), (Action::Block, Some("block-unity")));
        assert_eq!(policy.evaluate(&lookalike), (Action::Allow, None));
    }

    #[test]
    fn apply_accounts_bytes_and_rules() {
        let policy =
            Policy::allow_by_default().with_rule("block-ant", Matcher::AnyAnt, Action::Block);
        let analyses = vec![
            app(vec![
                flow(
                    Some("com.ads.sdk"),
                    LibCategory::Advertisement,
                    "a",
                    DomainCategory::Advertisements,
                    700,
                ),
                flow(
                    Some("okhttp3.internal"),
                    LibCategory::DevelopmentAid,
                    "c",
                    DomainCategory::Cdn,
                    300,
                ),
            ]),
            // AnT-only app: fully blocked.
            app(vec![flow(
                Some("com.ads.sdk"),
                LibCategory::Advertisement,
                "a",
                DomainCategory::Advertisements,
                500,
            )]),
        ];
        let report = apply(&policy, &analyses);
        assert_eq!(report.flows, 3);
        assert_eq!(report.blocked_flows, 2);
        assert_eq!(report.blocked_bytes, 1_200);
        assert_eq!(report.allowed_bytes, 300);
        assert_eq!(report.fully_blocked_apps, 1);
        assert_eq!(report.per_rule, vec![("block-ant".to_owned(), 2, 1_200)]);
        let savings = report.hourly_savings_usd(&DataPlan::default(), 2);
        assert!(savings > 0.0);
    }

    #[test]
    fn category_domain_and_builtin_matchers() {
        let game = flow(
            Some("com.engine"),
            LibCategory::GameEngine,
            "play.x",
            DomainCategory::Games,
            1,
        );
        let builtin = flow(
            None,
            LibCategory::Unknown,
            "probe.x",
            DomainCategory::InfoTech,
            1,
        );
        assert!(Matcher::LibraryCategory(LibCategory::GameEngine).matches(&game));
        assert!(!Matcher::LibraryCategory(LibCategory::Payment).matches(&game));
        assert!(Matcher::Domain("play.x".into()).matches(&game));
        assert!(Matcher::DomainCategory(DomainCategory::Games).matches(&game));
        assert!(Matcher::BuiltinOrigin.matches(&builtin));
        assert!(!Matcher::BuiltinOrigin.matches(&game));
        assert!(!Matcher::LibraryPrefix("com".into()).matches(&builtin));
    }

    #[test]
    fn blacklist_suggestion_ranks_ant_two_levels() {
        let analyses = vec![app(vec![
            flow(
                Some("com.vungle.publisher"),
                LibCategory::Advertisement,
                "a",
                DomainCategory::Advertisements,
                900,
            ),
            flow(
                Some("com.adnet.banner"),
                LibCategory::Advertisement,
                "b",
                DomainCategory::Cdn,
                400,
            ),
            flow(
                Some("com.tiny.ads"),
                LibCategory::Advertisement,
                "c",
                DomainCategory::Advertisements,
                10,
            ),
            flow(
                Some("okhttp3.internal"),
                LibCategory::DevelopmentAid,
                "d",
                DomainCategory::Cdn,
                5_000,
            ),
        ])];
        let suggestions = suggest_blacklist(&analyses, 100);
        assert_eq!(
            suggestions,
            vec![
                ("com.vungle".to_owned(), 900),
                ("com.adnet".to_owned(), 400),
            ]
        );
    }

    #[test]
    fn default_block_policy() {
        let policy = Policy {
            rules: vec![],
            default_action: Action::Block,
        };
        let f = flow(
            Some("com.x"),
            LibCategory::Utility,
            "d",
            DomainCategory::InfoTech,
            5,
        );
        assert_eq!(policy.evaluate(&f), (Action::Block, None));
    }
}
