//! Corpus-level knowledge the offline pipeline consumes.
//!
//! Before analyzing any traffic, the paper runs LibRadar over every
//! collected apk and aggregates the detected libraries with their
//! categories (§III-D), collects Li et al.'s AnT/common lists, and
//! fetches VirusTotal category labels for every observed domain
//! (§III-F). `Knowledge` bundles those inputs; [`Knowledge::from_corpus`]
//! performs the aggregation scan over a generated corpus.

use std::collections::HashMap;

use spector_libradar::{AggregatedLibraries, LibCategory, LibraryLists};
use spector_vtcat::{DomainCategory, Tokenizer};

use crate::attribution::BuiltinFilter;

/// Everything the per-app analysis needs beyond the app's own run data.
#[derive(Debug, Clone)]
pub struct Knowledge {
    /// Libraries detected across the corpus, with categories.
    pub aggregated: AggregatedLibraries,
    /// AnT / common-library prefix lists.
    pub lists: LibraryLists,
    /// VirusTotal-style vendor labels per domain name.
    pub domain_labels: HashMap<String, Vec<String>>,
    /// The Table I tokenizer.
    pub tokenizer: Tokenizer,
    /// Compiled footnote 2 filter.
    pub builtin: BuiltinFilter,
}

impl Knowledge {
    /// Builds knowledge from explicit parts.
    pub fn new(
        aggregated: AggregatedLibraries,
        lists: LibraryLists,
        domain_labels: HashMap<String, Vec<String>>,
    ) -> Self {
        Knowledge {
            aggregated,
            lists,
            domain_labels,
            tokenizer: Tokenizer::new(),
            builtin: BuiltinFilter::new(),
        }
    }

    /// The §III-D aggregation scan over a generated corpus: run the
    /// LibRadar-style detector on every apk, merge the results, and
    /// pull vendor labels for every domain in the universe.
    pub fn from_corpus(corpus: &spector_corpus::Corpus) -> Self {
        let mut aggregated = AggregatedLibraries::new();
        for app in &corpus.apps {
            if let Ok(dex) = app.apk.dex() {
                for detected in corpus.library_db.detect(&dex) {
                    aggregated.record(&detected.name, detected.category);
                }
            }
        }
        let domain_labels = corpus
            .domains
            .domains()
            .iter()
            .map(|d| (d.name.clone(), d.vendor_labels.clone()))
            .collect();
        Knowledge::new(aggregated, corpus.lists.clone(), domain_labels)
    }

    /// Generic category of a domain: tokenize its vendor labels and
    /// majority-vote; unseen domains are `unknown`.
    pub fn domain_category(&self, domain: &str) -> DomainCategory {
        match self.domain_labels.get(domain) {
            Some(labels) => self.tokenizer.classify(labels),
            None => DomainCategory::Unknown,
        }
    }

    /// Category of an origin-library package: longest matching known
    /// library prefix, then majority vote over the shared-prefix family
    /// (Listing 2). Packages with no relation to any known library are
    /// `Unknown` — typically first-party code.
    pub fn library_category(&self, origin_library: &str) -> LibCategory {
        self.aggregated.predict_category(origin_library)
    }
}

// The corpus dependency is dev-facing: Knowledge::from_corpus is the
// bridge used by experiments, examples, and benches.

#[cfg(test)]
mod tests {
    use super::*;
    use spector_corpus::{Corpus, CorpusConfig};

    fn knowledge() -> (Knowledge, Corpus) {
        let corpus = Corpus::generate(&CorpusConfig {
            apps: 12,
            seed: 3,
            ..Default::default()
        });
        (Knowledge::from_corpus(&corpus), corpus)
    }

    #[test]
    fn corpus_scan_aggregates_libraries() {
        let (knowledge, corpus) = knowledge();
        assert!(!knowledge.aggregated.is_empty());
        // Every library origin package in the ground truth must resolve
        // to its true category via longest-prefix + majority vote,
        // because the enclosing library was detected in the same scan.
        let mut checked = 0;
        for app in &corpus.apps {
            for truth in &app.truth {
                if truth.lib_category == LibCategory::Unknown {
                    continue;
                }
                let origin = truth.expected_origin.as_deref().unwrap();
                assert_eq!(
                    knowledge.library_category(origin),
                    truth.lib_category,
                    "origin {origin}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn first_party_packages_are_unknown() {
        let (knowledge, _) = knowledge();
        assert_eq!(
            knowledge.library_category("com.dev7.app3.net"),
            LibCategory::Unknown
        );
    }

    #[test]
    fn domain_categories_recovered_from_labels() {
        let (knowledge, corpus) = knowledge();
        let mut correct = 0usize;
        let mut total = 0usize;
        for domain in corpus.domains.domains() {
            if domain.true_category == DomainCategory::Unknown {
                assert_eq!(
                    knowledge.domain_category(&domain.name),
                    DomainCategory::Unknown
                );
                continue;
            }
            total += 1;
            if knowledge.domain_category(&domain.name) == domain.true_category {
                correct += 1;
            }
        }
        assert!(total > 0);
        assert!(correct * 100 / total >= 55, "{correct}/{total}");
    }

    #[test]
    fn unseen_domain_is_unknown() {
        let (knowledge, _) = knowledge();
        assert_eq!(
            knowledge.domain_category("never.observed.example"),
            DomainCategory::Unknown
        );
    }
}
