//! Corpus-level knowledge the offline pipeline consumes.
//!
//! Before analyzing any traffic, the paper runs LibRadar over every
//! collected apk and aggregates the detected libraries with their
//! categories (§III-D), collects Li et al.'s AnT/common lists, and
//! fetches VirusTotal category labels for every observed domain
//! (§III-F). `Knowledge` bundles those inputs; [`Knowledge::from_corpus`]
//! performs the aggregation scan over a generated corpus.
//!
//! Two memoization layers keep the per-flow hot path off the expensive
//! machinery:
//!
//! * domain categories are precomputed once per campaign (the Table I
//!   regex tokenizer runs once per *domain*, not once per *flow*) into
//!   [`Knowledge::domain_categories`];
//! * origin-library verdicts — predicted category plus AnT/common list
//!   membership — are cached per origin-library in a concurrent map
//!   shared by all dispatch workers ([`Knowledge::library_verdict`]).

use std::collections::HashMap;

use parking_lot::RwLock;
use spector_libradar::{AggregatedLibraries, DetectTier, LibCategory, LibraryLists, PrefixAliases};
use spector_vtcat::{DomainCategory, Tokenizer};

use crate::attribution::BuiltinFilter;

/// Memoized per-origin-library verdict: predicted category, AnT list
/// membership, common-library list membership.
pub type LibraryVerdict = (LibCategory, bool, bool);

/// Everything the per-app analysis needs beyond the app's own run data.
#[derive(Debug)]
pub struct Knowledge {
    /// Libraries detected across the corpus, with categories.
    pub aggregated: AggregatedLibraries,
    /// AnT / common-library prefix lists.
    pub lists: LibraryLists,
    /// Precomputed domain → generic category table: every observed
    /// domain's vendor labels are tokenized exactly once per campaign.
    pub domain_categories: HashMap<String, DomainCategory>,
    /// The Table I tokenizer.
    pub tokenizer: Tokenizer,
    /// Compiled footnote 2 filter.
    pub builtin: BuiltinFilter,
    /// Renamed in-app prefixes bridged to canonical library packages by
    /// the exact `LibraryDb` fingerprint during the corpus scan. Empty
    /// on unobfuscated corpora (identity aliases are never recorded).
    pub exact_aliases: PrefixAliases,
    /// Prefixes only the structural-profile tier could bridge (mangled
    /// copies the exact fingerprint no longer recognizes).
    pub structural_aliases: PrefixAliases,
    /// Concurrent per-campaign cache of origin-library verdicts (with
    /// the cascade tier that produced each), shared by all analysis
    /// workers.
    library_verdicts: RwLock<HashMap<String, (LibraryVerdict, DetectTier)>>,
}

impl Clone for Knowledge {
    fn clone(&self) -> Self {
        Knowledge {
            aggregated: self.aggregated.clone(),
            lists: self.lists.clone(),
            domain_categories: self.domain_categories.clone(),
            tokenizer: self.tokenizer.clone(),
            builtin: self.builtin.clone(),
            exact_aliases: self.exact_aliases.clone(),
            structural_aliases: self.structural_aliases.clone(),
            library_verdicts: RwLock::new(self.library_verdicts.read().clone()),
        }
    }
}

impl Knowledge {
    /// Builds knowledge from explicit parts, tokenizing every domain's
    /// vendor labels once up front.
    pub fn new(
        aggregated: AggregatedLibraries,
        lists: LibraryLists,
        domain_labels: HashMap<String, Vec<String>>,
    ) -> Self {
        let tokenizer = Tokenizer::new();
        let domain_categories = domain_labels
            .into_iter()
            .map(|(domain, labels)| {
                let category = tokenizer.classify(&labels);
                (domain, category)
            })
            .collect();
        Knowledge::with_domain_categories(aggregated, lists, domain_categories)
    }

    /// Builds knowledge from an already-classified domain table (the
    /// path [`from_corpus`](Self::from_corpus) takes, which never
    /// materializes an intermediate label map).
    pub fn with_domain_categories(
        aggregated: AggregatedLibraries,
        lists: LibraryLists,
        domain_categories: HashMap<String, DomainCategory>,
    ) -> Self {
        Knowledge {
            aggregated,
            lists,
            domain_categories,
            tokenizer: Tokenizer::new(),
            builtin: BuiltinFilter::new(),
            exact_aliases: PrefixAliases::new(),
            structural_aliases: PrefixAliases::new(),
            library_verdicts: RwLock::new(HashMap::new()),
        }
    }

    /// The §III-D aggregation scan over a generated corpus: run the
    /// LibRadar-style detector on every apk, merge the results, and
    /// classify every domain in the universe from its vendor labels
    /// directly (no intermediate per-domain label clone).
    ///
    /// Both detection knowledge bases run per apk. The exact fingerprint
    /// recognizes renamed library copies; the structural index also
    /// recognizes mangled ones. Every detection records the *canonical*
    /// name into the aggregate (so the trie and the Listing 2 vote see
    /// canonical packages even when no app ships them verbatim), and
    /// every non-identity `in_app_prefix` becomes an alias the verdict
    /// cascade can resolve obfuscated origins through.
    pub fn from_corpus(corpus: &spector_corpus::Corpus) -> Self {
        let mut aggregated = AggregatedLibraries::new();
        let mut exact_aliases = PrefixAliases::new();
        let mut structural_aliases = PrefixAliases::new();
        for app in &corpus.apps {
            if let Ok(dex) = app.apk.dex() {
                for detected in corpus.library_db.detect(&dex) {
                    aggregated.record(&detected.name, detected.category);
                    exact_aliases.insert(&detected.in_app_prefix, &detected.name);
                }
                for matched in corpus.structural_index.detect(&dex) {
                    aggregated.record(&matched.name, matched.category);
                    structural_aliases.insert(&matched.in_app_prefix, &matched.name);
                }
            }
        }
        let tokenizer = Tokenizer::new();
        let domains = corpus.domains.domains();
        let mut domain_categories = HashMap::with_capacity(domains.len());
        for domain in domains {
            domain_categories.insert(
                domain.name.clone(),
                tokenizer.classify(&domain.vendor_labels),
            );
        }
        let mut knowledge =
            Knowledge::with_domain_categories(aggregated, corpus.lists.clone(), domain_categories);
        knowledge.exact_aliases = exact_aliases;
        knowledge.structural_aliases = structural_aliases;
        knowledge
    }

    /// Generic category of a domain, from the precomputed table; unseen
    /// domains are `unknown`.
    pub fn domain_category(&self, domain: &str) -> DomainCategory {
        self.domain_categories
            .get(domain)
            .copied()
            .unwrap_or(DomainCategory::Unknown)
    }

    /// Category of an origin-library package: longest matching known
    /// library prefix, then majority vote over the shared-prefix family
    /// (Listing 2). Packages with no relation to any known library are
    /// `Unknown` — typically first-party code.
    pub fn library_category(&self, origin_library: &str) -> LibCategory {
        self.library_verdict(origin_library).0
    }

    /// Memoized `(category, is_ant, is_common)` verdict for an
    /// origin-library. The first query per distinct origin pays the
    /// cascade walk; every repeat across the whole campaign is one
    /// concurrent hash lookup.
    pub fn library_verdict(&self, origin_library: &str) -> LibraryVerdict {
        self.library_verdict_tiered(origin_library).0
    }

    /// The three-tier detection cascade, memoized: the verdict plus the
    /// tier that produced it.
    ///
    /// 1. **Trie** — longest-prefix / Listing 2 vote on the raw origin
    ///    package. Any non-`Unknown` category is a hit: this is the
    ///    paper's own path and stays byte-identical when no aliases
    ///    exist (every unobfuscated corpus).
    /// 2. **Exact fingerprint** — the origin sits under a renamed prefix
    ///    the `LibraryDb` scan bridged; the verdict is recomputed on the
    ///    canonical rewrite.
    /// 3. **Structural** — same, for prefixes only the structural
    ///    profile index could bridge (mangled copies).
    /// 4. **Miss** — the plain tier-1 verdict (typically first-party:
    ///    `Unknown`, off both lists).
    pub fn library_verdict_tiered(&self, origin_library: &str) -> (LibraryVerdict, DetectTier) {
        if let Some(entry) = self.library_verdicts.read().get(origin_library) {
            return *entry;
        }
        let base = (
            self.aggregated.predict_category(origin_library),
            self.lists.is_ant(origin_library),
            self.lists.is_common(origin_library),
        );
        let entry = if base.0 != LibCategory::Unknown {
            (base, DetectTier::Trie)
        } else if let Some(canonical) = self.exact_aliases.resolve(origin_library) {
            (
                self.canonical_verdict(&canonical),
                DetectTier::ExactFingerprint,
            )
        } else if let Some(canonical) = self.structural_aliases.resolve(origin_library) {
            (self.canonical_verdict(&canonical), DetectTier::Structural)
        } else {
            (base, DetectTier::Miss)
        };
        self.library_verdicts
            .write()
            .insert(origin_library.to_owned(), entry);
        entry
    }

    /// Verdict for an alias-rewritten canonical origin (not memoized:
    /// the obfuscated origin's cache entry covers the repeat traffic).
    fn canonical_verdict(&self, canonical: &str) -> LibraryVerdict {
        (
            self.aggregated.predict_category(canonical),
            self.lists.is_ant(canonical),
            self.lists.is_common(canonical),
        )
    }

    /// Linear-scan twin of [`Knowledge::library_verdict_tiered`] for the
    /// oracle pipeline: same cascade, oracle prefix prediction and alias
    /// resolution, no memoization.
    pub fn library_verdict_tiered_oracle(
        &self,
        origin_library: &str,
    ) -> (LibraryVerdict, DetectTier) {
        let base = (
            self.aggregated.predict_category_oracle(origin_library),
            self.lists.is_ant(origin_library),
            self.lists.is_common(origin_library),
        );
        if base.0 != LibCategory::Unknown {
            (base, DetectTier::Trie)
        } else if let Some(canonical) = self.exact_aliases.resolve_oracle(origin_library) {
            (
                (
                    self.aggregated.predict_category_oracle(&canonical),
                    self.lists.is_ant(&canonical),
                    self.lists.is_common(&canonical),
                ),
                DetectTier::ExactFingerprint,
            )
        } else if let Some(canonical) = self.structural_aliases.resolve_oracle(origin_library) {
            (
                (
                    self.aggregated.predict_category_oracle(&canonical),
                    self.lists.is_ant(&canonical),
                    self.lists.is_common(&canonical),
                ),
                DetectTier::Structural,
            )
        } else {
            (base, DetectTier::Miss)
        }
    }

    /// Number of distinct origin-libraries currently memoized.
    pub fn cached_verdicts(&self) -> usize {
        self.library_verdicts.read().len()
    }
}

// The corpus dependency is dev-facing: Knowledge::from_corpus is the
// bridge used by experiments, examples, and benches.

#[cfg(test)]
mod tests {
    use super::*;
    use spector_corpus::{Corpus, CorpusConfig};

    fn knowledge() -> (Knowledge, Corpus) {
        let corpus = Corpus::generate(&CorpusConfig {
            apps: 12,
            seed: 3,
            ..Default::default()
        });
        (Knowledge::from_corpus(&corpus), corpus)
    }

    #[test]
    fn corpus_scan_aggregates_libraries() {
        let (knowledge, corpus) = knowledge();
        assert!(!knowledge.aggregated.is_empty());
        // Every library origin package in the ground truth must resolve
        // to its true category via longest-prefix + majority vote,
        // because the enclosing library was detected in the same scan.
        let mut checked = 0;
        for app in &corpus.apps {
            for truth in &app.truth {
                if truth.lib_category == LibCategory::Unknown {
                    continue;
                }
                let origin = truth.expected_origin.as_deref().unwrap();
                assert_eq!(
                    knowledge.library_category(origin),
                    truth.lib_category,
                    "origin {origin}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn first_party_packages_are_unknown() {
        let (knowledge, _) = knowledge();
        assert_eq!(
            knowledge.library_category("com.dev7.app3.net"),
            LibCategory::Unknown
        );
    }

    #[test]
    fn domain_categories_recovered_from_labels() {
        let (knowledge, corpus) = knowledge();
        let mut correct = 0usize;
        let mut total = 0usize;
        for domain in corpus.domains.domains() {
            if domain.true_category == DomainCategory::Unknown {
                assert_eq!(
                    knowledge.domain_category(&domain.name),
                    DomainCategory::Unknown
                );
                continue;
            }
            total += 1;
            if knowledge.domain_category(&domain.name) == domain.true_category {
                correct += 1;
            }
        }
        assert!(total > 0);
        assert!(correct * 100 / total >= 55, "{correct}/{total}");
    }

    #[test]
    fn precomputed_table_matches_tokenizer() {
        let (knowledge, corpus) = knowledge();
        // The memoized table must agree with classifying the raw labels
        // directly — the pre-memoization behavior.
        for domain in corpus.domains.domains() {
            assert_eq!(
                knowledge.domain_category(&domain.name),
                knowledge.tokenizer.classify(&domain.vendor_labels),
                "{}",
                domain.name
            );
        }
    }

    #[test]
    fn unseen_domain_is_unknown() {
        let (knowledge, _) = knowledge();
        assert_eq!(
            knowledge.domain_category("never.observed.example"),
            DomainCategory::Unknown
        );
    }

    #[test]
    fn library_verdict_is_memoized_and_consistent() {
        let (knowledge, corpus) = knowledge();
        assert_eq!(knowledge.cached_verdicts(), 0);
        let mut checked = 0;
        for app in &corpus.apps {
            for truth in &app.truth {
                let Some(origin) = truth.expected_origin.as_deref() else {
                    continue;
                };
                let first = knowledge.library_verdict(origin);
                let second = knowledge.library_verdict(origin);
                assert_eq!(first, second);
                assert_eq!(
                    first,
                    (
                        knowledge.aggregated.predict_category(origin),
                        knowledge.lists.is_ant(origin),
                        knowledge.lists.is_common(origin),
                    ),
                    "origin {origin}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
        let cached = knowledge.cached_verdicts();
        assert!(cached > 0);
        // A clone starts from the same cache contents.
        let cloned = knowledge.clone();
        assert_eq!(cloned.cached_verdicts(), cached);
    }
}
