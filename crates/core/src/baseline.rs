//! The network-only baseline classifier (§IV-B, §IV-E "Measurement").
//!
//! Prior work (Xu et al., Maier et al., Tongaonkar et al.) classifies
//! app traffic from network-visible information alone: hostnames,
//! HTTP headers, domain categories. The paper's central measurement
//! argument is that this misattributes traffic whenever a flow's
//! destination category differs from its originating library's category
//! — most prominently, advertisement libraries fetching creatives from
//! CDNs: "a purely DNS based approach would misclassify all CDN-bound
//! traffic from known origin-libraries (19.3 % of the total traffic)".
//!
//! [`compare`] implements that baseline over analyzed flows and
//! quantifies its disagreement with context-aware attribution.

use serde::{Deserialize, Serialize};
use spector_libradar::LibCategory;
use spector_vtcat::DomainCategory;

use crate::pipeline::{AnalyzedFlow, AppAnalysis};

/// What a DNS-only classifier would conclude a flow is, from its
/// destination domain category alone.
pub fn dns_only_class(domain_category: DomainCategory) -> Option<LibCategory> {
    // Domain categories with a natural library-category reading — the
    // correspondence name-based systems implicitly assume.
    match domain_category {
        DomainCategory::Advertisements => Some(LibCategory::Advertisement),
        DomainCategory::Analytics => Some(LibCategory::MobileAnalytics),
        DomainCategory::Games => Some(LibCategory::GameEngine),
        DomainCategory::SocialNetworks => Some(LibCategory::SocialNetwork),
        _ => None,
    }
}

/// Outcome of comparing the baseline with context-aware attribution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BaselineComparison {
    /// Total wire bytes compared.
    pub total_bytes: u64,
    /// Bytes where both classifiers name the same library category.
    pub agree_bytes: u64,
    /// Bytes where the baseline names a *different* category than the
    /// context-aware attribution.
    pub conflict_bytes: u64,
    /// Bytes the baseline cannot classify at all (no library reading
    /// for the destination category) although the origin-library is
    /// known — the CDN problem.
    pub invisible_bytes: u64,
    /// The paper's 19.3 % statistic: bytes from *known-category*
    /// origin-libraries that terminate at CDN domains.
    pub known_origin_cdn_bytes: u64,
    /// Bytes from advertisement libraries that a DNS-only classifier
    /// labels as something other than advertising.
    pub ad_bytes_missed: u64,
    /// Total bytes attributed to advertisement libraries.
    pub ad_bytes_total: u64,
}

impl BaselineComparison {
    /// Fraction of bytes the baseline gets wrong or cannot see
    /// (conflicts + invisible, over total).
    pub fn misclassified_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            (self.conflict_bytes + self.invisible_bytes) as f64 / self.total_bytes as f64
        }
    }

    /// Fraction of all bytes that are known-origin traffic to CDNs.
    pub fn known_origin_cdn_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.known_origin_cdn_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Fraction of advertisement-library bytes invisible to the
    /// baseline.
    pub fn ad_miss_fraction(&self) -> f64 {
        if self.ad_bytes_total == 0 {
            0.0
        } else {
            self.ad_bytes_missed as f64 / self.ad_bytes_total as f64
        }
    }
}

fn account(comparison: &mut BaselineComparison, flow: &AnalyzedFlow) {
    let bytes = flow.total_bytes();
    comparison.total_bytes += bytes;
    let context = flow.lib_category;
    let baseline = dns_only_class(flow.domain_category);

    if context == LibCategory::Advertisement {
        comparison.ad_bytes_total += bytes;
        if baseline != Some(LibCategory::Advertisement) {
            comparison.ad_bytes_missed += bytes;
        }
    }
    if context != LibCategory::Unknown && flow.domain_category == DomainCategory::Cdn {
        comparison.known_origin_cdn_bytes += bytes;
    }
    match baseline {
        Some(b) if b == context => comparison.agree_bytes += bytes,
        Some(_) => comparison.conflict_bytes += bytes,
        None => {
            if context != LibCategory::Unknown {
                comparison.invisible_bytes += bytes;
            }
        }
    }
}

/// Compares the DNS-only baseline against context-aware attribution
/// over a whole campaign.
pub fn compare(analyses: &[AppAnalysis]) -> BaselineComparison {
    let mut comparison = BaselineComparison::default();
    for analysis in analyses {
        for flow in &analysis.flows {
            account(&mut comparison, flow);
        }
    }
    comparison
}

/// What a `User-Agent`-based classifier (Xu et al., Maier et al.) can
/// see of one flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UaSignal {
    /// The UA carries an SDK package identifier beyond the client token.
    SdkTag(String),
    /// Only a generic HTTP-client token (`okhttp/…`, `Apache-HttpClient/…`).
    GenericClient(String),
    /// No parseable HTTP request on the flow (raw sockets, TLS, …).
    NonHttp,
}

/// Extracts the UA-visible signal from a flow.
pub fn ua_signal(flow: &AnalyzedFlow) -> UaSignal {
    let Some(user_agent) = flow.http_user_agent.as_deref() else {
        return UaSignal::NonHttp;
    };
    let mut tokens = user_agent.split_whitespace();
    let client = tokens.next().unwrap_or("").to_owned();
    // An SDK tag is a dotted package-like token (≥2 dots, no slash).
    for token in tokens {
        if token.matches('.').count() >= 2 && !token.contains('/') {
            return UaSignal::SdkTag(token.to_owned());
        }
    }
    if client.is_empty() {
        UaSignal::NonHttp
    } else {
        UaSignal::GenericClient(client)
    }
}

/// Outcome of comparing UA-based classification with context-aware
/// attribution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UaComparison {
    /// Flows examined.
    pub flows: usize,
    /// Flows whose UA carried an SDK identifier.
    pub tagged_flows: usize,
    /// Tagged flows whose identifier agrees with the context-aware
    /// origin (same package or same 2-level family).
    pub tagged_matching_context: usize,
    /// Flows with only a generic client token — unattributable by UA.
    pub generic_flows: usize,
    /// Flows with no HTTP head at all.
    pub non_http_flows: usize,
    /// Bytes attributable via UA tags.
    pub tagged_bytes: u64,
    /// Total bytes.
    pub total_bytes: u64,
}

impl UaComparison {
    /// Fraction of bytes a UA-based classifier can attribute at all.
    pub fn attributable_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.tagged_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Runs the UA baseline over a campaign.
pub fn compare_user_agent(analyses: &[AppAnalysis]) -> UaComparison {
    let mut comparison = UaComparison::default();
    for analysis in analyses {
        for flow in &analysis.flows {
            comparison.flows += 1;
            comparison.total_bytes += flow.total_bytes();
            match ua_signal(flow) {
                UaSignal::SdkTag(tag) => {
                    comparison.tagged_flows += 1;
                    comparison.tagged_bytes += flow.total_bytes();
                    let matches_context = match &flow.origin {
                        crate::OriginKind::Library {
                            origin_library,
                            two_level,
                        } => {
                            &tag == origin_library
                                || tag.starts_with(&format!("{origin_library}."))
                                || origin_library.starts_with(&format!("{tag}."))
                                || spector_dex::sig::prefix_levels(&tag, 2) == *two_level
                        }
                        crate::OriginKind::Builtin => false,
                    };
                    if matches_context {
                        comparison.tagged_matching_context += 1;
                    }
                }
                UaSignal::GenericClient(_) => comparison.generic_flows += 1,
                UaSignal::NonHttp => comparison.non_http_flows += 1,
            }
        }
    }
    comparison
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CoverageReport;
    use crate::OriginKind;

    fn flow(lib: LibCategory, domain_category: DomainCategory, bytes: u64) -> AnalyzedFlow {
        AnalyzedFlow {
            domain: Some("d.example".into()),
            domain_category,
            origin: OriginKind::Library {
                origin_library: "com.x".into(),
                two_level: "com.x".into(),
            },
            lib_category: lib,
            is_ant: lib == LibCategory::Advertisement,
            is_common: false,
            sent_bytes: 0,
            recv_bytes: bytes,
            sent_payload: 0,
            recv_payload: bytes,
            start_micros: 0,
            http_user_agent: None,
            family: Default::default(),
            shape: Default::default(),
            stream: None,
        }
    }

    fn app(flows: Vec<AnalyzedFlow>) -> AppAnalysis {
        AppAnalysis {
            package: "com.a".into(),
            app_category: "TOOLS".into(),
            flows,
            unattributed_flows: 0,
            reports_without_flow: 0,
            coverage: CoverageReport {
                total_methods: 1,
                executed_methods: 1,
                external_methods: 0,
            },
            dns_packets: 0,
            report_packets: 0,
            integrity: Default::default(),
            detect: Default::default(),
            sampling: Default::default(),
        }
    }

    #[test]
    fn agreement_conflict_and_invisibility() {
        let analyses = vec![app(vec![
            // Agree: ad lib -> ad domain.
            flow(
                LibCategory::Advertisement,
                DomainCategory::Advertisements,
                400,
            ),
            // Invisible: ad lib -> CDN (the paper's core case).
            flow(LibCategory::Advertisement, DomainCategory::Cdn, 300),
            // Conflict: analytics lib -> ad domain.
            flow(
                LibCategory::MobileAnalytics,
                DomainCategory::Advertisements,
                200,
            ),
            // First-party -> business domain: baseline can't see it but
            // there is no known origin either (not counted as a miss).
            flow(
                LibCategory::Unknown,
                DomainCategory::BusinessAndFinance,
                100,
            ),
        ])];
        let comparison = compare(&analyses);
        assert_eq!(comparison.total_bytes, 1_000);
        assert_eq!(comparison.agree_bytes, 400);
        assert_eq!(comparison.conflict_bytes, 200);
        assert_eq!(comparison.invisible_bytes, 300);
        assert_eq!(comparison.known_origin_cdn_bytes, 300);
        assert!((comparison.misclassified_fraction() - 0.5).abs() < 1e-12);
        assert!((comparison.known_origin_cdn_fraction() - 0.3).abs() < 1e-12);
        // 300 of 700 ad bytes invisible to the baseline.
        assert!((comparison.ad_miss_fraction() - 300.0 / 700.0).abs() < 1e-12);
    }

    #[test]
    fn dns_only_mapping_is_partial() {
        assert_eq!(
            dns_only_class(DomainCategory::Advertisements),
            Some(LibCategory::Advertisement)
        );
        assert_eq!(dns_only_class(DomainCategory::Cdn), None);
        assert_eq!(dns_only_class(DomainCategory::BusinessAndFinance), None);
    }

    #[test]
    fn empty_is_zero() {
        let comparison = compare(&[]);
        assert_eq!(comparison.misclassified_fraction(), 0.0);
        assert_eq!(comparison.known_origin_cdn_fraction(), 0.0);
        assert_eq!(comparison.ad_miss_fraction(), 0.0);
        let ua = compare_user_agent(&[]);
        assert_eq!(ua.attributable_fraction(), 0.0);
    }

    #[test]
    fn ua_signal_classification() {
        let mut f = flow(
            LibCategory::Advertisement,
            DomainCategory::Advertisements,
            100,
        );
        f.http_user_agent = Some("okhttp/3.12.1 com.vungle.publisher".into());
        assert_eq!(
            ua_signal(&f),
            UaSignal::SdkTag("com.vungle.publisher".into())
        );
        f.http_user_agent = Some("okhttp/3.12.1".into());
        assert_eq!(
            ua_signal(&f),
            UaSignal::GenericClient("okhttp/3.12.1".into())
        );
        f.http_user_agent = None;
        assert_eq!(ua_signal(&f), UaSignal::NonHttp);
        f.http_user_agent = Some(String::new());
        assert_eq!(ua_signal(&f), UaSignal::NonHttp);
    }

    #[test]
    fn ua_comparison_counts_and_matching() {
        let mk = |ua: Option<&str>, origin: &str| {
            let mut f = flow(
                LibCategory::Advertisement,
                DomainCategory::Advertisements,
                100,
            );
            f.http_user_agent = ua.map(str::to_owned);
            f.origin = crate::OriginKind::Library {
                origin_library: origin.to_owned(),
                two_level: spector_dex::sig::prefix_levels(origin, 2),
            };
            f
        };
        let analyses = vec![app(vec![
            // Tagged and matching (same family).
            mk(
                Some("okhttp/3.12.1 com.vungle.publisher"),
                "com.vungle.publisher.cache",
            ),
            // Tagged but disagreeing with the stack-based origin (the
            // sync-call case where UA carries the callee).
            mk(Some("okhttp/3.12.1 com.adnet.sdk"), "com.myapp"),
            // Generic: UA-invisible.
            mk(Some("okhttp/3.12.1"), "com.vungle.publisher.cache"),
            // Raw socket.
            mk(None, "com.vungle.publisher.cache"),
        ])];
        let ua = compare_user_agent(&analyses);
        assert_eq!(ua.flows, 4);
        assert_eq!(ua.tagged_flows, 2);
        assert_eq!(ua.tagged_matching_context, 1);
        assert_eq!(ua.generic_flows, 1);
        assert_eq!(ua.non_http_flows, 1);
        assert!((ua.attributable_fraction() - 0.5).abs() < 1e-12);
    }
}
