//! The per-app experiment driver (§II-B3).
//!
//! One experiment = one fresh emulator + one app: install the apk,
//! attach the Socket Supervisor, run the app's process-level init, let
//! the platform generate its own background traffic, exercise the UI
//! with the monkey (1,000 events @ 500 ms by default), and hand back
//! everything the offline pipeline consumes — the packet capture (with
//! supervisor reports and DNS exchanges embedded in it), the unique-
//! method trace, and the dex's full signature set.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::net::Ipv4Addr;

use spector_dex::apk::{Apk, ApkError};
use spector_dex::model::{Dispatcher, NetworkOp, SigIndex};
use spector_dex::sha256::Digest;
use spector_dex::sig::MethodSig;
use spector_hooks::supervisor::{SocketSupervisor, SupervisorConfig};
use spector_monkey::monkey::{Monkey, MonkeyConfig, MonkeyReport};
use spector_monkey::ui::UiModel;
use spector_netsim::clock::Clock;
use spector_netsim::pcap::CapturedPacket;
use spector_netsim::stack::NetStack;
use spector_runtime::{Runtime, RuntimeConfig, RuntimeStats};

/// Experiment settings. Defaults mirror the paper's setup.
#[derive(Debug, Clone, Default)]
pub struct ExperimentConfig {
    /// Monkey settings (1,000 events, 500 ms throttle).
    pub monkey: MonkeyConfig,
    /// Runtime bounds and trace mode.
    pub runtime: RuntimeConfig,
    /// Socket Supervisor settings (collector endpoint, hook latency).
    pub supervisor: SupervisorConfig,
}

/// Everything recorded during one app run.
#[derive(Debug, Clone)]
pub struct RawRun {
    /// App package name.
    pub package: String,
    /// Play-store category from the manifest.
    pub app_category: String,
    /// SHA-256 of the apk.
    pub apk_sha256: Digest,
    /// The emulator's full packet capture.
    pub capture: Vec<CapturedPacket>,
    /// Unique methods recorded by the Method Monitor.
    pub executed_methods: HashSet<MethodSig>,
    /// All method signatures defined in the apk's dex.
    pub dex_signatures: HashSet<MethodSig>,
    /// Monkey run report.
    pub monkey: MonkeyReport,
    /// Interpreter counters.
    pub runtime_stats: RuntimeStats,
    /// Virtual duration of the experiment, microseconds.
    pub duration_micros: u64,
}

/// Errors surfaced while setting up a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The apk could not be read.
    Apk(ApkError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Apk(e) => write!(f, "experiment setup: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<ApkError> for ExperimentError {
    fn from(e: ApkError) -> Self {
        ExperimentError::Apk(e)
    }
}

/// Builds the domain→address resolver map from a corpus universe.
pub fn resolver_for(universe: &spector_corpus::DomainUniverse) -> HashMap<String, Ipv4Addr> {
    universe
        .domains()
        .iter()
        .map(|d| (d.name.clone(), d.ip))
        .collect()
}

/// Runs one app end-to-end in a fresh emulator.
///
/// `resolver` supplies authoritative addresses for the domains the app
/// may contact; `system_ops` is the platform-initiated traffic replayed
/// alongside the app (no app code on those stacks).
///
/// # Errors
///
/// Returns [`ExperimentError::Apk`] when the apk's manifest or dex is
/// malformed.
pub fn run_app(
    apk: &Apk,
    resolver: &HashMap<String, Ipv4Addr>,
    system_ops: &[(NetworkOp, Dispatcher)],
    config: &ExperimentConfig,
) -> Result<RawRun, ExperimentError> {
    run_app_with_hooks(apk, resolver, system_ops, config, Vec::new())
}

/// [`run_app`] with additional hook modules attached after the Socket
/// Supervisor — e.g. an online [`crate::policy::OnlineEnforcer`].
///
/// # Errors
///
/// Same as [`run_app`].
pub fn run_app_with_hooks(
    apk: &Apk,
    resolver: &HashMap<String, Ipv4Addr>,
    system_ops: &[(NetworkOp, Dispatcher)],
    config: &ExperimentConfig,
    extra_hooks: Vec<Box<dyn spector_runtime::RuntimeHook>>,
) -> Result<RawRun, ExperimentError> {
    let manifest = apk.manifest()?;
    let dex = apk.dex()?;
    let dex_signatures: HashSet<MethodSig> = dex.signatures().cloned().collect();
    let index = SigIndex::build(&dex);
    let apk_sha256 = apk.sha256();

    // Fresh emulator: clock at zero, stock Android-emulator addressing.
    let clock = Clock::new();
    let net = NetStack::new(clock.clone(), Ipv4Addr::new(10, 0, 2, 15));
    let mut runtime = Runtime::new(dex, net, config.runtime.clone());
    // Register only the domains this run can actually name: the dex's
    // network operands plus the system ops.
    for (op, _) in system_ops {
        if let Some(ip) = resolver.get(&op.domain) {
            runtime.register_domain(&op.domain, *ip);
        }
    }
    for (domain, ip) in collect_app_domains(&runtime, resolver) {
        runtime.register_domain(&domain, ip);
    }
    runtime.add_hook(Box::new(SocketSupervisor::new(
        apk_sha256,
        index,
        config.supervisor.clone(),
    )));
    for hook in extra_hooks {
        runtime.add_hook(hook);
    }

    // 1. Process start: Application.onCreate (SDK init, bulk fetches).
    for sig in &manifest.application_on_create {
        runtime.invoke_entry(sig);
    }
    // 2. Platform background traffic.
    for (op, dispatcher) in system_ops {
        runtime.perform_system_network(op, *dispatcher);
    }
    // 3. Monkey exercises the UI.
    let ui = UiModel::from_manifest(&manifest);
    let mut monkey = Monkey::new(config.monkey.clone());
    let monkey_report = monkey.run(&mut runtime, &ui);

    // 4. End of run: hooks flush out-of-band state (the supervisor's
    // sampling ledger; a no-op on the exact path).
    runtime.finish_hooks();

    let runtime_stats = runtime.stats();
    let duration_micros = runtime.net().clock().now_micros();
    let (net, profiler) = runtime.into_parts();

    Ok(RawRun {
        package: manifest.package,
        app_category: manifest.category,
        apk_sha256,
        capture: net.into_capture(),
        executed_methods: profiler.unique_methods(),
        dex_signatures,
        monkey: monkey_report,
        runtime_stats,
        duration_micros,
    })
}

/// Domains referenced by the already-loaded runtime's dex that resolve
/// in the global map (helper to keep `run_app` readable).
fn collect_app_domains(
    runtime: &Runtime,
    resolver: &HashMap<String, Ipv4Addr>,
) -> Vec<(String, Ipv4Addr)> {
    let mut out = Vec::new();
    for method in &runtime.dex().methods {
        for op in method.code.network_ops() {
            if let Some(ip) = resolver.get(&op.domain) {
                out.push((op.domain.clone(), *ip));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};

    fn quick_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::default();
        config.monkey.events = 60;
        config.monkey.throttle_ms = 500;
        config
    }

    fn one_app_corpus(seed: u64) -> Corpus {
        Corpus::generate(&CorpusConfig {
            apps: 1,
            seed,
            appgen: AppGenConfig {
                method_scale: 0.01,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn run_produces_capture_trace_and_coverage_inputs() {
        let corpus = one_app_corpus(5);
        let app = &corpus.apps[0];
        let resolver = resolver_for(&corpus.domains);
        let system: Vec<_> = app
            .system_ops
            .iter()
            .map(|s| (s.op.clone(), s.dispatcher))
            .collect();
        let raw = run_app(&app.apk, &resolver, &system, &quick_config()).unwrap();
        assert_eq!(raw.package, app.package);
        assert_eq!(raw.apk_sha256, app.apk.sha256());
        assert!(!raw.capture.is_empty(), "capture must contain packets");
        assert!(!raw.executed_methods.is_empty());
        assert!(raw.dex_signatures.len() >= raw.executed_methods.len() / 2);
        assert_eq!(raw.monkey.events_issued, 60);
        assert!(raw.duration_micros >= 30_000_000); // ≥ events × throttle
    }

    #[test]
    fn deterministic_runs() {
        let corpus = one_app_corpus(6);
        let app = &corpus.apps[0];
        let resolver = resolver_for(&corpus.domains);
        let run = || run_app(&app.apk, &resolver, &[], &quick_config()).unwrap();
        let a = run();
        let b = run();
        assert_eq!(a.capture.len(), b.capture.len());
        assert_eq!(a.executed_methods, b.executed_methods);
        for (x, y) in a.capture.iter().zip(&b.capture) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn system_ops_generate_traffic_without_app_code() {
        let corpus = one_app_corpus(7);
        let app = &corpus.apps[0];
        let resolver = resolver_for(&corpus.domains);
        let mut config = quick_config();
        config.monkey.events = 0;
        let without = run_app(&app.apk, &resolver, &[], &config).unwrap();
        let system: Vec<_> = app
            .system_ops
            .iter()
            .map(|s| (s.op.clone(), s.dispatcher))
            .collect();
        let with = run_app(&app.apk, &resolver, &system, &config).unwrap();
        if !system.is_empty() {
            assert!(with.capture.len() > without.capture.len());
        }
    }

    #[test]
    fn malformed_apk_is_rejected() {
        let apk = Apk::from_bytes(&{
            let manifest = spector_dex::Manifest {
                package: "x".into(),
                version_code: 1,
                category: "TOOLS".into(),
                dex_timestamp: 1,
                vt_scan_date: None,
                application_on_create: vec![],
                activities: vec![],
            };
            let apk = Apk::build(&manifest, &spector_dex::DexFile::new(), vec![]);
            apk.to_bytes()
        })
        .unwrap();
        // Corrupt the dex entry by rebuilding an apk with garbage dex.
        let entries = vec![
            apk.entries()[0].clone(),
            spector_dex::ApkEntry {
                name: "classes.dex".into(),
                data: bytes::Bytes::from_static(b"garbage"),
            },
        ];
        let broken = rebuild(entries);
        let err = run_app(&broken, &HashMap::new(), &[], &quick_config()).unwrap_err();
        assert!(matches!(err, ExperimentError::Apk(_)));
    }

    fn rebuild(entries: Vec<spector_dex::ApkEntry>) -> Apk {
        // Serialize a synthetic container around arbitrary entries.
        use bytes::{BufMut, BytesMut};
        let mut buf = BytesMut::new();
        buf.put_slice(spector_dex::apk::APK_MAGIC);
        buf.put_u32_le(entries.len() as u32);
        for e in &entries {
            buf.put_u32_le(e.name.len() as u32);
            buf.put_slice(e.name.as_bytes());
            buf.put_u32_le(e.data.len() as u32);
            buf.put_slice(&e.data);
        }
        Apk::from_bytes(&buf).unwrap()
    }
}
