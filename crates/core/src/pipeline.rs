//! The offline analysis pipeline (§III-C/E/F).
//!
//! Input: one [`RawRun`] (capture + trace) plus corpus [`Knowledge`].
//! Steps:
//!
//! 1. reassemble TCP stream epochs from the capture and recover the
//!    IP→domain map from its DNS responses;
//! 2. extract the Socket Supervisor's UDP reports (and thereby exclude
//!    instrumentation traffic from accounting — only TCP is summed, and
//!    reports travel over UDP);
//! 3. join every report with its stream epoch via the connection
//!    4-tuple, picking the epoch active at report time, so sequential
//!    port reuse is counted separately;
//! 4. attribute each flow to its origin-library (builtin filter +
//!    chronologically-first heuristic), reduce to 2-level libraries,
//!    and predict library categories via the LibRadar aggregate;
//! 5. categorize destination domains by tokenizing their vendor labels;
//! 6. compute method coverage.

use std::collections::{BTreeMap, HashSet};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};
use spector_hooks::supervisor::decode_reports_classified;
use spector_hooks::{LedgerRecord, ReportErrorKind, SocketReport};
use spector_libradar::{DetectTier, LibCategory};
use spector_netsim::flows::{DnsMap, FlowTable};
use spector_netsim::shape::{classify_shape, resolve_flow_domain, FlowShape, IpFamily};
use spector_netsim::CaptureIndex;
use spector_sampling::SamplingLedger;
use spector_telemetry::{Counter, Histogram, StageRecorder, Telemetry, SIZE_BOUNDS_BYTES};
use spector_vtcat::DomainCategory;

use crate::attribution::{attribute, Attribution, OriginKind};
use crate::coverage::{compute_coverage, CoverageReport};
use crate::experiment::RawRun;
use crate::knowledge::{Knowledge, LibraryVerdict};

/// One fully-analyzed TCP flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzedFlow {
    /// Destination domain, when a DNS response for the address was
    /// observed in the capture.
    pub domain: Option<String>,
    /// Generic category of the destination domain.
    pub domain_category: DomainCategory,
    /// Attribution result.
    pub origin: OriginKind,
    /// Predicted category of the origin-library.
    pub lib_category: LibCategory,
    /// Origin is on the AnT list.
    pub is_ant: bool,
    /// Origin is on the common-libraries list.
    pub is_common: bool,
    /// Wire bytes sent by the app (initiator → responder).
    pub sent_bytes: u64,
    /// Wire bytes received by the app.
    pub recv_bytes: u64,
    /// Payload-only bytes sent.
    pub sent_payload: u64,
    /// Payload-only bytes received.
    pub recv_payload: u64,
    /// Flow start, microseconds.
    pub start_micros: u64,
    /// `User-Agent` of the HTTP request head, when the flow carried
    /// parseable HTTP (what header-based classifiers inspect).
    #[serde(default)]
    pub http_user_agent: Option<String>,
    /// Address family of the flow's canonical 4-tuple (v4-mapped
    /// endpoints fold to [`IpFamily::V4`]).
    #[serde(default)]
    pub family: IpFamily,
    /// Visible wire shape classified from the flow's leading payload:
    /// plain, TLS-like (SNI hello), or CONNECT-proxied.
    #[serde(default)]
    pub shape: FlowShape,
    /// Stream ordinal within a reused (keep-alive) connection when
    /// this row is a per-stream split; `None` for whole-connection
    /// rows, which is every flow of a legacy single-stream run.
    #[serde(default)]
    pub stream: Option<u32>,
}

impl AnalyzedFlow {
    /// Total wire bytes.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes + self.recv_bytes
    }
}

/// Degraded-mode accounting for one analyzed run: how much of the
/// measurement substrate was lost, corrupted, or reconstructed from
/// partial evidence. The pipeline has always *tolerated* noisy input
/// (undecodable frames and payloads are skipped); these counters make
/// the tolerance measurable, so a headline number can carry an
/// integrity annotation instead of silently absorbing missing data.
///
/// All counters are zero for a clean capture, which is what every
/// fault-free run produces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunIntegrity {
    /// Capture frames dropped as truncated (packet loss, snap length).
    pub frames_truncated: usize,
    /// Capture frames dropped as structurally malformed.
    pub frames_malformed: usize,
    /// Capture frames dropped on IPv4/TCP checksum mismatch.
    pub frames_bad_checksum: usize,
    /// Collector-port datagrams whose report payload was truncated.
    pub reports_truncated: usize,
    /// Collector-port datagrams whose report payload was malformed.
    pub reports_malformed: usize,
    /// Stream epochs reassembled without a SYN (capture started or
    /// died mid-connection): flows attributed from partial evidence.
    pub synthesized_flows: usize,
}

impl RunIntegrity {
    /// `true` when any measurement input was lost, corrupted, or
    /// reconstructed from partial evidence.
    pub fn is_degraded(&self) -> bool {
        *self != RunIntegrity::default()
    }

    /// Total capture frames that failed to decode.
    pub fn frames_lost(&self) -> usize {
        self.frames_truncated + self.frames_malformed + self.frames_bad_checksum
    }

    /// Total report payloads that failed to decode.
    pub fn reports_lost(&self) -> usize {
        self.reports_truncated + self.reports_malformed
    }

    /// Field-wise sum, for campaign-level aggregation.
    pub fn merge(&mut self, other: &RunIntegrity) {
        self.frames_truncated += other.frames_truncated;
        self.frames_malformed += other.frames_malformed;
        self.frames_bad_checksum += other.frames_bad_checksum;
        self.reports_truncated += other.reports_truncated;
        self.reports_malformed += other.reports_malformed;
        self.synthesized_flows += other.synthesized_flows;
    }
}

/// Which detection tier attributed each origin-library of a run, plus
/// the tier totals (§III-C cascade: trie prefix → exact fingerprint →
/// structural profile). One lookup is counted per attributed
/// library-origin flow; builtin flows never consult the cascade.
///
/// Invariant (asserted by the telemetry-integrity wall):
/// `lookups == trie_hits + exact_fp_hits + structural_hits + misses`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DetectStats {
    /// Library-origin verdict lookups performed by the join.
    pub lookups: u64,
    /// Lookups answered by the longest-prefix trie tier.
    pub trie_hits: u64,
    /// Lookups answered by the exact subtree-fingerprint tier.
    pub exact_fp_hits: u64,
    /// Lookups answered by the structural-profile tier.
    pub structural_hits: u64,
    /// Lookups no tier could attribute.
    pub misses: u64,
    /// Tier that attributed each distinct origin-library package.
    pub per_library_tier: BTreeMap<String, DetectTier>,
}

impl DetectStats {
    /// Records one verdict lookup resolved at `tier` for `origin`.
    pub fn record(&mut self, origin: &str, tier: DetectTier) {
        self.lookups += 1;
        match tier {
            DetectTier::Trie => self.trie_hits += 1,
            DetectTier::ExactFingerprint => self.exact_fp_hits += 1,
            DetectTier::Structural => self.structural_hits += 1,
            DetectTier::Miss => self.misses += 1,
        }
        self.per_library_tier
            .entry(origin.to_owned())
            .or_insert(tier);
    }

    /// Sum of the per-tier counters (must equal `lookups`).
    pub fn tier_sum(&self) -> u64 {
        self.trie_hits + self.exact_fp_hits + self.structural_hits + self.misses
    }

    /// Field-wise sum, for campaign-level aggregation; per-library
    /// tiers keep the first tier seen (tiers are deterministic per
    /// knowledge base, so collisions agree).
    pub fn merge(&mut self, other: &DetectStats) {
        self.lookups += other.lookups;
        self.trie_hits += other.trie_hits;
        self.exact_fp_hits += other.exact_fp_hits;
        self.structural_hits += other.structural_hits;
        self.misses += other.misses;
        for (origin, tier) in &other.per_library_tier {
            self.per_library_tier.entry(origin.clone()).or_insert(*tier);
        }
    }
}

/// Per-app analysis output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppAnalysis {
    /// App package name.
    pub package: String,
    /// Play-store category.
    pub app_category: String,
    /// One entry per attributed TCP stream epoch.
    pub flows: Vec<AnalyzedFlow>,
    /// TCP stream epochs with no matching supervisor report.
    pub unattributed_flows: usize,
    /// Supervisor reports whose 4-tuple joined no TCP stream epoch
    /// (e.g. the connection's packets were lost from the capture).
    #[serde(default)]
    pub reports_without_flow: usize,
    /// Method coverage.
    pub coverage: CoverageReport,
    /// DNS datagrams observed (excluded from accounting, like all UDP).
    pub dns_packets: usize,
    /// Supervisor report datagrams observed (instrumentation traffic).
    pub report_packets: usize,
    /// Degraded-mode accounting: what this run's capture lost.
    #[serde(default)]
    pub integrity: RunIntegrity,
    /// Detection-cascade accounting: which tier attributed each
    /// origin-library.
    #[serde(default)]
    pub detect: DetectStats,
    /// Sampled-tracing accounting: reports the hook observed, emitted,
    /// and suppressed (all-zero on an exact run, which emits no
    /// ledger).
    #[serde(default)]
    pub sampling: SamplingLedger,
}

/// Display label for platform-created sockets ([`OriginKind::Builtin`])
/// in per-library breakdowns — Figure 3's `*` bucket.
pub const BUILTIN_ORIGIN_LABEL: &str = "(builtin)";

/// Stable per-library accounting label of an attribution origin: the
/// origin-library package, or [`BUILTIN_ORIGIN_LABEL`]. Both the
/// offline reducers and the streaming engine key their per-library
/// counters by this label, which is what makes their breakdowns
/// directly comparable.
pub fn origin_label(origin: &OriginKind) -> &str {
    match origin {
        OriginKind::Library { origin_library, .. } => origin_library,
        OriginKind::Builtin => BUILTIN_ORIGIN_LABEL,
    }
}

impl AppAnalysis {
    /// Total wire bytes sent by the app across attributed flows.
    pub fn total_sent(&self) -> u64 {
        self.flows.iter().map(|f| f.sent_bytes).sum()
    }

    /// Total wire bytes received.
    pub fn total_recv(&self) -> u64 {
        self.flows.iter().map(|f| f.recv_bytes).sum()
    }

    /// Bytes attributed to AnT origins.
    pub fn ant_bytes(&self) -> u64 {
        self.flows
            .iter()
            .filter(|f| f.is_ant)
            .map(AnalyzedFlow::total_bytes)
            .sum()
    }
}

/// Pre-fetched telemetry handles for the offline pipeline: one
/// [`StageRecorder`] per stage of the analyze hot path (slash-paths
/// under `pipeline/`), the report↔flow join balance counters, and the
/// [`RunIntegrity`] mirror counters.
///
/// Built once per campaign ([`PipelineTelemetry::new`]) and shared by
/// every worker; all handles are atomics behind `Arc`s, so recording
/// is lock-free. The plain [`analyze_run`] entry point routes through
/// a process-wide *disabled* instance, which reduces every telemetry
/// touch point to a single branch.
///
/// Two invariants these counters carry (both property-tested):
///
/// * **join balance** — every decoded report takes exactly one branch,
///   so `spector_pipeline_reports_total` always equals
///   `flows_attributed + duplicate_reports + reports_without_flow`;
/// * **integrity agreement** — [`PipelineTelemetry::record_integrity`]
///   is called exactly once per accepted analysis, so the
///   `spector_integrity_*_total` counters equal the field-wise sum of
///   the [`RunIntegrity`] values over the campaign's analyses.
#[derive(Clone)]
pub struct PipelineTelemetry {
    /// `pipeline/capture_decode`: one-pass capture index build.
    pub capture_decode: StageRecorder,
    /// `pipeline/report_decode`: supervisor report datagram decode.
    pub report_decode: StageRecorder,
    /// `pipeline/flow_join`: the report↔epoch join (steps 3–6).
    pub flow_join: StageRecorder,
    /// `pipeline/flow_join/attribute`: frame translation, builtin
    /// filter, origin-library pick.
    pub attribute: StageRecorder,
    /// `pipeline/flow_join/library_verdict`: category prediction +
    /// AnT/common list membership for the picked origin.
    pub library_verdict: StageRecorder,
    /// `pipeline/flow_join/domain_categorize`: DNS domain recovery and
    /// vendor-label categorization.
    pub domain_categorize: StageRecorder,
    /// `pipeline/coverage`: executed ∩ dex method coverage.
    pub coverage: StageRecorder,
    /// `spector_pipeline_reports_total`: decoded supervisor reports
    /// entering the join.
    pub reports_total: Counter,
    /// `spector_pipeline_flows_attributed_total`: reports that joined a
    /// fresh stream epoch and produced an [`AnalyzedFlow`].
    pub flows_attributed: Counter,
    /// `spector_pipeline_duplicate_reports_total`: reports whose epoch
    /// was already matched (counted once, skipped thereafter).
    pub duplicate_reports: Counter,
    /// `spector_pipeline_reports_without_flow_total`: reports whose
    /// 4-tuple joined no epoch.
    pub reports_without_flow: Counter,
    /// `spector_pipeline_flows_unattributed_total`: stream epochs with
    /// no matching report.
    pub flows_unattributed: Counter,
    /// `spector_pipeline_flow_bytes`: wire bytes per attributed flow.
    pub flow_bytes: Histogram,
    /// `spector_detect_lookups_total`: library-origin verdict lookups
    /// entering the detection cascade.
    pub detect_lookups: Counter,
    /// `spector_detect_trie_hit_total`: lookups answered by the trie
    /// longest-prefix tier.
    pub detect_trie_hit: Counter,
    /// `spector_detect_exact_fp_hit_total`: lookups answered by the
    /// exact subtree-fingerprint tier.
    pub detect_exact_fp_hit: Counter,
    /// `spector_detect_structural_hit_total`: lookups answered by the
    /// structural-profile tier.
    pub detect_structural_hit: Counter,
    /// `spector_detect_miss_total`: lookups no tier attributed.
    pub detect_miss: Counter,
    integrity: [Counter; 6],
    sampling: [Counter; 6],
}

impl PipelineTelemetry {
    /// Fetches all pipeline handles from `telemetry`.
    pub fn new(telemetry: &Telemetry) -> Self {
        let integrity_counter =
            |field: &str| telemetry.counter(&format!("spector_integrity_{field}_total"));
        let sampling_counter =
            |field: &str| telemetry.counter(&format!("spector_sampling_{field}_total"));
        PipelineTelemetry {
            capture_decode: telemetry.stage_recorder("pipeline/capture_decode"),
            report_decode: telemetry.stage_recorder("pipeline/report_decode"),
            flow_join: telemetry.stage_recorder("pipeline/flow_join"),
            attribute: telemetry.stage_recorder("pipeline/flow_join/attribute"),
            library_verdict: telemetry.stage_recorder("pipeline/flow_join/library_verdict"),
            domain_categorize: telemetry.stage_recorder("pipeline/flow_join/domain_categorize"),
            coverage: telemetry.stage_recorder("pipeline/coverage"),
            reports_total: telemetry.counter("spector_pipeline_reports_total"),
            flows_attributed: telemetry.counter("spector_pipeline_flows_attributed_total"),
            duplicate_reports: telemetry.counter("spector_pipeline_duplicate_reports_total"),
            reports_without_flow: telemetry.counter("spector_pipeline_reports_without_flow_total"),
            flows_unattributed: telemetry.counter("spector_pipeline_flows_unattributed_total"),
            flow_bytes: telemetry.histogram("spector_pipeline_flow_bytes", &SIZE_BOUNDS_BYTES),
            detect_lookups: telemetry.counter("spector_detect_lookups_total"),
            detect_trie_hit: telemetry.counter("spector_detect_trie_hit_total"),
            detect_exact_fp_hit: telemetry.counter("spector_detect_exact_fp_hit_total"),
            detect_structural_hit: telemetry.counter("spector_detect_structural_hit_total"),
            detect_miss: telemetry.counter("spector_detect_miss_total"),
            integrity: [
                integrity_counter("frames_truncated"),
                integrity_counter("frames_malformed"),
                integrity_counter("frames_bad_checksum"),
                integrity_counter("reports_truncated"),
                integrity_counter("reports_malformed"),
                integrity_counter("synthesized_flows"),
            ],
            sampling: [
                sampling_counter("reports_observed"),
                sampling_counter("reports_emitted"),
                sampling_counter("sampled_out"),
                sampling_counter("budget_suppressed"),
                sampling_counter("windows_exhausted"),
                sampling_counter("ledgers_lost"),
            ],
        }
    }

    /// The process-wide disabled instance [`analyze_run`] routes
    /// through: every handle is inert, so instrumentation costs one
    /// branch per touch point and performs no allocation per call.
    pub fn disabled_ref() -> &'static PipelineTelemetry {
        static DISABLED: OnceLock<PipelineTelemetry> = OnceLock::new();
        DISABLED.get_or_init(|| PipelineTelemetry::new(&Telemetry::disabled()))
    }

    /// Mirrors one cascade lookup into the `spector_detect_*` counters.
    pub fn record_detect(&self, tier: DetectTier) {
        self.detect_lookups.inc();
        match tier {
            DetectTier::Trie => self.detect_trie_hit.inc(),
            DetectTier::ExactFingerprint => self.detect_exact_fp_hit.inc(),
            DetectTier::Structural => self.detect_structural_hit.inc(),
            DetectTier::Miss => self.detect_miss.inc(),
        }
    }

    /// Mirrors one run's [`SamplingLedger`] into the
    /// `spector_sampling_*_total` counters. Called once per accepted
    /// analysis, so the counters inherit the ledger's balance
    /// invariant: `spector_sampling_reports_observed_total` equals
    /// emitted + sampled_out + budget_suppressed across the campaign.
    pub fn record_sampling(&self, ledger: &SamplingLedger) {
        let fields = [
            ledger.reports_observed,
            ledger.reports_emitted,
            ledger.sampled_out,
            ledger.budget_suppressed,
            ledger.windows_exhausted,
            ledger.ledgers_lost,
        ];
        for (counter, value) in self.sampling.iter().zip(fields) {
            counter.add(value);
        }
    }

    /// Mirrors one run's [`RunIntegrity`] into the
    /// `spector_integrity_*_total` counters.
    pub fn record_integrity(&self, integrity: &RunIntegrity) {
        let fields = [
            integrity.frames_truncated,
            integrity.frames_malformed,
            integrity.frames_bad_checksum,
            integrity.reports_truncated,
            integrity.reports_malformed,
            integrity.synthesized_flows,
        ];
        for (counter, value) in self.integrity.iter().zip(fields) {
            counter.add(value as u64);
        }
    }
}

/// Analyzes one raw run against corpus knowledge.
///
/// This is the hot path: the capture is decoded exactly once (flow
/// table, DNS map, and report datagrams come out of one
/// [`CaptureIndex`] pass), and origin-library verdicts go through the
/// knowledge base's memoizing caches. [`analyze_run_oracle`] is the
/// retired three-pass/uncached implementation, kept as a reference;
/// both produce identical [`AppAnalysis`] values.
///
/// Routes through [`analyze_run_instrumented`] with the disabled
/// telemetry instance — one branch per stage, no recording.
pub fn analyze_run(raw: &RawRun, knowledge: &Knowledge, collector_port: u16) -> AppAnalysis {
    analyze_run_instrumented(
        raw,
        knowledge,
        collector_port,
        PipelineTelemetry::disabled_ref(),
    )
}

/// [`analyze_run`] with per-stage spans and join-balance counters
/// recorded into `pt`. Produces byte-identical [`AppAnalysis`] values
/// to the plain entry point — telemetry observes the pipeline, it
/// never steers it.
pub fn analyze_run_instrumented(
    raw: &RawRun,
    knowledge: &Knowledge,
    collector_port: u16,
    pt: &PipelineTelemetry,
) -> AppAnalysis {
    let index = pt
        .capture_decode
        .time(|| CaptureIndex::build(&raw.capture, collector_port));
    let (reports, report_errors, sampling) = pt.report_decode.time(|| {
        let (report_payloads, sampling) = peel_ledgers(index.report_payloads.iter().copied());
        let (reports, report_errors) = decode_reports_classified(report_payloads);
        (reports, report_errors, sampling)
    });
    let integrity = RunIntegrity {
        frames_truncated: index.frame_errors.truncated,
        frames_malformed: index.frame_errors.malformed,
        frames_bad_checksum: index.frame_errors.bad_checksum,
        reports_truncated: report_errors.truncated,
        reports_malformed: report_errors.malformed,
        synthesized_flows: index.flows.synthesized_epochs(),
    };
    pt.record_integrity(&integrity);
    pt.record_sampling(&sampling);
    join_reports(
        raw,
        knowledge,
        &index.flows,
        &index.dns,
        &reports,
        integrity,
        sampling,
        pt,
        |origin| {
            pt.library_verdict
                .time(|| knowledge.library_verdict_tiered(origin))
        },
    )
}

/// Splits collector-port payloads into report payloads and the run's
/// merged [`SamplingLedger`]: ledger datagrams are decoded and summed;
/// a ledger that fails to decode is *counted* into `ledgers_lost` —
/// the loss accounting never loses anything silently, not even its
/// own records. Everything else passes through to report decode.
fn peel_ledgers<'a>(
    payloads: impl IntoIterator<Item = &'a [u8]>,
) -> (Vec<&'a [u8]>, SamplingLedger) {
    let mut reports = Vec::new();
    let mut ledger = SamplingLedger::default();
    for payload in payloads {
        if LedgerRecord::is_ledger_payload(payload) {
            match LedgerRecord::decode(payload) {
                Ok(record) => ledger.merge(&record.ledger),
                Err(_) => ledger.ledgers_lost += 1,
            }
        } else {
            reports.push(payload);
        }
    }
    (reports, ledger)
}

/// Reference implementation of [`analyze_run`]: three independent
/// capture walks and no memoization — linear longest-prefix matching
/// ([`spector_libradar::AggregatedLibraries::predict_category_oracle`])
/// and per-report list scans. Exists to pin the fast path's behavior
/// (equivalence is asserted by tests and measured by the benches); not
/// for production use.
pub fn analyze_run_oracle(raw: &RawRun, knowledge: &Knowledge, collector_port: u16) -> AppAnalysis {
    use spector_netsim::packet::{decode_frame, FrameErrorKind, Transport};

    let flow_table = FlowTable::from_capture(&raw.capture);
    let dns_map = DnsMap::from_capture(&raw.capture);
    // Reference integrity pass: one more capture walk, classifying
    // every frame and collector-port payload the views skipped.
    let mut reports = Vec::new();
    let mut sampling = SamplingLedger::default();
    let mut integrity = RunIntegrity {
        synthesized_flows: flow_table.synthesized_epochs(),
        ..RunIntegrity::default()
    };
    for packet in &raw.capture {
        match decode_frame(&packet.data) {
            Ok(frame) => {
                let Transport::Udp { payload } = frame.transport else {
                    continue;
                };
                if frame.pair.dst_port != collector_port {
                    continue;
                }
                if LedgerRecord::is_ledger_payload(&payload) {
                    match LedgerRecord::decode(&payload) {
                        Ok(record) => sampling.merge(&record.ledger),
                        Err(_) => sampling.ledgers_lost += 1,
                    }
                    continue;
                }
                match SocketReport::decode(&payload) {
                    Ok(report) => reports.push(report),
                    Err(error) => match error.kind {
                        ReportErrorKind::Truncated => integrity.reports_truncated += 1,
                        ReportErrorKind::Malformed => integrity.reports_malformed += 1,
                    },
                }
            }
            Err(error) => match error.kind {
                FrameErrorKind::Truncated => integrity.frames_truncated += 1,
                FrameErrorKind::Malformed => integrity.frames_malformed += 1,
                FrameErrorKind::BadChecksum => integrity.frames_bad_checksum += 1,
            },
        }
    }
    join_reports(
        raw,
        knowledge,
        &flow_table,
        &dns_map,
        &reports,
        integrity,
        sampling,
        PipelineTelemetry::disabled_ref(),
        |origin| knowledge.library_verdict_tiered_oracle(origin),
    )
}

/// The report↔flow join shared by [`analyze_run`] and
/// [`analyze_run_oracle`] — steps 3–6 of the pipeline. `verdict`
/// resolves an origin-library to `((category, is_ant, is_common),
/// tier)`; the fast path memoizes, the oracle recomputes. Balance
/// counters land in `pt` at the branch they describe, so the
/// join-balance invariant is structural, not arithmetic.
#[allow(clippy::too_many_arguments)]
fn join_reports<F>(
    raw: &RawRun,
    knowledge: &Knowledge,
    flow_table: &FlowTable,
    dns_map: &DnsMap,
    reports: &[SocketReport],
    integrity: RunIntegrity,
    sampling: SamplingLedger,
    pt: &PipelineTelemetry,
    mut verdict: F,
) -> AppAnalysis
where
    F: FnMut(&str) -> (LibraryVerdict, DetectTier),
{
    // Join each report with its stream epoch. Claims are keyed by
    // `(epoch, stream slot)`: the connect-time report (stream `None`)
    // covers slot 0, explicit per-stream reports cover their own
    // ordinal, and a slot's bytes must be counted once — a duplicated
    // report datagram re-claims an already-claimed slot and is skipped.
    let mut flows = Vec::with_capacity(reports.len());
    let mut matched: HashSet<(usize, u32)> = HashSet::new();
    let mut reports_without_flow = 0usize;
    let mut detect = DetectStats::default();
    pt.reports_total.add(reports.len() as u64);
    pt.flow_join.time(|| {
        for report in reports {
            let Some(idx) = flow_table.lookup_epoch(&report.pair, report.timestamp_micros) else {
                reports_without_flow += 1;
                pt.reports_without_flow.inc();
                continue;
            };
            let slot = report.stream.unwrap_or(0);
            if !matched.insert((idx, slot)) {
                pt.duplicate_reports.inc();
                continue;
            }
            let flow = &flow_table.flows()[idx];
            // Volume resolution: a legacy report (stream `None`) on a
            // single-stream epoch claims the whole epoch — the
            // pre-pooling behavior, byte for byte. On a multi-stream
            // epoch the connect report covers stream 0 and explicit
            // stream reports take their own ordinal's split, so the
            // per-stream rows sum exactly to the connection totals.
            let (volumes, stream) = match (report.stream, flow.stream_count() > 1) {
                (None, false) => (flow.stream_volumes(None), None),
                (None, true) => (flow.stream_volumes(Some(0)), Some(0)),
                (Some(k), _) => (flow.stream_volumes(Some(k)), Some(k)),
            };
            let (sent_bytes, recv_bytes, sent_payload, recv_payload) = volumes;

            let attribution: Attribution = pt
                .attribute
                .time(|| attribute(&report.frames, &knowledge.builtin));
            let (lib_category, is_ant, is_common) = match &attribution.origin {
                OriginKind::Library { origin_library, .. } => {
                    let (v, tier) = verdict(origin_library);
                    detect.record(origin_library, tier);
                    pt.record_detect(tier);
                    v
                }
                OriginKind::Builtin => (LibCategory::Unknown, false, false),
            };
            let (domain, domain_category) = pt.domain_categorize.time(|| {
                let domain = resolve_flow_domain(&flow.first_payload, &flow.pair, dns_map)
                    .map(str::to_owned);
                let category = domain
                    .as_deref()
                    .map(|d| knowledge.domain_category(d))
                    .unwrap_or(DomainCategory::Unknown);
                (domain, category)
            });
            let http_user_agent = spector_netsim::http::HttpRequest::parse(&flow.first_payload)
                .map(|request| request.user_agent);
            pt.flows_attributed.inc();
            pt.flow_bytes.record(sent_bytes + recv_bytes);
            flows.push(AnalyzedFlow {
                domain,
                domain_category,
                origin: attribution.origin,
                lib_category,
                is_ant,
                is_common,
                sent_bytes,
                recv_bytes,
                sent_payload,
                recv_payload,
                start_micros: flow.start_micros,
                http_user_agent,
                family: IpFamily::of(&flow.pair),
                shape: classify_shape(&flow.first_payload),
                stream,
            });
        }
    });

    // An epoch is attributed once any of its stream slots is claimed.
    let matched_epochs: HashSet<usize> = matched.iter().map(|&(idx, _)| idx).collect();
    let unattributed_flows = flow_table.len().saturating_sub(matched_epochs.len());
    pt.flows_unattributed.add(unattributed_flows as u64);
    let coverage = pt
        .coverage
        .time(|| compute_coverage(&raw.executed_methods, &raw.dex_signatures));
    let report_packets = reports.len();

    AppAnalysis {
        package: raw.package.clone(),
        app_category: raw.app_category.clone(),
        flows,
        unattributed_flows,
        reports_without_flow,
        coverage,
        dns_packets: dns_map.dns_packet_count,
        report_packets,
        integrity,
        detect,
        sampling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{resolver_for, run_app, ExperimentConfig};
    use spector_corpus::{AppGenConfig, Corpus, CorpusConfig, OpStyle};

    fn run_and_analyze(seed: u64) -> (Corpus, AppAnalysis) {
        let corpus = Corpus::generate(&CorpusConfig {
            apps: 1,
            seed,
            appgen: AppGenConfig {
                method_scale: 0.01,
                ..Default::default()
            },
            ..Default::default()
        });
        let app = &corpus.apps[0];
        let resolver = resolver_for(&corpus.domains);
        let system: Vec<_> = app
            .system_ops
            .iter()
            .map(|s| (s.op.clone(), s.dispatcher))
            .collect();
        let mut config = ExperimentConfig::default();
        config.monkey.events = 120;
        let raw = run_app(&app.apk, &resolver, &system, &config).unwrap();
        let knowledge = Knowledge::from_corpus(&corpus);
        let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
        (corpus, analysis)
    }

    #[test]
    fn every_tcp_flow_is_attributed() {
        let (_, analysis) = run_and_analyze(11);
        assert!(!analysis.flows.is_empty());
        assert_eq!(
            analysis.unattributed_flows, 0,
            "all sockets were hooked, so all flows must join with reports"
        );
        assert!(analysis.report_packets >= analysis.flows.len());
    }

    #[test]
    fn attribution_matches_ground_truth() {
        let (corpus, analysis) = run_and_analyze(12);
        let app = &corpus.apps[0];
        let mut checked = 0;
        for flow in &analysis.flows {
            let Some(domain) = &flow.domain else {
                continue;
            };
            // Domains are sampled collision-avoiding per app, but tiny
            // categories can still be shared by several ops — accept
            // any of their expected origins.
            let expected: Vec<&Option<String>> = app
                .truth
                .iter()
                .filter(|t| &t.domain == domain)
                .map(|t| &t.expected_origin)
                .collect();
            if expected.is_empty() {
                continue;
            }
            checked += 1;
            let got = match &flow.origin {
                OriginKind::Library { origin_library, .. } => Some(origin_library.clone()),
                OriginKind::Builtin => None,
            };
            assert!(
                expected.contains(&&got),
                "domain {domain}: got {got:?}, want one of {expected:?}"
            );
        }
        assert!(checked > 0, "no flows joined with ground truth");
    }

    #[test]
    fn volumes_match_ground_truth_for_startup_flows() {
        let (corpus, analysis) = run_and_analyze(13);
        let app = &corpus.apps[0];
        for truth in app.truth.iter().filter(|t| t.style == OpStyle::Startup) {
            let total_payload: u64 = analysis
                .flows
                .iter()
                .filter(|f| f.domain.as_deref() == Some(truth.domain.as_str()))
                .map(|f| f.recv_payload)
                .sum();
            assert!(
                total_payload >= truth.recv_bytes,
                "domain {} payload {} < truth {}",
                truth.domain,
                total_payload,
                truth.recv_bytes
            );
        }
    }

    #[test]
    fn domains_recovered_and_categorized() {
        let (corpus, analysis) = run_and_analyze(14);
        assert!(analysis.flows.iter().all(|f| f.domain.is_some()));
        // Most flows' recovered domain category should match the true
        // category of the destination (oracle noise allows some drift).
        let mut correct = 0;
        let mut total = 0;
        for flow in &analysis.flows {
            let domain = corpus
                .domains
                .by_name(flow.domain.as_ref().unwrap())
                .unwrap();
            total += 1;
            if flow.domain_category == domain.true_category {
                correct += 1;
            }
        }
        assert!(correct * 100 / total.max(1) >= 50, "{correct}/{total}");
    }

    #[test]
    fn ant_flags_match_truth() {
        let (corpus, analysis) = run_and_analyze(15);
        let app = &corpus.apps[0];
        for flow in &analysis.flows {
            let Some(domain) = &flow.domain else { continue };
            let truths: Vec<_> = app
                .truth
                .iter()
                .filter(|t| &t.domain == domain && t.style != OpStyle::System)
                .collect();
            if truths.is_empty() {
                continue;
            }
            // System traffic is never AnT; app traffic must agree with
            // at least one op behind this domain.
            assert!(
                truths.iter().any(|t| t.is_ant == flow.is_ant),
                "domain {domain}: is_ant {}",
                flow.is_ant
            );
        }
    }

    #[test]
    fn coverage_is_partial() {
        let (_, analysis) = run_and_analyze(16);
        let ratio = analysis.coverage.ratio();
        assert!(ratio > 0.0, "some methods must execute");
        assert!(ratio < 0.9, "filler must remain unexecuted (got {ratio})");
    }

    #[test]
    fn duplicate_reports_for_one_epoch_counted_once() {
        use spector_dex::sha256::Sha256;
        use spector_hooks::{SocketReport, SupervisorConfig};
        use spector_netsim::packet::SocketPair;
        use spector_netsim::{Clock, NetStack};
        use std::net::Ipv4Addr;

        let config = SupervisorConfig::default();
        let mut stack = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
        let ip = stack.resolve("dup.example.net", Ipv4Addr::new(198, 51, 100, 7));
        let sock = stack.tcp_connect(ip, 443);
        let pair = stack.socket_pair(sock).unwrap();
        let report = SocketReport {
            stream: None,
            apk_sha256: Sha256::digest(b"dup-apk"),
            pair,
            timestamp_micros: stack.clock().now_micros(),
            frames: vec![
                "java.net.Socket.connect".into(),
                "com.thirdparty.sdk.Net.call".into(),
            ],
        };
        // The same report datagram lands in the capture twice (e.g. a
        // collector-path retransmit). Both join the same stream epoch.
        stack.udp_send(config.collector_ip, config.collector_port, &report.encode());
        stack.udp_send(config.collector_ip, config.collector_port, &report.encode());
        // A third report references a 4-tuple with no packets at all.
        let orphan = SocketReport {
            stream: None,
            pair: SocketPair::new(
                Ipv4Addr::new(10, 0, 2, 15),
                61_000,
                Ipv4Addr::new(203, 0, 113, 80),
                443,
            ),
            ..report.clone()
        };
        stack.udp_send(config.collector_ip, config.collector_port, &orphan.encode());
        stack.tcp_transfer(sock, 100, 2_000);
        stack.tcp_close(sock);

        let raw = RawRun {
            package: "com.app.dup".into(),
            app_category: "Tools".into(),
            apk_sha256: Sha256::digest(b"dup-apk"),
            capture: stack.into_capture(),
            executed_methods: Default::default(),
            dex_signatures: Default::default(),
            monkey: Default::default(),
            runtime_stats: Default::default(),
            duration_micros: 0,
        };
        let knowledge = Knowledge::new(Default::default(), Default::default(), Default::default());
        let analysis = analyze_run(&raw, &knowledge, config.collector_port);
        assert_eq!(analysis.report_packets, 3);
        assert_eq!(
            analysis.flows.len(),
            1,
            "the duplicated epoch must be counted exactly once"
        );
        assert_eq!(analysis.flows[0].recv_payload, 2_000);
        assert_eq!(analysis.unattributed_flows, 0);
        assert_eq!(analysis.reports_without_flow, 1);
        // The oracle path applies the identical join rules.
        let oracle = analyze_run_oracle(&raw, &knowledge, config.collector_port);
        assert_eq!(analysis, oracle);
    }

    #[test]
    fn udp_excluded_from_flow_accounting() {
        let (_, analysis) = run_and_analyze(17);
        // DNS and report datagrams were observed but no flow is UDP.
        assert!(analysis.dns_packets > 0);
        assert!(analysis.report_packets > 0);
        // All accounted bytes come from TCP epochs; received dominates.
        assert!(analysis.total_recv() > analysis.total_sent());
    }
}
