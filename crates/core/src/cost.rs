//! User-facing cost estimation (§IV-D).
//!
//! Two models, with the paper's constants:
//!
//! * **Monetary** — Google Fi charged $10/GB in 2019; a category that
//!   moves `B` bytes during an 8-minute session costs
//!   `B × (60/8) × $10/GiB` per hour. The paper's example: 15.58 MB of
//!   advertisement traffic per 8-minute run ⇒ ≈ $1.17/hour.
//! * **Energy** — from Vallina-Rodriguez et al.: ad libraries drain
//!   229 mA active vs 144.6 mA idle at 3.85 V ⇒ 0.325 W of ad overhead;
//!   31 kB/day of ad content over 9.3 s/min of active download across a
//!   5-minute effective window ⇒ ≈ 635 B/s, so ≈ 5.12 × 10⁻⁴ J per byte
//!   (the paper prints `5×10⁻³`, but its own worked example — 15.6 MB ⇒
//!   7,794 J ⇒ 18.7 % of an 11.55 Wh battery — corresponds to the
//!   10⁻⁴-scale value, so the exponent there is a typo we do not
//!   reproduce).

use serde::{Deserialize, Serialize};

/// Monetary model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPlan {
    /// Price per gigabyte (GiB) of mobile data.
    pub usd_per_gb: f64,
    /// Length of the measured session in minutes.
    pub session_minutes: f64,
}

impl Default for DataPlan {
    fn default() -> Self {
        DataPlan {
            usd_per_gb: 10.0,     // Google Fi, 2019
            session_minutes: 8.0, // the paper's per-app runtime
        }
    }
}

impl DataPlan {
    /// Dollars per hour implied by `session_bytes` of traffic per
    /// session.
    pub fn hourly_cost_usd(&self, session_bytes: f64) -> f64 {
        let per_hour = session_bytes * 60.0 / self.session_minutes;
        per_hour / (1024.0 * 1024.0 * 1024.0) * self.usd_per_gb
    }
}

/// Energy model parameters (Vallina-Rodriguez et al. measurements).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Current drain while ad libraries are active, mA.
    pub active_ma: f64,
    /// Idle current drain, mA.
    pub idle_ma: f64,
    /// Battery voltage, V.
    pub volts: f64,
    /// Battery capacity, Wh.
    pub battery_wh: f64,
    /// Average daily ad content, bytes.
    pub ad_bytes_per_day: f64,
    /// Active ad download seconds per minute.
    pub active_seconds_per_minute: f64,
    /// Effective foreground+background window, minutes (Pareto 80 %
    /// within the first minute ⇒ ~5 minutes captures ~95 %).
    pub effective_minutes: f64,
    /// Fraction of the daily content inside the effective window.
    pub effective_fraction: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            active_ma: 229.0,
            idle_ma: 144.6,
            volts: 3.85,
            battery_wh: 11.55,
            ad_bytes_per_day: 31_000.0,
            active_seconds_per_minute: 9.3,
            effective_minutes: 5.0,
            effective_fraction: 0.95,
        }
    }
}

impl EnergyModel {
    /// Ad-overhead power draw, watts: `(I_active − I_idle) × V`.
    pub fn overhead_watts(&self) -> f64 {
        (self.active_ma - self.idle_ma) / 1_000.0 * self.volts
    }

    /// Effective transfer rate while ads are active, bytes/second.
    pub fn transfer_rate_bps(&self) -> f64 {
        (self.ad_bytes_per_day * self.effective_fraction)
            / (self.effective_minutes * self.active_seconds_per_minute)
    }

    /// Energy per transferred byte, joules.
    pub fn joules_per_byte(&self) -> f64 {
        self.overhead_watts() / self.transfer_rate_bps()
    }

    /// Joules consumed for `bytes` of ad traffic.
    pub fn joules_for_bytes(&self, bytes: f64) -> f64 {
        bytes * self.joules_per_byte()
    }

    /// Fraction of the battery consumed by `bytes` of ad traffic.
    pub fn battery_fraction_for_bytes(&self, bytes: f64) -> f64 {
        let wh = self.joules_for_bytes(bytes) / 3_600.0;
        wh / self.battery_wh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1_048_576.0;

    #[test]
    fn paper_ad_cost_example() {
        // 15.58 MB per 8 minutes ⇒ ≈ $1.14-1.17/hour at $10/GB.
        let plan = DataPlan::default();
        let cost = plan.hourly_cost_usd(15.58 * MB);
        assert!((1.05..1.25).contains(&cost), "cost {cost}");
    }

    #[test]
    fn paper_analytics_cost_example() {
        // 2.2 MB per 8 minutes ⇒ ≈ $0.17/hour.
        let cost = DataPlan::default().hourly_cost_usd(2.2 * MB);
        assert!((0.12..0.22).contains(&cost), "cost {cost}");
    }

    #[test]
    fn paper_game_engine_cost_example() {
        // Game engines: $3.02/hour ⇒ about 41 MB per 8-minute session.
        let cost = DataPlan::default().hourly_cost_usd(41.2 * MB);
        assert!((2.8..3.3).contains(&cost), "cost {cost}");
    }

    #[test]
    fn overhead_power_matches_paper() {
        let model = EnergyModel::default();
        // (229 − 144.6) mA × 3.85 V = 0.325 W.
        assert!((model.overhead_watts() - 0.325).abs() < 0.001);
    }

    #[test]
    fn transfer_rate_matches_paper() {
        // (31 kB × 0.95) / (5 min × 9.3 s/min) ≈ 633 B/s.
        let rate = EnergyModel::default().transfer_rate_bps();
        assert!((600.0..660.0).contains(&rate), "rate {rate}");
    }

    #[test]
    fn paper_battery_example() {
        // 15.6 MB of ad traffic ⇒ ≈ 7,794 J ⇒ ≈ 18.7 % of 11.55 Wh.
        let model = EnergyModel::default();
        let joules = model.joules_for_bytes(15.6e6);
        assert!((7_300.0..8_400.0).contains(&joules), "joules {joules}");
        let fraction = model.battery_fraction_for_bytes(15.6e6);
        assert!((0.17..0.21).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn zero_bytes_zero_cost() {
        assert_eq!(DataPlan::default().hourly_cost_usd(0.0), 0.0);
        assert_eq!(EnergyModel::default().battery_fraction_for_bytes(0.0), 0.0);
    }
}
