//! Property tests for library detection and the categorization
//! heuristics.

use proptest::prelude::*;
use spector_dex::model::{CodeItem, DexFile, Instruction, MethodDef};
use spector_dex::sig::MethodSig;
use spector_libradar::{detect, AggregatedLibraries, LibCategory, LibraryDb, LibraryLists};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,5}"
}

fn package() -> impl Strategy<Value = String> {
    proptest::collection::vec(ident(), 1..4).prop_map(|parts| parts.join("."))
}

fn category() -> impl Strategy<Value = LibCategory> {
    prop::sample::select(LibCategory::ALL.to_vec())
}

/// A deterministic little library body rooted at `root`.
fn library_dex(root: &str, salt: u8) -> DexFile {
    let methods = (0..4 + usize::from(salt % 3))
        .map(|i| MethodDef {
            sig: MethodSig::new(
                &format!("{root}{}", if i % 2 == 0 { "" } else { ".inner" }),
                &format!("C{i}"),
                &format!("m{i}"),
                "()V",
            ),
            code: CodeItem {
                instructions: vec![
                    Instruction::Const(u32::from(salt) + i as u32),
                    Instruction::Return,
                ],
            },
        })
        .collect();
    DexFile {
        methods,
        classes: vec![],
    }
}

proptest! {
    #[test]
    fn fingerprint_is_rename_invariant(a in package(), b in package(), salt in any::<u8>()) {
        prop_assume!(a != b);
        let fp_a = detect::fingerprint_subtree(&library_dex(&a, salt), &a);
        let fp_b = detect::fingerprint_subtree(&library_dex(&b, salt), &b);
        prop_assert_eq!(fp_a, fp_b);
    }

    #[test]
    fn fingerprint_tracks_structure_not_operands(root in package(), s1 in any::<u8>(), s2 in any::<u8>()) {
        // Structure differs only via the method count (salt % 3): same
        // count ⇒ same fingerprint (operand values are invisible, like
        // LibRadar's obfuscation-resilient features), different count ⇒
        // different fingerprint.
        let fp1 = detect::fingerprint_subtree(&library_dex(&root, s1), &root);
        let fp2 = detect::fingerprint_subtree(&library_dex(&root, s2), &root);
        if s1 % 3 == s2 % 3 {
            prop_assert_eq!(fp1, fp2);
        } else {
            prop_assert_ne!(fp1, fp2);
        }
    }

    #[test]
    fn detection_finds_registered_library_under_any_name(
        canonical in package(),
        in_app in package(),
        salt in any::<u8>(),
        cat in category(),
    ) {
        let mut db = LibraryDb::new();
        db.add_library(&canonical, cat, &library_dex(&canonical, salt));
        let app = library_dex(&in_app, salt);
        let detected = db.detect(&app);
        prop_assert!(
            detected.iter().any(|d| d.name == canonical && d.in_app_prefix == in_app),
            "library not recognized under {in_app}"
        );
    }

    #[test]
    fn longest_prefix_is_a_real_prefix(names in proptest::collection::btree_set(package(), 1..12),
                                       query in package()) {
        let mut agg = AggregatedLibraries::new();
        for name in &names {
            agg.record(name, LibCategory::Utility);
        }
        if let Some(found) = agg.longest_matching_prefix(&query) {
            prop_assert!(names.contains(found));
            let dotted = format!("{}.", found);
            let is_prefix = query == found || query.starts_with(&dotted);
            prop_assert!(is_prefix);
            // No longer candidate exists.
            for name in &names {
                let name_dotted = format!("{}.", name);
                if query == *name || query.starts_with(&name_dotted) {
                    prop_assert!(name.len() <= found.len());
                }
            }
        } else {
            for name in &names {
                let name_dotted = format!("{}.", name);
                let unrelated = query != *name && !query.starts_with(&name_dotted);
                prop_assert!(unrelated);
            }
        }
    }

    #[test]
    fn predict_category_never_panics_and_is_deterministic(
        entries in proptest::collection::vec((package(), category()), 0..12),
        query in package(),
    ) {
        let mut agg = AggregatedLibraries::new();
        for (name, cat) in &entries {
            agg.record(name, *cat);
        }
        let a = agg.predict_category(&query);
        let b = agg.predict_category(&query);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn enclosing_known_library_dominates_prediction(root in package(), suffix in ident(), cat in category()) {
        prop_assume!(cat != LibCategory::Unknown);
        let mut agg = AggregatedLibraries::new();
        agg.record(&root, cat);
        let sub = format!("{}.{}", root, suffix);
        prop_assert_eq!(agg.predict_category(&sub), cat);
    }

    #[test]
    fn trie_agrees_with_linear_oracle(
        entries in proptest::collection::vec((package(), category()), 0..16),
        queries in proptest::collection::vec(package(), 1..8),
    ) {
        let mut agg = AggregatedLibraries::new();
        for (name, cat) in &entries {
            agg.record(name, *cat);
        }
        // Arbitrary queries, the recorded names themselves, and dotted
        // extensions of recorded names (deep trie walks) must all agree
        // with the retired linear implementation.
        for query in queries.iter().chain(entries.iter().map(|(name, _)| name)) {
            prop_assert_eq!(
                agg.longest_matching_prefix(query),
                agg.longest_matching_prefix_oracle(query),
                "longest prefix diverged for {}", query
            );
            prop_assert_eq!(
                agg.predict_category(query),
                agg.predict_category_oracle(query),
                "prediction diverged for {}", query
            );
        }
        for (name, _) in &entries {
            let ext = format!("{name}.zz9.aa");
            prop_assert_eq!(
                agg.longest_matching_prefix(&ext),
                agg.longest_matching_prefix_oracle(&ext),
                "longest prefix diverged for extension {}", ext
            );
            prop_assert_eq!(
                agg.predict_category(&ext),
                agg.predict_category_oracle(&ext),
                "prediction diverged for extension {}", ext
            );
        }
    }

    #[test]
    fn list_membership_respects_component_boundaries(prefix in package(), extra in ident()) {
        let lists = LibraryLists::from_prefixes([prefix.clone()], Vec::<String>::new());
        prop_assert!(lists.is_ant(&prefix));
        let child = format!("{}.{}", prefix, extra);
        let lookalike = format!("{}{}x", prefix, extra);
        prop_assert!(lists.is_ant(&child));
        prop_assert!(!lists.is_ant(&lookalike));
    }
}

// Obfuscator-backed properties: each case generates a small corpus and
// runs the real synthetic obfuscator over it, so the case count is kept
// low — the corpus itself already varies per seed.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Structural profiles are the cascade's last line of defense: they
    /// must be bit-identical across every obfuscation tier, per library
    /// subtree, through the canonical→obfuscated root mapping.
    #[test]
    fn structural_profile_is_invariant_under_every_obfuscation_tier(
        seed in 0u64..1_000,
        obf_seed in 0u64..1_000,
    ) {
        use spector_corpus::obfuscate::{library_roots, obfuscate_dex};
        use spector_corpus::{AppGenConfig, Corpus, CorpusConfig, ObfuscationTier};
        use spector_dex::subtree_profile;

        let corpus = Corpus::generate(&CorpusConfig {
            apps: 2,
            seed,
            appgen: AppGenConfig { method_scale: 0.004, ..Default::default() },
            ..Default::default()
        });
        for app in &corpus.apps {
            let original = app.apk.dex().unwrap();
            let roots = library_roots(&original);
            prop_assume!(!roots.is_empty());
            for tier in [ObfuscationTier::Rename, ObfuscationTier::Mangle, ObfuscationTier::Junk] {
                let mut obfuscated = original.clone();
                let mapping = obfuscate_dex(&mut obfuscated, &roots, tier, obf_seed);
                for root in &roots {
                    let renamed = mapping.get(*root).map(String::as_str).unwrap_or(root);
                    prop_assert_eq!(
                        subtree_profile(&original, root),
                        subtree_profile(&obfuscated, renamed),
                        "profile of {} drifted at {:?}", root, tier
                    );
                }
            }
        }
    }

    /// Zero false positives by construction: whatever the structural
    /// index matches in a fully-obfuscated app must be a library the
    /// app really instantiates — first-party subtrees never cross the
    /// match threshold.
    #[test]
    fn first_party_code_never_crosses_the_structural_threshold(
        seed in 0u64..1_000,
        obf_seed in 0u64..1_000,
    ) {
        use spector_corpus::obfuscate::{library_roots, obfuscate_app};
        use spector_corpus::{AppGenConfig, Corpus, CorpusConfig, ObfuscationTier};

        let mut corpus = Corpus::generate(&CorpusConfig {
            apps: 2,
            seed,
            appgen: AppGenConfig { method_scale: 0.004, ..Default::default() },
            ..Default::default()
        });
        for app in &mut corpus.apps {
            let truth: std::collections::BTreeSet<&str> =
                library_roots(&app.apk.dex().unwrap()).into_iter().collect();
            obfuscate_app(app, ObfuscationTier::Junk, obf_seed);
            let dex = app.apk.dex().unwrap();
            for matched in corpus.structural_index.detect(&dex) {
                prop_assert!(
                    truth.contains(matched.name.as_str()),
                    "structural tier claimed {} (score {:.3}) which {} does not instantiate",
                    matched.name, matched.score, app.package
                );
            }
        }
    }
}
