//! Library detection by package-subtree fingerprinting.
//!
//! LibRadar recognizes a library inside an app by hashing structural
//! features of a package subtree — features that survive package
//! renaming but differ for unrelated code. The reproduction fingerprints
//! a subtree as the SHA-256 of its *package-stripped* method structure:
//! for every method under the prefix, the class-local part of its
//! signature plus an opcode summary of its body, sorted. Two apps
//! bundling the same library version therefore produce identical
//! fingerprints, while first-party code (unique structure per app) never
//! matches the database.

use std::collections::{BTreeSet, HashMap};

use spector_dex::model::{DexFile, Instruction, MethodRef};
use spector_dex::sha256::{Digest, Sha256};

use crate::category::LibCategory;

/// A structural fingerprint of a package subtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LibraryFingerprint(pub Digest);

/// A library found in an app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedLibrary {
    /// Canonical library package name from the database (which may
    /// differ from the in-app package when the copy was renamed).
    pub name: String,
    /// Package prefix the library occupies inside this app.
    pub in_app_prefix: String,
    /// Category from the database, if known.
    pub category: LibCategory,
}

/// The fingerprint database built from known libraries.
#[derive(Debug, Clone, Default)]
pub struct LibraryDb {
    by_fingerprint: HashMap<LibraryFingerprint, (String, LibCategory)>,
}

impl LibraryDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a known library: `name` is its canonical package
    /// prefix, `dex` contains (at least) the library's methods under
    /// that prefix.
    pub fn add_library(&mut self, name: &str, category: LibCategory, dex: &DexFile) {
        if let Some(fp) = fingerprint_subtree(dex, name) {
            self.by_fingerprint.insert(fp, (name.to_owned(), category));
        }
    }

    /// Number of registered fingerprints.
    pub fn len(&self) -> usize {
        self.by_fingerprint.len()
    }

    /// Returns `true` when the database is empty.
    pub fn is_empty(&self) -> bool {
        self.by_fingerprint.is_empty()
    }

    /// Looks up a fingerprint.
    pub fn lookup(&self, fp: &LibraryFingerprint) -> Option<(&str, LibCategory)> {
        self.by_fingerprint
            .get(fp)
            .map(|(name, cat)| (name.as_str(), *cat))
    }

    /// Detects all known libraries in `dex`.
    ///
    /// Every package prefix present in the app is fingerprinted and
    /// matched; when nested prefixes both match (a library plus one of
    /// its sub-packages registered separately), both are reported, which
    /// mirrors LibRadar's output granularity in Listing 2.
    pub fn detect(&self, dex: &DexFile) -> Vec<DetectedLibrary> {
        let mut detected = Vec::new();
        for prefix in package_prefixes(dex) {
            if let Some(fp) = fingerprint_subtree(dex, &prefix) {
                if let Some((name, category)) = self.lookup(&fp) {
                    detected.push(DetectedLibrary {
                        name: name.to_owned(),
                        in_app_prefix: prefix.clone(),
                        category,
                    });
                }
            }
        }
        detected.sort_by(|a, b| a.in_app_prefix.cmp(&b.in_app_prefix));
        detected
    }
}

/// All distinct package prefixes (every hierarchy level) of the app's
/// defined methods, sorted.
pub fn package_prefixes(dex: &DexFile) -> BTreeSet<String> {
    let mut prefixes = BTreeSet::new();
    for method in &dex.methods {
        let pkg = method.sig.package();
        if pkg.is_empty() {
            continue;
        }
        let parts: Vec<&str> = pkg.split('.').collect();
        for level in 1..=parts.len() {
            prefixes.insert(parts[..level].join("."));
        }
    }
    prefixes
}

/// Fingerprints the subtree of methods whose package equals `prefix` or
/// lies beneath it. Returns `None` when no methods are in the subtree.
pub fn fingerprint_subtree(dex: &DexFile, prefix: &str) -> Option<LibraryFingerprint> {
    let mut features: Vec<String> = Vec::new();
    for method in &dex.methods {
        let pkg = method.sig.package();
        if !(pkg == prefix
            || pkg.starts_with(prefix) && pkg.as_bytes().get(prefix.len()) == Some(&b'.'))
        {
            continue;
        }
        // Package-stripped structure: the sub-package path *relative to
        // the prefix* plus class/method/descriptor, plus an opcode
        // string. Renaming the root package leaves all of this intact.
        let relative = &pkg[prefix.len().min(pkg.len())..];
        let opcodes: String = method
            .code
            .instructions
            .iter()
            .map(|inst| match inst {
                Instruction::Nop => 'n',
                Instruction::Const(_) => 'c',
                Instruction::Invoke(MethodRef::Internal(_)) => 'i',
                Instruction::Invoke(MethodRef::External(_)) => 'e',
                Instruction::InvokeAsync { .. } => 'a',
                Instruction::Network(_) => 'w',
                Instruction::Return => 'r',
            })
            .collect();
        features.push(format!(
            "{relative}|{}|{}|{}|{opcodes}",
            method.sig.class_name(),
            method.sig.method_name(),
            method.sig.descriptor(),
        ));
    }
    if features.is_empty() {
        return None;
    }
    features.sort_unstable();
    let mut hasher = Sha256::new();
    for feature in &features {
        hasher.update(feature.as_bytes());
        hasher.update(b"\n");
    }
    Some(LibraryFingerprint(hasher.finalize()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_dex::model::{CodeItem, MethodDef};
    use spector_dex::sig::MethodSig;

    /// Builds a dex whose methods live under `root`.
    fn lib_dex(root: &str) -> DexFile {
        let methods = vec![
            MethodDef {
                sig: MethodSig::new(root, "Loader", "init", "()V"),
                code: CodeItem {
                    instructions: vec![Instruction::Const(1), Instruction::Return],
                },
            },
            MethodDef {
                sig: MethodSig::new(&format!("{root}.cache"), "Store", "put", "(I)V"),
                code: CodeItem {
                    instructions: vec![Instruction::Nop, Instruction::Return],
                },
            },
        ];
        DexFile {
            methods,
            classes: vec![],
        }
    }

    fn merge(dexes: &[DexFile]) -> DexFile {
        let mut out = DexFile::new();
        for dex in dexes {
            out.methods.extend(dex.methods.iter().cloned());
        }
        out
    }

    #[test]
    fn fingerprint_survives_package_rename() {
        let original = fingerprint_subtree(&lib_dex("com.vendor.sdk"), "com.vendor.sdk").unwrap();
        let renamed = fingerprint_subtree(&lib_dex("obf.a.b"), "obf.a.b").unwrap();
        assert_eq!(original, renamed);
    }

    #[test]
    fn fingerprint_differs_for_different_structure() {
        let a = fingerprint_subtree(&lib_dex("com.vendor.sdk"), "com.vendor.sdk").unwrap();
        let mut other = lib_dex("com.vendor.sdk");
        other.methods[0].code.instructions.push(Instruction::Nop);
        let b = fingerprint_subtree(&other, "com.vendor.sdk").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn fingerprint_none_for_empty_subtree() {
        assert!(fingerprint_subtree(&lib_dex("com.a"), "org.missing").is_none());
    }

    #[test]
    fn sibling_package_not_included_in_subtree() {
        // com.vendor.sdkextra must not be folded into com.vendor.sdk.
        let mut dex = lib_dex("com.vendor.sdk");
        let with_sibling = {
            let mut d = lib_dex("com.vendor.sdk");
            d.methods.push(MethodDef {
                sig: MethodSig::new("com.vendor.sdkextra", "X", "y", "()V"),
                code: CodeItem::default(),
            });
            d
        };
        let a = fingerprint_subtree(&dex, "com.vendor.sdk").unwrap();
        let b = fingerprint_subtree(&with_sibling, "com.vendor.sdk").unwrap();
        assert_eq!(a, b);
        dex.methods.push(MethodDef {
            sig: MethodSig::new("com.vendor.sdk.net", "Z", "w", "()V"),
            code: CodeItem::default(),
        });
        let c = fingerprint_subtree(&dex, "com.vendor.sdk").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn detect_finds_known_library_even_renamed() {
        let mut db = LibraryDb::new();
        db.add_library(
            "com.adnet.sdk",
            LibCategory::Advertisement,
            &lib_dex("com.adnet.sdk"),
        );
        assert_eq!(db.len(), 1);
        assert!(!db.is_empty());

        // App bundles a renamed copy plus first-party code.
        let mut app = lib_dex("x.y"); // renamed copy of the ad sdk
        app.methods.push(MethodDef {
            sig: MethodSig::new("com.myapp", "Main", "onCreate", "()V"),
            code: CodeItem {
                instructions: vec![Instruction::Return],
            },
        });
        let detected = db.detect(&app);
        assert_eq!(detected.len(), 1);
        assert_eq!(detected[0].name, "com.adnet.sdk");
        assert_eq!(detected[0].in_app_prefix, "x.y");
        assert_eq!(detected[0].category, LibCategory::Advertisement);
    }

    #[test]
    fn first_party_code_not_detected() {
        let mut db = LibraryDb::new();
        db.add_library(
            "com.adnet.sdk",
            LibCategory::Advertisement,
            &lib_dex("com.adnet.sdk"),
        );
        let app = lib_dex("com.firstparty.app");
        // Same shape but different class names? lib_dex generates
        // identical structure, so it *will* match — mutate to make it
        // genuinely first-party.
        let mut app = app;
        app.methods[0]
            .code
            .instructions
            .insert(0, Instruction::Const(9));
        assert!(db.detect(&app).is_empty());
    }

    #[test]
    fn detect_reports_multiple_libraries() {
        let mut db = LibraryDb::new();
        db.add_library(
            "com.adnet.sdk",
            LibCategory::Advertisement,
            &lib_dex("com.adnet.sdk"),
        );
        let analytics = {
            let mut d = lib_dex("io.metrics");
            d.methods[1].code.instructions.push(Instruction::Nop);
            d
        };
        db.add_library("io.metrics", LibCategory::MobileAnalytics, &analytics);
        let app = merge(&[lib_dex("com.adnet.sdk"), analytics.clone()]);
        let detected = db.detect(&app);
        let names: Vec<&str> = detected.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"com.adnet.sdk"));
        assert!(names.contains(&"io.metrics"));
    }

    #[test]
    fn package_prefixes_enumerates_all_levels() {
        let dex = lib_dex("com.vendor.sdk");
        let prefixes = package_prefixes(&dex);
        assert!(prefixes.contains("com"));
        assert!(prefixes.contains("com.vendor"));
        assert!(prefixes.contains("com.vendor.sdk"));
        assert!(prefixes.contains("com.vendor.sdk.cache"));
        assert_eq!(prefixes.len(), 4);
    }
}
