//! Dotted-component prefix trie over the aggregated library universe.
//!
//! The paper's two §III-D heuristics — longest-matching-prefix
//! resolution and Listing 2's shared-prefix majority vote — are both
//! questions about the *dotted-component prefix structure* of the
//! library universe. [`AggregatedLibraries`](crate::AggregatedLibraries)
//! originally answered them with O(#libraries) linear scans per query;
//! at corpus scale (the paper aggregates 8,652 origin-libraries over
//! 25,000 apps) that linear factor dominates the offline pipeline.
//!
//! [`LibTrie`] indexes the universe once and answers every per-query
//! primitive in O(#package-components):
//!
//! * **longest matching prefix** — the deepest terminal node on the
//!   query's path;
//! * **longest-common-prefix depth** — how deep the query's path goes
//!   before falling off the trie (every trie node is by construction a
//!   prefix of at least one recorded library);
//! * **subtree category votes** — each node carries the per-category
//!   count of non-`Unknown` terminals in its subtree, maintained
//!   incrementally on insert, so Listing 2's vote is a single array
//!   scan at the deepest reached node.

use std::collections::BTreeMap;

use crate::category::LibCategory;

/// Number of library categories (vote-array width).
const NUM_CATEGORIES: usize = LibCategory::ALL.len();

/// [`LibCategory`] values indexed by their `Ord`/declaration
/// discriminant, so `ORD[cat as usize] == cat`. (Note this differs from
/// [`LibCategory::ALL`], which is in the paper's legend order.)
const ORD: [LibCategory; NUM_CATEGORIES] = [
    LibCategory::Advertisement,
    LibCategory::AppMarket,
    LibCategory::DevelopmentAid,
    LibCategory::DevelopmentFramework,
    LibCategory::DigitalIdentity,
    LibCategory::GuiComponent,
    LibCategory::GameEngine,
    LibCategory::MapLbs,
    LibCategory::MobileAnalytics,
    LibCategory::Payment,
    LibCategory::SocialNetwork,
    LibCategory::Utility,
    LibCategory::Unknown,
];

/// One trie node: children keyed by the next dotted component.
#[derive(Debug, Clone, Default)]
struct Node {
    children: BTreeMap<String, Node>,
    /// Category of the recorded library ending at this node, if any.
    terminal: Option<LibCategory>,
    /// Per-category count of non-`Unknown` terminals in this node's
    /// subtree (including the node itself), indexed by `Ord`
    /// discriminant.
    votes: [u32; NUM_CATEGORIES],
}

/// What one traversal of the trie learns about a query package.
#[derive(Debug, Clone, Copy)]
pub struct PrefixMatch {
    /// Byte length into the query of the longest recorded library that
    /// is a whole-component dotted prefix of it, with that library's
    /// category. `None` when no recorded library encloses the query.
    longest_terminal: Option<(usize, LibCategory)>,
    /// Number of leading dotted components the query shares with at
    /// least one recorded library (the Listing 2 common-prefix depth).
    pub common_components: usize,
}

/// Dotted-component prefix trie with subtree category votes.
#[derive(Debug, Clone, Default)]
pub struct LibTrie {
    root: Node,
    len: usize,
}

impl LibTrie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trie from `(name, category)` pairs, with
    /// [`insert`](Self::insert) semantics per pair.
    pub fn build<'a, I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, LibCategory)>,
    {
        let mut trie = LibTrie::new();
        for (name, category) in entries {
            trie.insert(name, category);
        }
        trie
    }

    /// Number of distinct recorded libraries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records a library, mirroring
    /// [`AggregatedLibraries::record`](crate::AggregatedLibraries::record):
    /// a new name is inserted with its category; on repeated insertion a
    /// non-`Unknown` category upgrades a stored `Unknown`, and nothing
    /// else changes. Subtree vote counts along the path are maintained
    /// incrementally (an upgrade adds the vote its `Unknown` placeholder
    /// never cast).
    pub fn insert(&mut self, name: &str, category: LibCategory) {
        fn descend<'a>(
            node: &mut Node,
            mut components: std::str::Split<'a, char>,
            category: LibCategory,
            len: &mut usize,
        ) -> Option<usize> {
            let vote = match components.next() {
                None => match node.terminal {
                    None => {
                        node.terminal = Some(category);
                        *len += 1;
                        (category != LibCategory::Unknown).then_some(category as usize)
                    }
                    Some(LibCategory::Unknown) if category != LibCategory::Unknown => {
                        node.terminal = Some(category);
                        Some(category as usize)
                    }
                    Some(_) => None,
                },
                Some(component) => {
                    let child = node.children.entry(component.to_owned()).or_default();
                    descend(child, components, category, len)
                }
            };
            if let Some(index) = vote {
                node.votes[index] += 1;
            }
            vote
        }
        descend(&mut self.root, name.split('.'), category, &mut self.len);
    }

    /// Walks the query's components down the trie once, collecting the
    /// deepest terminal and the reached depth; returns the match
    /// summary and the deepest node reached.
    fn walk(&self, package: &str) -> (PrefixMatch, &Node) {
        let mut node = &self.root;
        let mut common_components = 0usize;
        let mut byte_end = 0usize;
        let mut longest_terminal = None;
        for component in package.split('.') {
            let Some(child) = node.children.get(component) else {
                break;
            };
            byte_end = if common_components == 0 {
                component.len()
            } else {
                byte_end + 1 + component.len()
            };
            common_components += 1;
            node = child;
            if let Some(category) = child.terminal {
                longest_terminal = Some((byte_end, category));
            }
        }
        (
            PrefixMatch {
                longest_terminal,
                common_components,
            },
            node,
        )
    }

    /// Match summary for `package` (one traversal).
    pub fn prefix_match(&self, package: &str) -> PrefixMatch {
        self.walk(package).0
    }

    /// The hierarchically greatest (longest) recorded library that is a
    /// whole-component dotted prefix of `package`, as a slice of the
    /// query itself.
    pub fn longest_matching_prefix<'a>(&self, package: &'a str) -> Option<&'a str> {
        self.prefix_match(package)
            .longest_terminal
            .map(|(byte_end, _)| &package[..byte_end])
    }

    /// Number of leading dotted components `package` shares with at
    /// least one recorded library.
    pub fn common_prefix_components(&self, package: &str) -> usize {
        self.prefix_match(package).common_components
    }

    /// Listing 2 category prediction in a single traversal:
    ///
    /// 1. if the longest enclosing recorded library has a known
    ///    category, that wins;
    /// 2. otherwise, if fewer than two leading components are shared
    ///    with any recorded library, the package is `Unknown`
    ///    (TLD-style roots are organizationally meaningless);
    /// 3. otherwise, majority vote over the non-`Unknown` categories of
    ///    all recorded libraries under the shared prefix — which is
    ///    exactly the precomputed vote array of the deepest reached
    ///    node — with ties broken toward the `Ord`-smallest category.
    pub fn predict_category(&self, package: &str) -> LibCategory {
        let (found, deepest) = self.walk(package);
        if let Some((_, category)) = found.longest_terminal {
            if category != LibCategory::Unknown {
                return category;
            }
        }
        if found.common_components < 2 {
            return LibCategory::Unknown;
        }
        let mut best = LibCategory::Unknown;
        let mut best_votes = 0u32;
        for (index, &count) in deepest.votes.iter().enumerate() {
            if count > best_votes {
                best_votes = count;
                best = ORD[index];
            }
        }
        best
    }
}

impl PrefixMatch {
    /// The matched library's category, when a recorded library encloses
    /// the query.
    pub fn longest_category(&self) -> Option<LibCategory> {
        self.longest_terminal.map(|(_, category)| category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ord_table_matches_discriminants() {
        for (index, category) in ORD.iter().enumerate() {
            assert_eq!(*category as usize, index, "{category:?}");
        }
        // Same categories as the legend-ordered ALL, different order.
        let mut ord = ORD.to_vec();
        let mut all = LibCategory::ALL.to_vec();
        ord.sort();
        all.sort();
        assert_eq!(ord, all);
    }

    #[test]
    fn listing2_universe() {
        let trie = LibTrie::build([
            ("com.unity3d", LibCategory::GameEngine),
            ("com.unity3d.ads", LibCategory::Advertisement),
            ("com.unity3d.plugin.downloader", LibCategory::AppMarket),
            ("com.unity3d.services", LibCategory::GameEngine),
        ]);
        assert_eq!(trie.len(), 4);
        assert!(!trie.is_empty());
        assert_eq!(
            trie.longest_matching_prefix("com.unity3d.ads.android.cache"),
            Some("com.unity3d.ads")
        );
        assert_eq!(trie.longest_matching_prefix("com.unity3dx.foo"), None);
        assert_eq!(trie.common_prefix_components("com.unity3d.example"), 2);
        assert_eq!(trie.common_prefix_components("com.other"), 1);
        assert_eq!(trie.common_prefix_components("io.other"), 0);
        assert_eq!(
            trie.predict_category("com.unity3d.example"),
            LibCategory::GameEngine
        );
        assert_eq!(
            trie.predict_category("com.unity3d.ads.android.cache"),
            LibCategory::Advertisement
        );
        assert_eq!(
            trie.predict_category("io.unrelated.pkg"),
            LibCategory::Unknown
        );
    }

    #[test]
    fn vote_without_enclosing_library() {
        let trie = LibTrie::build([
            ("org.engine.core", LibCategory::GameEngine),
            ("org.engine.render", LibCategory::GameEngine),
            ("org.engine.ads", LibCategory::Advertisement),
        ]);
        assert_eq!(trie.longest_matching_prefix("org.engine.example"), None);
        assert_eq!(
            trie.predict_category("org.engine.example"),
            LibCategory::GameEngine
        );
    }

    #[test]
    fn unknown_upgrade_adds_vote_once() {
        let mut trie = LibTrie::new();
        trie.insert("com.x.lib", LibCategory::Unknown);
        // Unknown terminals cast no votes.
        assert_eq!(trie.predict_category("com.x.other"), LibCategory::Unknown);
        trie.insert("com.x.lib", LibCategory::Payment);
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.predict_category("com.x.other"), LibCategory::Payment);
        // A later Unknown (or conflicting) re-insert changes nothing.
        trie.insert("com.x.lib", LibCategory::Unknown);
        trie.insert("com.x.lib", LibCategory::GameEngine);
        assert_eq!(trie.predict_category("com.x.other"), LibCategory::Payment);
        assert_eq!(trie.predict_category("com.x.lib"), LibCategory::Payment);
    }

    #[test]
    fn tie_breaks_toward_smallest_category() {
        let trie = LibTrie::build([
            ("net.root.a", LibCategory::Utility),
            ("net.root.b", LibCategory::Advertisement),
        ]);
        // 1 vote each: Advertisement orders before Utility.
        assert_eq!(
            trie.predict_category("net.root.c"),
            LibCategory::Advertisement
        );
    }

    #[test]
    fn empty_trie() {
        let trie = LibTrie::new();
        assert!(trie.is_empty());
        assert_eq!(trie.longest_matching_prefix("a.b"), None);
        assert_eq!(trie.common_prefix_components("a.b"), 0);
        assert_eq!(trie.predict_category("a.b"), LibCategory::Unknown);
    }
}
