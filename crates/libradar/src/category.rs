//! Library categories, matching the 13 categories LibRadar assigned in
//! the paper's dataset (Figure 2 legend).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Category of a third-party library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LibCategory {
    /// Ad networks and mediation SDKs.
    Advertisement,
    /// App store / market client SDKs.
    AppMarket,
    /// General development aids (HTTP clients, image loaders, vendor
    /// infrastructure SDKs).
    DevelopmentAid,
    /// Application frameworks.
    DevelopmentFramework,
    /// Login / identity providers.
    DigitalIdentity,
    /// Widget and UI component kits.
    GuiComponent,
    /// Game engines.
    GameEngine,
    /// Maps and location-based services.
    MapLbs,
    /// Usage analytics and telemetry.
    MobileAnalytics,
    /// Payment processors.
    Payment,
    /// Social-network SDKs.
    SocialNetwork,
    /// Miscellaneous utilities.
    Utility,
    /// Not categorized (first-party or unrecognized code).
    Unknown,
}

impl LibCategory {
    /// All categories, in the paper's legend order.
    pub const ALL: [LibCategory; 13] = [
        LibCategory::Advertisement,
        LibCategory::AppMarket,
        LibCategory::DevelopmentAid,
        LibCategory::DevelopmentFramework,
        LibCategory::DigitalIdentity,
        LibCategory::GuiComponent,
        LibCategory::GameEngine,
        LibCategory::MapLbs,
        LibCategory::MobileAnalytics,
        LibCategory::Payment,
        LibCategory::SocialNetwork,
        LibCategory::Unknown,
        LibCategory::Utility,
    ];

    /// The display label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            LibCategory::Advertisement => "Advertisement",
            LibCategory::AppMarket => "App Market",
            LibCategory::DevelopmentAid => "Development Aid",
            LibCategory::DevelopmentFramework => "Development Framework",
            LibCategory::DigitalIdentity => "Digital Identity",
            LibCategory::GuiComponent => "GUI Component",
            LibCategory::GameEngine => "Game Engine",
            LibCategory::MapLbs => "Map/LBS",
            LibCategory::MobileAnalytics => "Mobile Analytics",
            LibCategory::Payment => "Payment",
            LibCategory::SocialNetwork => "Social Network",
            LibCategory::Utility => "Utility",
            LibCategory::Unknown => "Unknown",
        }
    }
}

impl fmt::Display for LibCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unrecognized category label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCategoryError {
    /// The unrecognized input.
    pub input: String,
}

impl fmt::Display for ParseCategoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown library category {:?}", self.input)
    }
}

impl std::error::Error for ParseCategoryError {}

impl FromStr for LibCategory {
    type Err = ParseCategoryError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LibCategory::ALL
            .iter()
            .find(|c| c.label().eq_ignore_ascii_case(s))
            .copied()
            .ok_or_else(|| ParseCategoryError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_categories() {
        assert_eq!(LibCategory::ALL.len(), 13);
        let labels: std::collections::HashSet<_> =
            LibCategory::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 13);
    }

    #[test]
    fn display_matches_paper_legend() {
        assert_eq!(LibCategory::Advertisement.to_string(), "Advertisement");
        assert_eq!(LibCategory::MapLbs.to_string(), "Map/LBS");
        assert_eq!(LibCategory::GuiComponent.to_string(), "GUI Component");
    }

    #[test]
    fn parse_roundtrip() {
        for c in LibCategory::ALL {
            assert_eq!(c.label().parse::<LibCategory>().unwrap(), c);
        }
        assert_eq!(
            "game engine".parse::<LibCategory>().unwrap(),
            LibCategory::GameEngine
        );
        assert!("Nonsense".parse::<LibCategory>().is_err());
    }
}
