//! The obfuscation-resistant detection tier: a signature index over
//! structural subtree profiles.
//!
//! The exact [`crate::LibraryDb`] fingerprint requires a byte-identical
//! identifier structure; one mangled class name and the SHA-256 never
//! matches again. This tier matches on [`StructuralProfile`]s instead —
//! multisets of hashed rename-invariant features (see
//! `spector_dex::features`) — scored by exact multiset Jaccard
//! similarity against every known library sharing at least one feature
//! bucket. An unmodified (but arbitrarily renamed, mangled, reordered,
//! junk-padded) library copy scores 1.0; unrelated code shares only
//! generic features and stays far below the match threshold.
//!
//! The three tiers compose into a cascade, recorded per lookup as a
//! [`DetectTier`]: `LibTrie` prefix (fast path, dies on package rename)
//! → exact fingerprint (survives rename, dies on identifier mangling)
//! → structural match (survives all simulated tiers) → miss.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};
use spector_dex::features::{subtree_profile, StructuralProfile};
use spector_dex::model::DexFile;

use crate::category::LibCategory;
use crate::detect::package_prefixes;

/// Which cascade tier attributed a library lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DetectTier {
    /// `LibTrie` longest-prefix / majority vote on the raw package name.
    Trie,
    /// Exact `LibraryDb` subtree fingerprint bridged a renamed prefix.
    ExactFingerprint,
    /// Structural profile similarity bridged a mangled prefix.
    Structural,
    /// No tier produced a verdict (first-party or unknown code).
    Miss,
}

impl DetectTier {
    /// All tiers in cascade order.
    pub const ALL: [DetectTier; 4] = [
        DetectTier::Trie,
        DetectTier::ExactFingerprint,
        DetectTier::Structural,
        DetectTier::Miss,
    ];

    /// Stable snake_case label (telemetry/stat key spelling).
    pub fn label(self) -> &'static str {
        match self {
            DetectTier::Trie => "trie_hit",
            DetectTier::ExactFingerprint => "exact_fp_hit",
            DetectTier::Structural => "structural_hit",
            DetectTier::Miss => "miss",
        }
    }
}

/// Minimum multiset cardinality before a query subtree is even scored:
/// tiny subtrees (a class or two of generic glue) carry too little
/// evidence to claim a library match.
pub const MIN_MATCH_FEATURES: u64 = 10;

/// Similarity a best match must reach. A true library copy scores 1.0
/// under every obfuscation tier (features are invariant by design), so
/// the threshold's only job is rejecting partial overlaps: parent
/// prefixes that bundle a library beside other code, and coincidental
/// filler resemblance. Both empirically land well below 0.8.
pub const MATCH_THRESHOLD: f64 = 0.8;

/// A library recognized by structural similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralMatch {
    /// Canonical library package from the index.
    pub name: String,
    /// Package prefix the copy occupies inside the app.
    pub in_app_prefix: String,
    /// Category from the index.
    pub category: LibCategory,
    /// Multiset Jaccard similarity in `[threshold, 1.0]`.
    pub score: f64,
}

/// Signature index over structural profiles: feature hash → posting list
/// of `(library, multiplicity)`, scored by exact multiset Jaccard.
#[derive(Debug, Clone, Default)]
pub struct StructuralIndex {
    libs: Vec<(String, LibCategory, u64)>,
    buckets: HashMap<u64, Vec<(u32, u32)>>,
}

impl StructuralIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a known library from its dex (methods under `name`).
    pub fn add_library(&mut self, name: &str, category: LibCategory, dex: &DexFile) {
        self.add_profile(name, category, &subtree_profile(dex, name));
    }

    /// Registers a known library from a precomputed profile.
    pub fn add_profile(&mut self, name: &str, category: LibCategory, profile: &StructuralProfile) {
        if profile.is_empty() {
            return;
        }
        let id = self.libs.len() as u32;
        self.libs.push((name.to_owned(), category, profile.total()));
        for &(hash, count) in &profile.features {
            self.buckets.entry(hash).or_default().push((id, count));
        }
    }

    /// Number of indexed libraries.
    pub fn len(&self) -> usize {
        self.libs.len()
    }

    /// Returns `true` when no libraries are indexed.
    pub fn is_empty(&self) -> bool {
        self.libs.is_empty()
    }

    /// Scores `profile` against the index and returns the best library at
    /// or above [`MATCH_THRESHOLD`], if any.
    ///
    /// Multiset Jaccard: `Σ min(q, l) / (Σq + Σl − Σ min(q, l))`,
    /// accumulated through the shared-bucket posting lists so only
    /// libraries with overlap are touched.
    pub fn best_match(&self, profile: &StructuralProfile) -> Option<StructuralMatch> {
        let q_total = profile.total();
        if q_total < MIN_MATCH_FEATURES {
            return None;
        }
        let mut min_sum: HashMap<u32, u64> = HashMap::new();
        for &(hash, q_count) in &profile.features {
            if let Some(postings) = self.buckets.get(&hash) {
                for &(lib, l_count) in postings {
                    *min_sum.entry(lib).or_insert(0) += u64::from(q_count.min(l_count));
                }
            }
        }
        let mut best: Option<(u32, f64)> = None;
        for (lib, overlap) in min_sum {
            let (_, _, l_total) = self.libs[lib as usize];
            let union = q_total + l_total - overlap;
            let score = overlap as f64 / union as f64;
            // Deterministic tie-break: lower library id wins.
            let better = match best {
                None => true,
                Some((b_lib, b_score)) => score > b_score || (score == b_score && lib < b_lib),
            };
            if better {
                best = Some((lib, score));
            }
        }
        let (lib, score) = best?;
        if score < MATCH_THRESHOLD {
            return None;
        }
        let (name, category, _) = &self.libs[lib as usize];
        Some(StructuralMatch {
            name: name.clone(),
            in_app_prefix: String::new(),
            category: *category,
            score,
        })
    }

    /// Detects indexed libraries in `dex`: every package prefix is
    /// profiled and scored; prefixes whose best match clears the
    /// threshold are reported, sorted by in-app prefix.
    ///
    /// Only the actual root of a bundled copy scores near 1.0: parent
    /// prefixes shift every depth-sensitive feature and dilute the
    /// union, child prefixes lose the root's features — both fall below
    /// the threshold by construction.
    pub fn detect(&self, dex: &DexFile) -> Vec<StructuralMatch> {
        let mut matches = Vec::new();
        for prefix in package_prefixes(dex) {
            let profile = subtree_profile(dex, &prefix);
            if let Some(mut m) = self.best_match(&profile) {
                m.in_app_prefix = prefix;
                matches.push(m);
            }
        }
        matches.sort_by(|a, b| a.in_app_prefix.cmp(&b.in_app_prefix));
        matches
    }
}

/// In-app prefix → canonical library package aliases, learned from
/// corpus-wide detection. `resolve` bridges an obfuscated origin package
/// back to canonical space so the existing verdict machinery (trie,
/// lists) can run on it.
#[derive(Debug, Clone, Default)]
pub struct PrefixAliases {
    map: BTreeMap<String, String>,
}

impl PrefixAliases {
    /// Creates an empty alias table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `prefix` (as seen in an app) as an alias of `canonical`.
    /// Identity aliases are skipped: an un-renamed library needs no
    /// bridging and must not perturb the fast path.
    pub fn insert(&mut self, prefix: &str, canonical: &str) {
        if prefix != canonical {
            self.map.insert(prefix.to_owned(), canonical.to_owned());
        }
    }

    /// Number of recorded aliases.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when no aliases are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Rewrites `origin` onto canonical space via its longest aliased
    /// dotted prefix; `None` when no alias applies.
    pub fn resolve(&self, origin: &str) -> Option<String> {
        let mut end = origin.len();
        loop {
            let prefix = &origin[..end];
            if let Some(canonical) = self.map.get(prefix) {
                return Some(format!("{canonical}{}", &origin[end..]));
            }
            end = origin[..end].rfind('.')?;
        }
    }

    /// Linear-scan twin of [`PrefixAliases::resolve`] for the oracle
    /// pipeline: identical answers, no early exit structure shared.
    pub fn resolve_oracle(&self, origin: &str) -> Option<String> {
        let mut best: Option<(&str, &str)> = None;
        for (prefix, canonical) in &self.map {
            let applies = origin == prefix
                || (origin.starts_with(prefix.as_str())
                    && origin.as_bytes().get(prefix.len()) == Some(&b'.'));
            if applies && best.is_none_or(|(b, _)| prefix.len() > b.len()) {
                best = Some((prefix, canonical));
            }
        }
        best.map(|(prefix, canonical)| format!("{canonical}{}", &origin[prefix.len()..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spector_dex::model::{CodeItem, Instruction, MethodDef, MethodRef, NetworkOp};
    use spector_dex::sig::MethodSig;

    /// Two-class library with an internal call and a network op; `salt`
    /// varies the structure so different libraries stay distinct.
    fn lib_dex(root: &str, salt: usize) -> DexFile {
        let mut methods = vec![
            MethodDef {
                sig: MethodSig::new(root, "Sdk", "init", "(Landroid/content/Context;)V"),
                code: CodeItem {
                    instructions: vec![
                        Instruction::Const(1),
                        Instruction::Invoke(MethodRef::Internal(1)),
                        Instruction::Return,
                    ],
                },
            },
            MethodDef {
                sig: MethodSig::new(&format!("{root}.net"), "Fetcher", "run", "()V"),
                code: CodeItem {
                    instructions: vec![
                        Instruction::Network(NetworkOp {
                            domain: "x.example".into(),
                            port: 443,
                            send_bytes: 1,
                            recv_bytes: 2,
                            connector: spector_dex::model::Connector::AndroidOkHttp,
                            shape: spector_dex::model::WireShape::Plain,
                        }),
                        Instruction::Return,
                    ],
                },
            },
        ];
        for i in 0..(4 + salt % 3) {
            methods.push(MethodDef {
                sig: MethodSig::new(
                    root,
                    &format!("C{i}"),
                    "m",
                    if i % 2 == salt % 2 { "(I)V" } else { "()V" },
                ),
                code: CodeItem {
                    instructions: vec![Instruction::Const(i as u32), Instruction::Return],
                },
            });
        }
        DexFile {
            methods,
            classes: vec![],
        }
    }

    fn index() -> StructuralIndex {
        let mut idx = StructuralIndex::new();
        idx.add_library(
            "com.adnet.sdk",
            LibCategory::Advertisement,
            &lib_dex("com.adnet.sdk", 0),
        );
        idx.add_library(
            "io.metrics",
            LibCategory::MobileAnalytics,
            &lib_dex("io.metrics", 1),
        );
        idx
    }

    #[test]
    fn identical_copy_scores_one() {
        let idx = index();
        let profile = subtree_profile(&lib_dex("com.adnet.sdk", 0), "com.adnet.sdk");
        let m = idx.best_match(&profile).expect("match");
        assert_eq!(m.name, "com.adnet.sdk");
        assert_eq!(m.category, LibCategory::Advertisement);
        assert!((m.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renamed_and_mangled_copy_still_matches() {
        let idx = index();
        // Same structure under a fresh root with mangled identifiers.
        let mut copy = lib_dex("qx.ab", 0);
        for (i, m) in copy.methods.iter_mut().enumerate() {
            m.sig = MethodSig::new(&m.sig.package(), &format!("k{i}"), "a", m.sig.descriptor());
        }
        let detected = idx.detect(&copy);
        assert!(detected
            .iter()
            .any(|m| m.name == "com.adnet.sdk" && m.in_app_prefix == "qx.ab"));
    }

    #[test]
    fn parent_and_child_prefixes_do_not_match() {
        let idx = index();
        // App dex: renamed lib under qx.ab plus unrelated sibling code
        // under qx.other — the parent prefix "qx" must not match.
        let mut app = lib_dex("qx.ab", 0);
        for i in 0..6 {
            app.methods.push(MethodDef {
                sig: MethodSig::new("qx.other", &format!("O{i}"), "f", "(J)V"),
                code: CodeItem {
                    instructions: vec![Instruction::Nop, Instruction::Return],
                },
            });
        }
        let matches = idx.detect(&app);
        assert!(matches.iter().all(|m| m.in_app_prefix != "qx"));
        assert!(matches.iter().any(|m| m.in_app_prefix == "qx.ab"));
        // The child prefix qx.ab.net alone lacks the root's features.
        assert!(matches.iter().all(|m| m.in_app_prefix != "qx.ab.net"));
    }

    #[test]
    fn unrelated_code_stays_below_threshold() {
        let idx = index();
        let mut first_party = DexFile::new();
        for i in 0..20 {
            first_party.methods.push(MethodDef {
                sig: MethodSig::new(
                    "com.myapp.data",
                    &format!("F{}", i / 4),
                    &format!("f{i}"),
                    "()V",
                ),
                code: CodeItem {
                    instructions: vec![Instruction::Const(i as u32), Instruction::Return],
                },
            });
        }
        assert!(idx.detect(&first_party).is_empty());
    }

    #[test]
    fn tiny_subtrees_are_not_scored() {
        let idx = index();
        let mut dex = DexFile::new();
        dex.methods.push(MethodDef {
            sig: MethodSig::new("a.b", "C", "m", "()V"),
            code: CodeItem {
                instructions: vec![Instruction::Return],
            },
        });
        let profile = subtree_profile(&dex, "a.b");
        assert!(profile.total() < MIN_MATCH_FEATURES);
        assert!(idx.best_match(&profile).is_none());
    }

    #[test]
    fn alias_resolution_rewrites_longest_prefix() {
        let mut aliases = PrefixAliases::new();
        aliases.insert("qx.ab", "com.adnet.sdk");
        aliases.insert("qx.ab.net", "io.metrics");
        aliases.insert("com.adnet.sdk", "com.adnet.sdk"); // identity: dropped
        assert_eq!(aliases.len(), 2);
        assert_eq!(
            aliases.resolve("qx.ab.cache").as_deref(),
            Some("com.adnet.sdk.cache")
        );
        assert_eq!(aliases.resolve("qx.ab").as_deref(), Some("com.adnet.sdk"));
        assert_eq!(
            aliases.resolve("qx.ab.net.deep").as_deref(),
            Some("io.metrics.deep")
        );
        assert_eq!(aliases.resolve("qx.abc"), None);
        assert_eq!(aliases.resolve("com.other"), None);
        for origin in [
            "qx.ab.cache",
            "qx.ab",
            "qx.ab.net.deep",
            "qx.abc",
            "com.other",
            "qx",
        ] {
            assert_eq!(aliases.resolve(origin), aliases.resolve_oracle(origin));
        }
    }

    #[test]
    fn tier_labels_are_stable() {
        let labels: Vec<&str> = DetectTier::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(
            labels,
            ["trie_hit", "exact_fp_hit", "structural_hit", "miss"]
        );
    }
}
