//! Third-party library detection and categorization (LibRadar stand-in).
//!
//! Libspector does not identify libraries by name alone: it runs
//! LibRadar over every collected apk, aggregates the detected libraries
//! and their categories across the whole corpus, and then uses two
//! heuristics on top (§III-C, §III-D):
//!
//! * **longest-matching-prefix** — an origin package that LibRadar never
//!   saw is mapped to the hierarchically greatest known library prefix
//!   (e.g. `com.unity3d.ads.android.cache` → `com.unity3d.ads`);
//! * **majority-vote category prediction** (Listing 2) — when the
//!   matched library has no category, all known libraries sharing the
//!   longest common prefix vote with their categories.
//!
//! Both heuristics are indexed by a dotted-component prefix trie
//! ([`trie::LibTrie`]) that answers longest-matching-prefix, common
//! prefix depth, and subtree category votes in O(#components) per
//! query instead of O(#libraries); the original linear scans survive
//! as `*_oracle` methods for property tests and benchmark baselines.
//!
//! LibRadar itself recognizes libraries by hashing package-subtree
//! features (so renamed copies of the same code still match, and
//! app-specific first-party code does not). [`detect`] reproduces that:
//! a library's *fingerprint* is a SHA-256 over its package-stripped
//! method structure, matched against a [`LibraryDb`] built from the
//! library universe.
//!
//! The paper additionally uses Li et al.'s lists of common libraries
//! (CL) and advertisement/tracker (AnT) libraries; [`lists::LibraryLists`]
//! carries both.

pub mod category;
pub mod detect;
pub mod lists;
pub mod predict;
pub mod structural;
pub mod trie;

pub use category::LibCategory;
pub use detect::{DetectedLibrary, LibraryDb, LibraryFingerprint};
pub use lists::LibraryLists;
pub use predict::AggregatedLibraries;
pub use structural::{
    DetectTier, PrefixAliases, StructuralIndex, StructuralMatch, MATCH_THRESHOLD,
    MIN_MATCH_FEATURES,
};
pub use trie::LibTrie;
