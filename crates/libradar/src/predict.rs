//! Corpus-wide library aggregation, longest-prefix matching, and
//! majority-vote category prediction (paper §III-C/D, Listing 2).
//!
//! Both per-query heuristics are answered by a lazily-built
//! [`LibTrie`] in O(#package-components); the original O(#libraries)
//! linear scans are retained as `*_oracle` reference implementations so
//! property tests and the benchmark baseline can compare against the
//! pre-index behavior.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::category::LibCategory;
use crate::trie::LibTrie;

/// The aggregated list of libraries LibRadar detected across the whole
/// corpus, with their categories — the lookup structure both heuristics
/// run against.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AggregatedLibraries {
    /// library package name -> category. BTreeMap keeps iteration (and
    /// therefore voting ties) deterministic.
    libs: BTreeMap<String, LibCategory>,
    /// Prefix index over `libs`, built on first query and invalidated
    /// by [`record`](Self::record). Never serialized: a deserialized
    /// aggregate rebuilds it lazily from `libs`.
    #[serde(skip)]
    trie: OnceLock<LibTrie>,
}

impl AggregatedLibraries {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a detected library. On repeated detection with differing
    /// categories, a non-`Unknown` category wins over `Unknown`
    /// (LibRadar output is occasionally missing the category for one
    /// app but not another).
    pub fn record(&mut self, name: &str, category: LibCategory) {
        match self.libs.get_mut(name) {
            Some(existing) => {
                if *existing == LibCategory::Unknown && category != LibCategory::Unknown {
                    *existing = category;
                }
            }
            None => {
                self.libs.insert(name.to_owned(), category);
            }
        }
        // The index is stale; rebuild lazily on the next query.
        self.trie = OnceLock::new();
    }

    /// The prefix index, built on first use.
    fn trie(&self) -> &LibTrie {
        self.trie
            .get_or_init(|| LibTrie::build(self.libs.iter().map(|(n, c)| (n.as_str(), *c))))
    }

    /// Number of distinct libraries recorded.
    pub fn len(&self) -> usize {
        self.libs.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.libs.is_empty()
    }

    /// Exact category lookup.
    pub fn category_of(&self, name: &str) -> Option<LibCategory> {
        self.libs.get(name).copied()
    }

    /// Iterates over `(name, category)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, LibCategory)> {
        self.libs.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// The hierarchically greatest (longest) known library that is a
    /// dotted prefix of `package` — the paper's origin-library name
    /// resolution: "the longest matching prefix among all the libraries
    /// that LibRadar has detected across 25,000 apps". Answered by the
    /// trie in O(#components); the returned slice borrows from
    /// `package` (the matched name is by definition a prefix of it).
    pub fn longest_matching_prefix<'a>(&self, package: &'a str) -> Option<&'a str> {
        self.trie().longest_matching_prefix(package)
    }

    /// Number of leading dotted components `package` shares with at
    /// least one recorded library (the Listing 2 common-prefix depth).
    pub fn common_prefix_components(&self, package: &str) -> usize {
        self.trie().common_prefix_components(package)
    }

    /// Predicts the category of `package` per Listing 2:
    ///
    /// 1. find the longest common dotted prefix shared between `package`
    ///    and at least one known library;
    /// 2. collect the categories of all known libraries under that
    ///    prefix;
    /// 3. majority vote (ties broken by category order, which is
    ///    deterministic).
    ///
    /// Returns [`LibCategory::Unknown`] when no known library shares
    /// even one leading component. The whole decision is one trie
    /// traversal (see [`LibTrie::predict_category`]).
    pub fn predict_category(&self, package: &str) -> LibCategory {
        self.trie().predict_category(package)
    }

    /// Reference oracle for [`longest_matching_prefix`]: the original
    /// O(#libraries) linear scan. Kept (off the hot path) so property
    /// tests and the pipeline benchmark baseline can verify the trie
    /// byte-for-byte.
    ///
    /// [`longest_matching_prefix`]: Self::longest_matching_prefix
    pub fn longest_matching_prefix_oracle(&self, package: &str) -> Option<&str> {
        let mut best: Option<&str> = None;
        for name in self.libs.keys() {
            if is_dotted_prefix(name, package) && best.is_none_or(|b| name.len() > b.len()) {
                best = Some(name);
            }
        }
        best
    }

    /// Reference oracle for [`predict_category`]: the original
    /// double-scan (longest prefix, then a full rescan for the common
    /// depth, then a vote scan). See
    /// [`longest_matching_prefix_oracle`](Self::longest_matching_prefix_oracle).
    pub fn predict_category_oracle(&self, package: &str) -> LibCategory {
        // If the package *is* a known library or extends one, prefer the
        // longest matching library's own category when set.
        if let Some(best) = self.longest_matching_prefix_oracle(package) {
            let cat = self.libs[best];
            if cat != LibCategory::Unknown {
                return cat;
            }
        }
        // Longest common dotted prefix with any known library. A single
        // shared component (`com`, `org`, …) is organizationally
        // meaningless — TLD-style roots are shared by unrelated code —
        // so at least two components must match before voting.
        let mut common_len = 0usize;
        for name in self.libs.keys() {
            let len = common_dotted_components(name, package);
            common_len = common_len.max(len);
        }
        if common_len < 2 {
            return LibCategory::Unknown;
        }
        let prefix = dotted_prefix(package, common_len);
        // Vote among all libraries under the common prefix.
        let mut votes: BTreeMap<LibCategory, usize> = BTreeMap::new();
        for (name, cat) in &self.libs {
            if (is_dotted_prefix(&prefix, name) || name == &prefix) && *cat != LibCategory::Unknown
            {
                *votes.entry(*cat).or_default() += 1;
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(cat, _)| cat)
            .unwrap_or(LibCategory::Unknown)
    }
}

/// `true` when `prefix` is a whole-component dotted prefix of `name`
/// (`com.unity3d` prefixes `com.unity3d.ads` but not `com.unity3dx`).
fn is_dotted_prefix(prefix: &str, name: &str) -> bool {
    name == prefix || (name.starts_with(prefix) && name.as_bytes().get(prefix.len()) == Some(&b'.'))
}

/// Number of leading dotted components `a` and `b` share.
fn common_dotted_components(a: &str, b: &str) -> usize {
    a.split('.')
        .zip(b.split('.'))
        .take_while(|(x, y)| x == y)
        .count()
}

/// The first `components` dotted components of `name`.
fn dotted_prefix(name: &str, components: usize) -> String {
    name.split('.')
        .take(components)
        .collect::<Vec<_>>()
        .join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Listing 2 universe.
    fn unity() -> AggregatedLibraries {
        let mut agg = AggregatedLibraries::new();
        agg.record("com.unity3d", LibCategory::GameEngine);
        agg.record("com.unity3d.ads", LibCategory::Advertisement);
        agg.record("com.unity3d.plugin.downloader", LibCategory::AppMarket);
        agg.record("com.unity3d.services", LibCategory::GameEngine);
        agg
    }

    #[test]
    fn listing2_majority_vote() {
        // com.unity3d.example: {Game Engine: 2, Advertisement: 1,
        // App Market: 1} -> Game Engine... except com.unity3d itself is
        // a known library with category Game Engine, matched by longest
        // prefix. Both paths agree with the paper.
        assert_eq!(
            unity().predict_category("com.unity3d.example"),
            LibCategory::GameEngine
        );
    }

    #[test]
    fn listing2_ads_cache_prediction() {
        // com.unity3d.ads.android.cache -> longest prefix com.unity3d.ads
        // (the only matching library) -> Advertisement.
        assert_eq!(
            unity().predict_category("com.unity3d.ads.android.cache"),
            LibCategory::Advertisement
        );
    }

    #[test]
    fn majority_vote_without_enclosing_library() {
        // No library is a prefix of the query, but a common prefix
        // exists: org.engine.* with two GameEngine siblings and one
        // Advertisement sibling.
        let mut agg = AggregatedLibraries::new();
        agg.record("org.engine.core", LibCategory::GameEngine);
        agg.record("org.engine.render", LibCategory::GameEngine);
        agg.record("org.engine.ads", LibCategory::Advertisement);
        assert_eq!(
            agg.predict_category("org.engine.example"),
            LibCategory::GameEngine
        );
    }

    #[test]
    fn longest_prefix_resolution() {
        let agg = unity();
        assert_eq!(
            agg.longest_matching_prefix("com.unity3d.ads.android.cache"),
            Some("com.unity3d.ads")
        );
        assert_eq!(
            agg.longest_matching_prefix("com.unity3d.services.core"),
            Some("com.unity3d.services")
        );
        assert_eq!(
            agg.longest_matching_prefix("com.unity3d"),
            Some("com.unity3d")
        );
        assert_eq!(agg.longest_matching_prefix("com.other"), None);
        // Component boundary: com.unity3dx must not match com.unity3d.
        assert_eq!(agg.longest_matching_prefix("com.unity3dx.foo"), None);
    }

    #[test]
    fn unknown_when_nothing_shared() {
        assert_eq!(
            unity().predict_category("io.totally.unrelated"),
            LibCategory::Unknown
        );
        assert_eq!(
            AggregatedLibraries::new().predict_category("a.b"),
            LibCategory::Unknown
        );
    }

    #[test]
    fn record_prefers_known_over_unknown() {
        let mut agg = AggregatedLibraries::new();
        agg.record("com.x", LibCategory::Unknown);
        agg.record("com.x", LibCategory::Payment);
        assert_eq!(agg.category_of("com.x"), Some(LibCategory::Payment));
        // And an Unknown arriving later does not clobber.
        agg.record("com.x", LibCategory::Unknown);
        assert_eq!(agg.category_of("com.x"), Some(LibCategory::Payment));
        assert_eq!(agg.len(), 1);
        assert!(!agg.is_empty());
    }

    #[test]
    fn iter_is_sorted() {
        let agg = unity();
        let names: Vec<&str> = agg.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn trie_agrees_with_oracle_on_listing2() {
        let agg = unity();
        for query in [
            "com.unity3d.example",
            "com.unity3d.ads.android.cache",
            "com.unity3d",
            "com.unity3dx.foo",
            "com.other",
            "io.unrelated",
        ] {
            assert_eq!(
                agg.longest_matching_prefix(query),
                agg.longest_matching_prefix_oracle(query),
                "{query}"
            );
            assert_eq!(
                agg.predict_category(query),
                agg.predict_category_oracle(query),
                "{query}"
            );
        }
    }

    #[test]
    fn record_invalidates_trie() {
        let mut agg = AggregatedLibraries::new();
        agg.record("com.a.lib", LibCategory::Payment);
        // Query builds the index...
        assert_eq!(agg.predict_category("com.a.lib.x"), LibCategory::Payment);
        // ...and a later record must be visible through it.
        agg.record("com.a.lib.x.deeper", LibCategory::Advertisement);
        assert_eq!(
            agg.longest_matching_prefix("com.a.lib.x.deeper.y"),
            Some("com.a.lib.x.deeper")
        );
        assert_eq!(
            agg.predict_category("com.a.lib.x.deeper.y"),
            LibCategory::Advertisement
        );
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let agg = unity();
        let json = serde_json::to_string(&agg).expect("serializes");
        let back: AggregatedLibraries = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.len(), agg.len());
        assert_eq!(
            back.longest_matching_prefix("com.unity3d.ads.android.cache"),
            Some("com.unity3d.ads")
        );
        assert_eq!(
            back.predict_category("com.unity3d.example"),
            LibCategory::GameEngine
        );
    }

    #[test]
    fn helper_functions() {
        assert!(is_dotted_prefix("a.b", "a.b.c"));
        assert!(is_dotted_prefix("a.b", "a.b"));
        assert!(!is_dotted_prefix("a.b", "a.bc"));
        assert_eq!(common_dotted_components("a.b.c", "a.b.x"), 2);
        assert_eq!(common_dotted_components("a", "b"), 0);
        assert_eq!(dotted_prefix("a.b.c", 2), "a.b");
    }
}
