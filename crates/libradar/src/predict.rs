//! Corpus-wide library aggregation, longest-prefix matching, and
//! majority-vote category prediction (paper §III-C/D, Listing 2).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::category::LibCategory;

/// The aggregated list of libraries LibRadar detected across the whole
/// corpus, with their categories — the lookup structure both heuristics
/// run against.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AggregatedLibraries {
    /// library package name -> category. BTreeMap keeps iteration (and
    /// therefore voting ties) deterministic.
    libs: BTreeMap<String, LibCategory>,
}

impl AggregatedLibraries {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a detected library. On repeated detection with differing
    /// categories, a non-`Unknown` category wins over `Unknown`
    /// (LibRadar output is occasionally missing the category for one
    /// app but not another).
    pub fn record(&mut self, name: &str, category: LibCategory) {
        match self.libs.get_mut(name) {
            Some(existing) => {
                if *existing == LibCategory::Unknown && category != LibCategory::Unknown {
                    *existing = category;
                }
            }
            None => {
                self.libs.insert(name.to_owned(), category);
            }
        }
    }

    /// Number of distinct libraries recorded.
    pub fn len(&self) -> usize {
        self.libs.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.libs.is_empty()
    }

    /// Exact category lookup.
    pub fn category_of(&self, name: &str) -> Option<LibCategory> {
        self.libs.get(name).copied()
    }

    /// Iterates over `(name, category)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, LibCategory)> {
        self.libs.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// The hierarchically greatest (longest) known library that is a
    /// dotted prefix of `package` — the paper's origin-library name
    /// resolution: "the longest matching prefix among all the libraries
    /// that LibRadar has detected across 25,000 apps".
    pub fn longest_matching_prefix(&self, package: &str) -> Option<&str> {
        let mut best: Option<&str> = None;
        for name in self.libs.keys() {
            if is_dotted_prefix(name, package)
                && best.is_none_or(|b| name.len() > b.len())
            {
                best = Some(name);
            }
        }
        best
    }

    /// Predicts the category of `package` per Listing 2:
    ///
    /// 1. find the longest common dotted prefix shared between `package`
    ///    and at least one known library;
    /// 2. collect the categories of all known libraries under that
    ///    prefix;
    /// 3. majority vote (ties broken by category order, which is
    ///    deterministic).
    ///
    /// Returns [`LibCategory::Unknown`] when no known library shares
    /// even one leading component.
    pub fn predict_category(&self, package: &str) -> LibCategory {
        // If the package *is* a known library or extends one, prefer the
        // longest matching library's own category when set.
        if let Some(best) = self.longest_matching_prefix(package) {
            let cat = self.libs[best];
            if cat != LibCategory::Unknown {
                return cat;
            }
        }
        // Longest common dotted prefix with any known library. A single
        // shared component (`com`, `org`, …) is organizationally
        // meaningless — TLD-style roots are shared by unrelated code —
        // so at least two components must match before voting.
        let mut common_len = 0usize;
        for name in self.libs.keys() {
            let len = common_dotted_components(name, package);
            common_len = common_len.max(len);
        }
        if common_len < 2 {
            return LibCategory::Unknown;
        }
        let prefix = dotted_prefix(package, common_len);
        // Vote among all libraries under the common prefix.
        let mut votes: BTreeMap<LibCategory, usize> = BTreeMap::new();
        for (name, cat) in &self.libs {
            if (is_dotted_prefix(&prefix, name) || name == &prefix)
                && *cat != LibCategory::Unknown
            {
                *votes.entry(*cat).or_default() += 1;
            }
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(cat, _)| cat)
            .unwrap_or(LibCategory::Unknown)
    }
}

/// `true` when `prefix` is a whole-component dotted prefix of `name`
/// (`com.unity3d` prefixes `com.unity3d.ads` but not `com.unity3dx`).
fn is_dotted_prefix(prefix: &str, name: &str) -> bool {
    name == prefix
        || (name.starts_with(prefix) && name.as_bytes().get(prefix.len()) == Some(&b'.'))
}

/// Number of leading dotted components `a` and `b` share.
fn common_dotted_components(a: &str, b: &str) -> usize {
    a.split('.')
        .zip(b.split('.'))
        .take_while(|(x, y)| x == y)
        .count()
}

/// The first `components` dotted components of `name`.
fn dotted_prefix(name: &str, components: usize) -> String {
    name.split('.')
        .take(components)
        .collect::<Vec<_>>()
        .join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Listing 2 universe.
    fn unity() -> AggregatedLibraries {
        let mut agg = AggregatedLibraries::new();
        agg.record("com.unity3d", LibCategory::GameEngine);
        agg.record("com.unity3d.ads", LibCategory::Advertisement);
        agg.record("com.unity3d.plugin.downloader", LibCategory::AppMarket);
        agg.record("com.unity3d.services", LibCategory::GameEngine);
        agg
    }

    #[test]
    fn listing2_majority_vote() {
        // com.unity3d.example: {Game Engine: 2, Advertisement: 1,
        // App Market: 1} -> Game Engine... except com.unity3d itself is
        // a known library with category Game Engine, matched by longest
        // prefix. Both paths agree with the paper.
        assert_eq!(
            unity().predict_category("com.unity3d.example"),
            LibCategory::GameEngine
        );
    }

    #[test]
    fn listing2_ads_cache_prediction() {
        // com.unity3d.ads.android.cache -> longest prefix com.unity3d.ads
        // (the only matching library) -> Advertisement.
        assert_eq!(
            unity().predict_category("com.unity3d.ads.android.cache"),
            LibCategory::Advertisement
        );
    }

    #[test]
    fn majority_vote_without_enclosing_library() {
        // No library is a prefix of the query, but a common prefix
        // exists: org.engine.* with two GameEngine siblings and one
        // Advertisement sibling.
        let mut agg = AggregatedLibraries::new();
        agg.record("org.engine.core", LibCategory::GameEngine);
        agg.record("org.engine.render", LibCategory::GameEngine);
        agg.record("org.engine.ads", LibCategory::Advertisement);
        assert_eq!(
            agg.predict_category("org.engine.example"),
            LibCategory::GameEngine
        );
    }

    #[test]
    fn longest_prefix_resolution() {
        let agg = unity();
        assert_eq!(
            agg.longest_matching_prefix("com.unity3d.ads.android.cache"),
            Some("com.unity3d.ads")
        );
        assert_eq!(
            agg.longest_matching_prefix("com.unity3d.services.core"),
            Some("com.unity3d.services")
        );
        assert_eq!(agg.longest_matching_prefix("com.unity3d"), Some("com.unity3d"));
        assert_eq!(agg.longest_matching_prefix("com.other"), None);
        // Component boundary: com.unity3dx must not match com.unity3d.
        assert_eq!(agg.longest_matching_prefix("com.unity3dx.foo"), None);
    }

    #[test]
    fn unknown_when_nothing_shared() {
        assert_eq!(
            unity().predict_category("io.totally.unrelated"),
            LibCategory::Unknown
        );
        assert_eq!(AggregatedLibraries::new().predict_category("a.b"), LibCategory::Unknown);
    }

    #[test]
    fn record_prefers_known_over_unknown() {
        let mut agg = AggregatedLibraries::new();
        agg.record("com.x", LibCategory::Unknown);
        agg.record("com.x", LibCategory::Payment);
        assert_eq!(agg.category_of("com.x"), Some(LibCategory::Payment));
        // And an Unknown arriving later does not clobber.
        agg.record("com.x", LibCategory::Unknown);
        assert_eq!(agg.category_of("com.x"), Some(LibCategory::Payment));
        assert_eq!(agg.len(), 1);
        assert!(!agg.is_empty());
    }

    #[test]
    fn iter_is_sorted() {
        let agg = unity();
        let names: Vec<&str> = agg.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn helper_functions() {
        assert!(is_dotted_prefix("a.b", "a.b.c"));
        assert!(is_dotted_prefix("a.b", "a.b"));
        assert!(!is_dotted_prefix("a.b", "a.bc"));
        assert_eq!(common_dotted_components("a.b.c", "a.b.x"), 2);
        assert_eq!(common_dotted_components("a", "b"), 0);
        assert_eq!(dotted_prefix("a.b.c", 2), "a.b");
    }
}
