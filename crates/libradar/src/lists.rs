//! Advertisement/tracker (AnT) and common-library (CL) lists.
//!
//! The paper augments LibRadar's categories with Li et al.'s curated
//! lists of common libraries and advertisement/tracker libraries
//! (§III-D, Figure 6). Lists are whole-component package-prefix sets.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// The two curated library lists used by Figure 6.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LibraryLists {
    ant: BTreeSet<String>,
    common: BTreeSet<String>,
}

impl LibraryLists {
    /// Creates empty lists.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds lists from package prefixes.
    pub fn from_prefixes<A, C>(ant: A, common: C) -> Self
    where
        A: IntoIterator,
        A::Item: Into<String>,
        C: IntoIterator,
        C::Item: Into<String>,
    {
        LibraryLists {
            ant: ant.into_iter().map(Into::into).collect(),
            common: common.into_iter().map(Into::into).collect(),
        }
    }

    /// Adds an advertisement/tracker prefix.
    pub fn add_ant(&mut self, prefix: &str) {
        self.ant.insert(prefix.to_owned());
    }

    /// Adds a common-library prefix.
    pub fn add_common(&mut self, prefix: &str) {
        self.common.insert(prefix.to_owned());
    }

    /// `true` when `package` falls under any AnT prefix.
    pub fn is_ant(&self, package: &str) -> bool {
        Self::matches(&self.ant, package)
    }

    /// `true` when `package` falls under any common-library prefix.
    pub fn is_common(&self, package: &str) -> bool {
        Self::matches(&self.common, package)
    }

    /// Number of AnT prefixes.
    pub fn ant_len(&self) -> usize {
        self.ant.len()
    }

    /// Number of common-library prefixes.
    pub fn common_len(&self) -> usize {
        self.common.len()
    }

    fn matches(set: &BTreeSet<String>, package: &str) -> bool {
        set.iter().any(|prefix| {
            package == prefix
                || (package.starts_with(prefix.as_str())
                    && package.as_bytes().get(prefix.len()) == Some(&b'.'))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matching_is_component_aware() {
        let lists = LibraryLists::from_prefixes(
            ["com.adnet", "io.tracker"],
            ["okhttp3", "com.squareup.picasso"],
        );
        assert!(lists.is_ant("com.adnet"));
        assert!(lists.is_ant("com.adnet.banner.view"));
        assert!(!lists.is_ant("com.adnetwork"));
        assert!(lists.is_common("okhttp3.internal.http"));
        assert!(!lists.is_common("com.adnet"));
        assert_eq!(lists.ant_len(), 2);
        assert_eq!(lists.common_len(), 2);
    }

    #[test]
    fn incremental_adds() {
        let mut lists = LibraryLists::new();
        assert!(!lists.is_ant("a.b"));
        lists.add_ant("a.b");
        lists.add_common("c.d");
        assert!(lists.is_ant("a.b.c"));
        assert!(lists.is_common("c.d"));
    }

    #[test]
    fn lists_are_independent() {
        let mut lists = LibraryLists::new();
        lists.add_ant("x.ads");
        assert!(!lists.is_common("x.ads"));
    }
}
