//! The third-party library universe.
//!
//! Each template describes one real-world library (names match the ones
//! the paper's Figure 3 and our own experience with LibRadar's output
//! surface): its package, category, AnT/common-list membership, and a
//! relative popularity weight. A template *instantiates* into an app as
//! a deterministic set of methods — identical structure in every app,
//! which is what lets the LibRadar-style fingerprint recognize it — with
//! the app-specific network operands (domains, byte counts) filled in.
//!
//! Instance layout (per template):
//!
//! * an **init entry** (`…Sdk.init`) the app calls from
//!   `Application.onCreate`; it schedules the two background fetchers
//!   asynchronously (ad SDKs load their configs and creatives off the
//!   main thread — which is also what makes the traffic attributable to
//!   the *library* rather than the caller);
//! * two **background fetchers** each performing one [`NetworkOp`];
//! * a **refresh entry** reachable from UI handlers, scheduling a small
//!   refresh fetch (banner rotation);
//! * deterministic **filler methods** giving the library realistic bulk.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spector_dex::model::{
    CodeItem, Connector, DexFile, Dispatcher, Instruction, MethodDef, MethodRef, NetworkOp,
};
use spector_dex::sig::MethodSig;
use spector_libradar::{LibCategory, LibraryDb, LibraryLists, StructuralIndex};

/// One library in the universe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LibraryTemplate {
    /// Canonical package prefix.
    pub package: &'static str,
    /// LibRadar category.
    pub category: LibCategory,
    /// Member of Li et al.'s advertisement/tracker list.
    pub is_ant: bool,
    /// Member of Li et al.'s common-libraries list.
    pub is_common: bool,
    /// Relative inclusion weight among templates of the same category.
    pub weight: f64,
}

macro_rules! lib {
    ($pkg:literal, $cat:ident, ant = $ant:literal, common = $common:literal, w = $w:literal) => {
        LibraryTemplate {
            package: $pkg,
            category: LibCategory::$cat,
            is_ant: $ant,
            is_common: $common,
            weight: $w,
        }
    };
}

/// The full template universe (~70 libraries).
pub const LIBRARY_TEMPLATES: &[LibraryTemplate] = &[
    // Advertisement networks (AnT).
    lib!(
        "com.unity3d.ads",
        Advertisement,
        ant = true,
        common = false,
        w = 9.0
    ),
    lib!(
        "com.vungle.publisher",
        Advertisement,
        ant = true,
        common = false,
        w = 8.0
    ),
    lib!(
        "com.google.android.gms.internal.ads",
        Advertisement,
        ant = true,
        common = true,
        w = 10.0
    ),
    lib!(
        "com.chartboost.sdk",
        Advertisement,
        ant = true,
        common = false,
        w = 6.0
    ),
    lib!(
        "com.ironsource.sdk",
        Advertisement,
        ant = true,
        common = false,
        w = 6.0
    ),
    lib!(
        "com.applovin.impl.sdk",
        Advertisement,
        ant = true,
        common = false,
        w = 5.0
    ),
    lib!(
        "com.adcolony",
        Advertisement,
        ant = true,
        common = false,
        w = 4.0
    ),
    lib!(
        "com.facebook.ads",
        Advertisement,
        ant = true,
        common = false,
        w = 6.0
    ),
    lib!(
        "com.mopub.mobileads",
        Advertisement,
        ant = true,
        common = false,
        w = 4.0
    ),
    lib!(
        "com.inmobi.ads",
        Advertisement,
        ant = true,
        common = false,
        w = 3.0
    ),
    lib!(
        "com.millennialmedia",
        Advertisement,
        ant = true,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.startapp.android",
        Advertisement,
        ant = true,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.tapjoy",
        Advertisement,
        ant = true,
        common = false,
        w = 3.0
    ),
    lib!(
        "com.smaato.soma",
        Advertisement,
        ant = true,
        common = false,
        w = 1.5
    ),
    lib!(
        "com.amazon.device.ads",
        Advertisement,
        ant = true,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.flurry.android.ads",
        Advertisement,
        ant = true,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.heyzap.sdk",
        Advertisement,
        ant = true,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.fyber.ads",
        Advertisement,
        ant = true,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.appnext.ads",
        Advertisement,
        ant = true,
        common = false,
        w = 1.0
    ),
    lib!(
        "net.pubnative.library",
        Advertisement,
        ant = true,
        common = false,
        w = 1.0
    ),
    // Mobile analytics / trackers (AnT).
    lib!(
        "com.google.android.gms.analytics",
        MobileAnalytics,
        ant = true,
        common = true,
        w = 9.0
    ),
    lib!(
        "com.google.firebase.analytics",
        MobileAnalytics,
        ant = true,
        common = true,
        w = 8.0
    ),
    lib!(
        "com.crashlytics.android",
        MobileAnalytics,
        ant = true,
        common = true,
        w = 6.0
    ),
    lib!(
        "com.flurry.sdk",
        MobileAnalytics,
        ant = true,
        common = false,
        w = 4.0
    ),
    lib!(
        "com.mixpanel.android",
        MobileAnalytics,
        ant = true,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.appsflyer",
        MobileAnalytics,
        ant = true,
        common = false,
        w = 3.0
    ),
    lib!(
        "com.adjust.sdk",
        MobileAnalytics,
        ant = true,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.umeng.analytics",
        MobileAnalytics,
        ant = true,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.localytics.android",
        MobileAnalytics,
        ant = true,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.amplitude.api",
        MobileAnalytics,
        ant = true,
        common = false,
        w = 1.0
    ),
    // Development aid.
    lib!(
        "okhttp3.internal",
        DevelopmentAid,
        ant = false,
        common = true,
        w = 10.0
    ),
    lib!(
        "com.squareup.okhttp",
        DevelopmentAid,
        ant = false,
        common = true,
        w = 5.0
    ),
    lib!(
        "com.squareup.picasso",
        DevelopmentAid,
        ant = false,
        common = true,
        w = 6.0
    ),
    lib!(
        "com.bumptech.glide",
        DevelopmentAid,
        ant = false,
        common = true,
        w = 8.0
    ),
    lib!(
        "com.nostra13.universalimageloader",
        DevelopmentAid,
        ant = false,
        common = true,
        w = 4.0
    ),
    lib!(
        "com.android.volley",
        DevelopmentAid,
        ant = false,
        common = true,
        w = 6.0
    ),
    lib!(
        "retrofit2",
        DevelopmentAid,
        ant = false,
        common = true,
        w = 5.0
    ),
    lib!(
        "com.loopj.android.http",
        DevelopmentAid,
        ant = false,
        common = true,
        w = 2.0
    ),
    lib!(
        "com.amazon.whispersync",
        DevelopmentAid,
        ant = false,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.koushikdutta.ion",
        DevelopmentAid,
        ant = false,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.octo.android.robospice",
        DevelopmentAid,
        ant = false,
        common = false,
        w = 1.0
    ),
    lib!(
        "bestdict.common",
        DevelopmentAid,
        ant = false,
        common = false,
        w = 1.0
    ),
    // Game engines.
    lib!(
        "com.unity3d.player",
        GameEngine,
        ant = false,
        common = false,
        w = 10.0
    ),
    lib!(
        "com.unity3d.services",
        GameEngine,
        ant = false,
        common = false,
        w = 5.0
    ),
    lib!(
        "com.gameloft",
        GameEngine,
        ant = false,
        common = false,
        w = 5.0
    ),
    lib!(
        "org.cocos2dx.lib",
        GameEngine,
        ant = false,
        common = false,
        w = 4.0
    ),
    lib!(
        "com.badlogic.gdx",
        GameEngine,
        ant = false,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.ansca.corona",
        GameEngine,
        ant = false,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.epicgames.ue4",
        GameEngine,
        ant = false,
        common = false,
        w = 1.0
    ),
    // Social networks.
    lib!(
        "com.facebook.android",
        SocialNetwork,
        ant = false,
        common = true,
        w = 6.0
    ),
    lib!(
        "com.twitter.sdk.android",
        SocialNetwork,
        ant = false,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.vk.sdk",
        SocialNetwork,
        ant = false,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.tencent.mm.opensdk",
        SocialNetwork,
        ant = false,
        common = false,
        w = 1.5
    ),
    lib!(
        "com.linkedin.platform",
        SocialNetwork,
        ant = false,
        common = false,
        w = 0.5
    ),
    // Payment.
    lib!(
        "com.paypal.android.sdk",
        Payment,
        ant = false,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.braintreepayments.api",
        Payment,
        ant = false,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.stripe.android",
        Payment,
        ant = false,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.android.billingclient",
        Payment,
        ant = false,
        common = true,
        w = 3.0
    ),
    // Digital identity.
    lib!(
        "com.google.android.gms.auth",
        DigitalIdentity,
        ant = false,
        common = true,
        w = 4.0
    ),
    lib!(
        "com.facebook.login",
        DigitalIdentity,
        ant = false,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.firebase.ui.auth",
        DigitalIdentity,
        ant = false,
        common = false,
        w = 1.0
    ),
    // GUI components.
    lib!(
        "com.airbnb.lottie",
        GuiComponent,
        ant = false,
        common = true,
        w = 3.0
    ),
    lib!(
        "com.github.mikephil.charting",
        GuiComponent,
        ant = false,
        common = true,
        w = 2.0
    ),
    lib!(
        "com.handmark.pulltorefresh",
        GuiComponent,
        ant = false,
        common = true,
        w = 1.0
    ),
    lib!(
        "uk.co.senab.photoview",
        GuiComponent,
        ant = false,
        common = true,
        w = 1.0
    ),
    // Map / LBS.
    lib!(
        "com.google.android.gms.maps",
        MapLbs,
        ant = false,
        common = true,
        w = 4.0
    ),
    lib!(
        "com.mapbox.mapboxsdk",
        MapLbs,
        ant = false,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.baidu.location",
        MapLbs,
        ant = false,
        common = false,
        w = 1.0
    ),
    // Development frameworks.
    lib!(
        "org.apache.cordova",
        DevelopmentFramework,
        ant = false,
        common = false,
        w = 2.0
    ),
    lib!(
        "com.adobe.phonegap",
        DevelopmentFramework,
        ant = false,
        common = false,
        w = 1.0
    ),
    // App market.
    lib!(
        "com.unity3d.plugin.downloader",
        AppMarket,
        ant = false,
        common = false,
        w = 1.0
    ),
    lib!(
        "com.amazon.venezia",
        AppMarket,
        ant = false,
        common = false,
        w = 1.0
    ),
    // Utility.
    lib!(
        "com.evernote.android.job",
        Utility,
        ant = false,
        common = false,
        w = 2.0
    ),
    lib!(
        "net.hockeyapp.android",
        Utility,
        ant = false,
        common = false,
        w = 2.0
    ),
    lib!("org.acra", Utility, ant = false, common = false, w = 1.5),
    lib!("com.parse", Utility, ant = false, common = false, w = 1.5),
    lib!(
        "io.realm.sync",
        Utility,
        ant = false,
        common = false,
        w = 1.0
    ),
];

/// Templates of one category, with weights.
pub fn templates_of(category: LibCategory) -> Vec<&'static LibraryTemplate> {
    LIBRARY_TEMPLATES
        .iter()
        .filter(|t| t.category == category)
        .collect()
}

/// Builds Li et al.'s AnT/common lists from the template flags.
pub fn library_lists() -> LibraryLists {
    LibraryLists::from_prefixes(
        LIBRARY_TEMPLATES
            .iter()
            .filter(|t| t.is_ant)
            .map(|t| t.package),
        LIBRARY_TEMPLATES
            .iter()
            .filter(|t| t.is_common)
            .map(|t| t.package),
    )
}

/// A library instantiated into one app.
#[derive(Debug, Clone)]
pub struct InstantiatedLibrary {
    /// The source template.
    pub template: &'static LibraryTemplate,
    /// Methods, with internal invoke indices already offset by the
    /// caller-provided base index.
    pub methods: Vec<MethodDef>,
    /// `Application.onCreate`-time entry point.
    pub init_entry: MethodSig,
    /// UI-handler-reachable refresh entry point.
    pub refresh_entry: MethodSig,
    /// The methods that own each network op (for ground truth):
    /// `(owning method sig, op)` in the order bg0, bg1, refresh.
    pub owned_ops: Vec<(MethodSig, NetworkOp)>,
}

/// Network operands for one instantiation.
#[derive(Debug, Clone)]
pub struct LibraryOps {
    /// Background fetch performed at init (bulk of the volume).
    pub bg0: NetworkOp,
    /// Second background fetch at init.
    pub bg1: NetworkOp,
    /// Small per-refresh fetch, re-run on UI events.
    pub refresh: NetworkOp,
}

/// The dispatcher a template schedules its fetches on — fixed per
/// template (part of the structure), derived from the package name.
pub fn template_dispatcher(template: &LibraryTemplate) -> Dispatcher {
    match fnv1a(template.package) % 3 {
        0 => Dispatcher::AsyncTask,
        1 => Dispatcher::Executor,
        _ => Dispatcher::Thread,
    }
}

/// The client chain a template connects through — fixed per template.
pub fn template_connector(template: &LibraryTemplate) -> Connector {
    match fnv1a(template.package) % 4 {
        0..=1 => Connector::AndroidOkHttp,
        2 => Connector::ApacheHttp,
        _ => Connector::DirectSocket,
    }
}

/// Instantiates `template` into concrete methods. `base_index` is the
/// position in the app's method table where these methods will be
/// appended (internal invoke targets are absolute indices).
///
/// The *structure* — sub-packages, classes, method names, descriptors,
/// instruction opcodes — depends only on the template, so the LibRadar
/// fingerprint matches across apps; only the network operands differ.
pub fn instantiate(
    template: &'static LibraryTemplate,
    base_index: u32,
    ops: &LibraryOps,
) -> InstantiatedLibrary {
    let mut rng = SmallRng::seed_from_u64(fnv1a(template.package));
    let pkg = template.package;
    let dispatcher = template_dispatcher(template);

    let mut methods: Vec<MethodDef> = Vec::new();
    // Index helpers are relative; converted to absolute at push time.
    let abs = |i: usize| base_index + i as u32;

    // 0: init entry.
    let init_sig = MethodSig::new(pkg, "Sdk", "init", "(Landroid/content/Context;)V");
    // 1: bg fetcher 0 — AsyncTask-style naming, in a sub-package.
    let bg0_sig = MethodSig::new(
        &format!("{pkg}.cache"),
        "b",
        "doInBackground",
        "([Ljava/lang/Object;)Ljava/lang/Object;",
    );
    // 2: bg fetcher 1.
    let bg1_sig = MethodSig::new(&format!("{pkg}.network"), "Fetcher", "run", "()V");
    // 3: refresh entry.
    let refresh_sig = MethodSig::new(pkg, "Sdk", "refresh", "()V");
    // 4: refresh bg worker.
    let bgr_sig = MethodSig::new(&format!("{pkg}.cache"), "c", "run", "()V");

    methods.push(MethodDef {
        sig: init_sig.clone(),
        code: CodeItem {
            instructions: vec![
                Instruction::Const(1),
                Instruction::Invoke(MethodRef::External(MethodSig::new(
                    "android.util",
                    "Log",
                    "d",
                    "(Ljava/lang/String;Ljava/lang/String;)I",
                ))),
                Instruction::InvokeAsync {
                    dispatcher,
                    target: MethodRef::Internal(abs(1)),
                },
                Instruction::InvokeAsync {
                    dispatcher,
                    target: MethodRef::Internal(abs(2)),
                },
                Instruction::Invoke(MethodRef::Internal(abs(5))),
                Instruction::Return,
            ],
        },
    });
    methods.push(MethodDef {
        sig: bg0_sig.clone(),
        code: CodeItem {
            instructions: vec![
                Instruction::Const(2),
                Instruction::Network(ops.bg0.clone()),
                Instruction::Return,
            ],
        },
    });
    methods.push(MethodDef {
        sig: bg1_sig.clone(),
        code: CodeItem {
            instructions: vec![Instruction::Network(ops.bg1.clone()), Instruction::Return],
        },
    });
    methods.push(MethodDef {
        sig: refresh_sig.clone(),
        code: CodeItem {
            instructions: vec![
                Instruction::InvokeAsync {
                    dispatcher,
                    target: MethodRef::Internal(abs(4)),
                },
                Instruction::Return,
            ],
        },
    });
    methods.push(MethodDef {
        sig: bgr_sig.clone(),
        code: CodeItem {
            instructions: vec![
                Instruction::Network(ops.refresh.clone()),
                Instruction::Return,
            ],
        },
    });

    // Filler: deterministic count and structure per template. The first
    // filler (index 5) is invoked from init (coverage realism); the rest
    // form short chains that the runtime never reaches.
    let filler_count = 12 + (rng.gen_range(0..32)) as usize;
    let subpackages = ["", ".internal", ".model", ".util"];
    // Descriptor shapes drawn from the template-seeded rng: libraries
    // genuinely differ in their signature-shape distributions, and
    // descriptors survive identifier mangling, so this is what keeps
    // structurally similar templates apart in the profile space.
    let filler_descriptors = [
        "()V",
        "(I)V",
        "(J)V",
        "(Z)Z",
        "(II)I",
        "(Ljava/lang/String;)I",
        "([B)V",
    ];
    for i in 0..filler_count {
        let sub = subpackages[i % subpackages.len()];
        let descriptor = filler_descriptors[rng.gen_range(0..filler_descriptors.len())];
        let sig = MethodSig::new(
            &format!("{pkg}{sub}"),
            &format!("C{}", i / 3),
            &format!("m{i}"),
            descriptor,
        );
        let mut instructions = vec![Instruction::Const(i as u32)];
        // Chain to the next filler within the same template, sometimes.
        if i + 1 < filler_count && rng.gen_bool(0.5) {
            instructions.push(Instruction::Invoke(MethodRef::Internal(abs(5 + i + 1))));
        }
        instructions.push(Instruction::Return);
        methods.push(MethodDef {
            sig,
            code: CodeItem { instructions },
        });
    }

    InstantiatedLibrary {
        template,
        methods,
        init_entry: init_sig,
        refresh_entry: refresh_sig,
        owned_ops: vec![
            (bg0_sig, ops.bg0.clone()),
            (bg1_sig, ops.bg1.clone()),
            (bgr_sig, ops.refresh.clone()),
        ],
    }
}

/// Builds the LibRadar fingerprint database over the whole universe
/// (using placeholder operands — operands do not affect fingerprints).
pub fn build_library_db() -> LibraryDb {
    let mut db = LibraryDb::new();
    let placeholder = LibraryOps {
        bg0: placeholder_op(),
        bg1: placeholder_op(),
        refresh: placeholder_op(),
    };
    for template in LIBRARY_TEMPLATES {
        let instance = instantiate(template, 0, &placeholder);
        let dex = DexFile {
            methods: instance.methods,
            classes: vec![],
        };
        db.add_library(template.package, template.category, &dex);
    }
    db
}

/// Builds the structural-profile index over the whole universe — the
/// obfuscation-resistant twin of [`build_library_db`]. Operands do not
/// affect structural profiles either.
pub fn build_structural_index() -> StructuralIndex {
    let mut index = StructuralIndex::new();
    let placeholder = LibraryOps {
        bg0: placeholder_op(),
        bg1: placeholder_op(),
        refresh: placeholder_op(),
    };
    for template in LIBRARY_TEMPLATES {
        let instance = instantiate(template, 0, &placeholder);
        let dex = DexFile {
            methods: instance.methods,
            classes: vec![],
        };
        index.add_library(template.package, template.category, &dex);
    }
    index
}

fn placeholder_op() -> NetworkOp {
    NetworkOp {
        domain: "placeholder.invalid".into(),
        port: 443,
        send_bytes: 0,
        recv_bytes: 0,
        connector: Connector::AndroidOkHttp,
        shape: spector_dex::model::WireShape::Plain,
    }
}

pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_covers_all_categories_with_unique_packages() {
        let mut packages: Vec<&str> = LIBRARY_TEMPLATES.iter().map(|t| t.package).collect();
        packages.sort_unstable();
        packages.dedup();
        assert_eq!(packages.len(), LIBRARY_TEMPLATES.len());
        for cat in LibCategory::ALL {
            if cat == LibCategory::Unknown {
                continue;
            }
            assert!(
                !templates_of(cat).is_empty(),
                "category {cat} has no templates"
            );
        }
    }

    #[test]
    fn template_structural_profiles_are_pairwise_distinct() {
        use spector_dex::subtree_profile;

        let placeholder = LibraryOps {
            bg0: placeholder_op(),
            bg1: placeholder_op(),
            refresh: placeholder_op(),
        };
        let mut profiles = Vec::new();
        for template in LIBRARY_TEMPLATES {
            let instance = instantiate(template, 0, &placeholder);
            let dex = DexFile {
                methods: instance.methods,
                classes: vec![],
            };
            profiles.push((template.package, subtree_profile(&dex, template.package)));
        }
        for (i, (name_a, a)) in profiles.iter().enumerate() {
            for (name_b, b) in &profiles[i + 1..] {
                assert_ne!(
                    a, b,
                    "{name_a} and {name_b} are structurally indistinguishable"
                );
            }
        }
    }

    #[test]
    fn ant_list_is_ads_plus_analytics() {
        let lists = library_lists();
        assert!(lists.is_ant("com.unity3d.ads.android.cache"));
        assert!(lists.is_ant("com.appsflyer.internal"));
        assert!(!lists.is_ant("com.unity3d.player"));
        assert!(lists.is_common("okhttp3.internal.http"));
        assert!(!lists.is_common("com.vungle.publisher"));
    }

    #[test]
    fn instantiation_structure_is_operand_independent() {
        let template = &LIBRARY_TEMPLATES[0];
        let ops_a = LibraryOps {
            bg0: NetworkOp {
                domain: "a.example".into(),
                port: 443,
                send_bytes: 10,
                recv_bytes: 1_000,
                connector: template_connector(template),
                shape: spector_dex::model::WireShape::Plain,
            },
            bg1: placeholder_op(),
            refresh: placeholder_op(),
        };
        let ops_b = LibraryOps {
            bg0: NetworkOp {
                domain: "b.example".into(),
                port: 80,
                send_bytes: 99,
                recv_bytes: 2_000,
                connector: template_connector(template),
                shape: spector_dex::model::WireShape::Plain,
            },
            bg1: placeholder_op(),
            refresh: placeholder_op(),
        };
        let a = instantiate(template, 0, &ops_a);
        let b = instantiate(template, 0, &ops_b);
        assert_eq!(a.methods.len(), b.methods.len());
        for (ma, mb) in a.methods.iter().zip(&b.methods) {
            assert_eq!(ma.sig, mb.sig);
            assert_eq!(ma.code.instructions.len(), mb.code.instructions.len());
        }
    }

    #[test]
    fn db_detects_every_template() {
        let db = build_library_db();
        assert_eq!(db.len(), LIBRARY_TEMPLATES.len());
        // Each template, instantiated with arbitrary operands at a
        // nonzero base, is still detected.
        for template in LIBRARY_TEMPLATES.iter().take(10) {
            let ops = LibraryOps {
                bg0: NetworkOp {
                    domain: "x.example".into(),
                    port: 443,
                    send_bytes: 5,
                    recv_bytes: 50,
                    connector: template_connector(template),
                    shape: spector_dex::model::WireShape::Plain,
                },
                bg1: placeholder_op(),
                refresh: placeholder_op(),
            };
            let instance = instantiate(template, 100, &ops);
            // Shift into a dex with 100 dummy methods so absolute refs hold.
            let mut methods: Vec<MethodDef> = (0..100)
                .map(|i| MethodDef {
                    sig: MethodSig::new("com.pad", "P", &format!("p{i}"), "()V"),
                    code: CodeItem::default(),
                })
                .collect();
            methods.extend(instance.methods);
            let dex = DexFile {
                methods,
                classes: vec![],
            };
            let detected = db.detect(&dex);
            assert!(
                detected.iter().any(|d| d.name == template.package),
                "{} not detected",
                template.package
            );
        }
    }

    #[test]
    fn instance_internal_refs_in_bounds_after_offset() {
        let template = &LIBRARY_TEMPLATES[3];
        let ops = LibraryOps {
            bg0: placeholder_op(),
            bg1: placeholder_op(),
            refresh: placeholder_op(),
        };
        let base = 57;
        let instance = instantiate(template, base, &ops);
        let lo = base;
        let hi = base + instance.methods.len() as u32;
        for m in &instance.methods {
            for r in m.code.invokes() {
                if let MethodRef::Internal(idx) = r {
                    assert!(*idx >= lo && *idx < hi, "ref {idx} outside [{lo},{hi})");
                }
            }
        }
    }

    #[test]
    fn dispatcher_and_connector_are_stable() {
        for t in LIBRARY_TEMPLATES {
            assert_eq!(template_dispatcher(t), template_dispatcher(t));
            assert_eq!(template_connector(t), template_connector(t));
        }
    }
}
