//! Seeded synthetic obfuscator: the ground-truth generator for the
//! obfuscation-resistant detection tier.
//!
//! Real obfuscators (ProGuard/R8, DexGuard, Allatori) attack exactly the
//! evidence the fast detection paths rely on: the package name the
//! `LibTrie` prefix-matches, and the identifier strings the exact
//! `LibraryDb` fingerprint hashes. This module reproduces those attacks
//! on generated apps, in cumulative tiers, while *keeping the app
//! runnable* (first-party code and manifest entry points untouched,
//! internal references fixed up) and emitting the canonical-root →
//! obfuscated-root mapping as ground truth for the precision/recall
//! harness.
//!
//! Tier semantics (each includes the previous):
//!
//! * [`ObfuscationTier::Rename`] — every instantiated library subtree is
//!   re-rooted under a fresh two-component package (`com.unity3d.ads` →
//!   `qx.ab`). Kills the trie; the exact fingerprint survives because
//!   identifiers *below* the root are unchanged.
//! * [`ObfuscationTier::Mangle`] — class and method identifiers inside
//!   library subtrees are replaced by sequential single letters. Kills
//!   the exact fingerprint; structural profiles survive because no
//!   identifier reaches their hashes.
//! * [`ObfuscationTier::Junk`] — the method table is permuted
//!   (references fixed up) and `Nop`/`Const` filler is injected into
//!   library method bodies. Structural profiles still survive: degrees
//!   are identity-based and filler opcodes are uncounted.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spector_dex::model::{DexFile, Instruction, MethodRef};
use spector_dex::sig::MethodSig;
use spector_dex::Apk;

use crate::appgen::GeneratedApp;
use crate::libraries::{fnv1a, LIBRARY_TEMPLATES};
use crate::Corpus;

/// Cumulative obfuscation levels, weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObfuscationTier {
    /// Identity transform (the unobfuscated baseline).
    None,
    /// Library package roots renamed to fresh two-component packages.
    Rename,
    /// Rename + class/method identifiers mangled to sequential letters.
    Mangle,
    /// Mangle + method-table reordering and junk no-op injection.
    Junk,
}

impl ObfuscationTier {
    /// All tiers, weakest to strongest.
    pub const ALL: [ObfuscationTier; 4] = [
        ObfuscationTier::None,
        ObfuscationTier::Rename,
        ObfuscationTier::Mangle,
        ObfuscationTier::Junk,
    ];

    /// Stable lowercase label (CLI/CI spelling).
    pub fn label(self) -> &'static str {
        match self {
            ObfuscationTier::None => "none",
            ObfuscationTier::Rename => "rename",
            ObfuscationTier::Mangle => "mangle",
            ObfuscationTier::Junk => "junk",
        }
    }
}

impl fmt::Display for ObfuscationTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ObfuscationTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ObfuscationTier::ALL
            .into_iter()
            .find(|t| t.label() == s)
            .ok_or_else(|| format!("unknown obfuscation tier {s:?} (none|rename|mangle|junk)"))
    }
}

/// Per-app ground truth: canonical library root → root as it appears in
/// the obfuscated dex (identity below [`ObfuscationTier::Rename`]).
pub type LibraryMapping = BTreeMap<String, String>;

/// First package components an obfuscated root must avoid: the builtin
/// filter's namespaces plus every first component used by templates or
/// generated first-party code, so a fresh root can never sit inside an
/// existing subtree or get skipped as a framework frame.
const BLOCKED_FIRST: &[&str] = &[
    "com", "org", "net", "io", "uk", "java", "javax", "sun", "android", "dalvik", "junit",
];

/// Canonical template roots instantiated in `dex` (component-aligned
/// subtree membership; templates are prefix-free so matches are unique).
pub fn library_roots(dex: &DexFile) -> Vec<&'static str> {
    let mut roots = Vec::new();
    for template in LIBRARY_TEMPLATES {
        let present = dex
            .methods
            .iter()
            .any(|m| in_subtree(&m.sig.package(), template.package));
        if present {
            roots.push(template.package);
        }
    }
    roots
}

fn in_subtree(pkg: &str, prefix: &str) -> bool {
    pkg == prefix || (pkg.starts_with(prefix) && pkg.as_bytes().get(prefix.len()) == Some(&b'.'))
}

/// Rewrites dotted `pkg` through the root `mapping` (longest — i.e. only,
/// since roots are disjoint — matching root wins).
pub fn map_package(pkg: &str, mapping: &LibraryMapping) -> String {
    for (root, obf) in mapping {
        if in_subtree(pkg, root) {
            return format!("{obf}{}", &pkg[root.len()..]);
        }
    }
    pkg.to_owned()
}

fn base26(mut n: usize) -> String {
    let mut out = String::new();
    loop {
        out.insert(0, (b'a' + (n % 26) as u8) as char);
        n /= 26;
        if n == 0 {
            break;
        }
        n -= 1;
    }
    out
}

/// Obfuscates `dex` in place at `tier`, treating `roots` as the library
/// subtrees. Returns the canonical-root → final-root mapping (empty at
/// [`ObfuscationTier::None`], identity values at tiers that do not
/// rename). Deterministic in `(tier, seed)`.
pub fn obfuscate_dex(
    dex: &mut DexFile,
    roots: &[&str],
    tier: ObfuscationTier,
    seed: u64,
) -> LibraryMapping {
    let mut mapping = LibraryMapping::new();
    if tier == ObfuscationTier::None {
        return mapping;
    }

    // --- Rename: re-root each library subtree -----------------------------
    let mut used_first: std::collections::BTreeSet<String> = dex
        .methods
        .iter()
        .filter_map(|m| {
            let pkg = m.sig.package();
            pkg.split('.').next().map(str::to_owned)
        })
        .chain(BLOCKED_FIRST.iter().map(|s| (*s).to_owned()))
        .collect();
    for root in roots {
        let mut rng = SmallRng::seed_from_u64(seed ^ fnv1a(root));
        let obf = loop {
            let comp = |rng: &mut SmallRng| {
                let len = rng.gen_range(2..=4usize);
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                    .collect::<String>()
            };
            let first = comp(&mut rng);
            if used_first.contains(&first) {
                continue;
            }
            used_first.insert(first.clone());
            break format!("{first}.{}", comp(&mut rng));
        };
        mapping.insert((*root).to_owned(), obf);
    }
    for m in &mut dex.methods {
        let pkg = m.sig.package();
        let mapped = map_package(&pkg, &mapping);
        if mapped != pkg {
            m.sig = MethodSig::new(
                &mapped,
                m.sig.class_name(),
                m.sig.method_name(),
                m.sig.descriptor(),
            );
        }
    }
    for class in &mut dex.classes {
        if let Some((pkg, name)) = class.dotted_name.rsplit_once('.') {
            let mapped = map_package(pkg, &mapping);
            if mapped != pkg {
                class.dotted_name = format!("{mapped}.{name}");
            }
        }
    }

    // --- Mangle: sequential class/method identifiers ----------------------
    if tier >= ObfuscationTier::Mangle {
        // Injective per package: each distinct original class gets the
        // next letter; each method within a (package, class) likewise.
        let mut class_names: BTreeMap<(String, String), String> = BTreeMap::new();
        let mut classes_in: BTreeMap<String, usize> = BTreeMap::new();
        let mut methods_in: BTreeMap<(String, String), usize> = BTreeMap::new();
        let in_lib =
            |pkg: &str, mapping: &LibraryMapping| mapping.values().any(|obf| in_subtree(pkg, obf));
        for m in &mut dex.methods {
            let pkg = m.sig.package();
            if !in_lib(&pkg, &mapping) {
                continue;
            }
            let class = class_names
                .entry((pkg.clone(), m.sig.class_name().to_owned()))
                .or_insert_with(|| {
                    let n = classes_in.entry(pkg.clone()).or_insert(0);
                    let name = base26(*n);
                    *n += 1;
                    name
                })
                .clone();
            let mi = methods_in.entry((pkg.clone(), class.clone())).or_insert(0);
            let method = base26(*mi);
            *mi += 1;
            m.sig = MethodSig::new(&pkg, &class, &method, m.sig.descriptor());
        }
        for class in &mut dex.classes {
            if let Some((pkg, name)) = class.dotted_name.rsplit_once('.') {
                if let Some(new) = class_names.get(&(pkg.to_owned(), name.to_owned())) {
                    class.dotted_name = format!("{pkg}.{new}");
                }
            }
        }
    }

    // --- Junk: reorder the method table, inject filler ---------------------
    if tier >= ObfuscationTier::Junk {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x6a75_6e6b);
        let n = dex.methods.len();
        // `perm[new] = old` by Fisher–Yates; then fix every reference.
        let mut perm: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut new_of = vec![0u32; n];
        for (new, &old) in perm.iter().enumerate() {
            new_of[old as usize] = new as u32;
        }
        let mut reordered = Vec::with_capacity(n);
        for &old in &perm {
            reordered.push(dex.methods[old as usize].clone());
        }
        dex.methods = reordered;
        for m in &mut dex.methods {
            for inst in &mut m.code.instructions {
                match inst {
                    Instruction::Invoke(MethodRef::Internal(t))
                    | Instruction::InvokeAsync {
                        target: MethodRef::Internal(t),
                        ..
                    } => *t = new_of[*t as usize],
                    _ => {}
                }
            }
        }
        for class in &mut dex.classes {
            for idx in &mut class.method_indices {
                *idx = new_of[*idx as usize];
            }
        }
        // Junk filler in library bodies, before the trailing return.
        for m in &mut dex.methods {
            if !mapping
                .values()
                .any(|obf| in_subtree(&m.sig.package(), obf))
            {
                continue;
            }
            let at = match m.code.instructions.last() {
                Some(Instruction::Return) => m.code.instructions.len() - 1,
                _ => m.code.instructions.len(),
            };
            for _ in 0..rng.gen_range(1..=3usize) {
                let junk = if rng.gen_bool(0.5) {
                    Instruction::Nop
                } else {
                    Instruction::Const(rng.gen())
                };
                m.code.instructions.insert(at, junk);
            }
        }
    }

    mapping
}

/// Obfuscates one generated app in place: rewrites the dex, rebuilds the
/// apk (manifest and extra entries preserved), and rewrites the flow
/// ground truth through the package mapping. Returns the mapping.
pub fn obfuscate_app(app: &mut GeneratedApp, tier: ObfuscationTier, seed: u64) -> LibraryMapping {
    if tier == ObfuscationTier::None {
        return LibraryMapping::new();
    }
    let mut dex = app.apk.dex().expect("generated apk has a valid dex");
    let manifest = app.apk.manifest().expect("generated apk has a manifest");
    let roots = library_roots(&dex);
    let mapping = obfuscate_dex(&mut dex, &roots, tier, seed);
    debug_assert_eq!(dex.validate(), Ok(()));
    for t in &mut app.truth {
        t.owner_package = map_package(&t.owner_package, &mapping);
        if let Some(origin) = &mut t.expected_origin {
            *origin = map_package(origin, &mapping);
        }
    }
    let extras: Vec<_> = app
        .apk
        .entries()
        .iter()
        .filter(|e| e.name != "AndroidManifest.json" && e.name != "classes.dex")
        .cloned()
        .collect();
    app.apk = Apk::build(&manifest, &dex, extras);
    mapping
}

/// Obfuscates every app in `corpus` at `tier`. Returns one mapping per
/// app, in corpus order. The library knowledge bases (`library_db`,
/// `structural_index`, `lists`) are left canonical — that asymmetry is
/// the point: detection must bridge obfuscated apps back to canonical
/// knowledge.
pub fn obfuscate_corpus(
    corpus: &mut Corpus,
    tier: ObfuscationTier,
    seed: u64,
) -> Vec<LibraryMapping> {
    corpus
        .apps
        .iter_mut()
        .map(|app| obfuscate_app(app, tier, seed ^ fnv1a(&app.package)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppGenConfig, CorpusConfig, OpStyle};

    fn small_corpus() -> Corpus {
        Corpus::generate(&CorpusConfig {
            apps: 8,
            seed: 21,
            appgen: AppGenConfig {
                method_scale: 0.004,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn tier_labels_round_trip() {
        for tier in ObfuscationTier::ALL {
            assert_eq!(tier.label().parse::<ObfuscationTier>().unwrap(), tier);
        }
        assert!("proguard".parse::<ObfuscationTier>().is_err());
    }

    #[test]
    fn none_tier_is_identity() {
        let mut corpus = small_corpus();
        let before: Vec<_> = corpus.apps.iter().map(|a| a.apk.sha256()).collect();
        let mappings = obfuscate_corpus(&mut corpus, ObfuscationTier::None, 1);
        assert!(mappings.iter().all(BTreeMap::is_empty));
        let after: Vec<_> = corpus.apps.iter().map(|a| a.apk.sha256()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn rename_moves_every_library_root_and_spares_first_party() {
        let mut corpus = small_corpus();
        let canonical_roots: Vec<Vec<&'static str>> = corpus
            .apps
            .iter()
            .map(|a| library_roots(&a.apk.dex().unwrap()))
            .collect();
        let mappings = obfuscate_corpus(&mut corpus, ObfuscationTier::Rename, 2);
        let mut saw_lib = false;
        for ((app, mapping), roots) in corpus.apps.iter().zip(&mappings).zip(&canonical_roots) {
            assert_eq!(mapping.len(), roots.len());
            let dex = app.apk.dex().unwrap();
            assert_eq!(dex.validate(), Ok(()));
            for root in roots {
                saw_lib = true;
                let obf = &mapping[*root];
                // No method remains under the canonical root; the
                // obfuscated root exists and dodges blocked namespaces.
                assert!(!dex
                    .methods
                    .iter()
                    .any(|m| in_subtree(&m.sig.package(), root)));
                assert!(dex
                    .methods
                    .iter()
                    .any(|m| in_subtree(&m.sig.package(), obf)));
                let first = obf.split('.').next().unwrap();
                assert!(!BLOCKED_FIRST.contains(&first), "blocked root {obf}");
            }
            // First-party entry points still resolve.
            let manifest = app.apk.manifest().unwrap();
            for sig in &manifest.application_on_create {
                assert!(dex.find_method(sig).is_some());
            }
            // Library truth was rewritten onto obfuscated roots.
            for t in app.truth.iter().filter(|t| t.is_ant || t.is_common) {
                if t.style == OpStyle::System {
                    continue;
                }
                assert!(
                    !roots.iter().any(|r| in_subtree(&t.owner_package, r)),
                    "stale truth package {}",
                    t.owner_package
                );
            }
        }
        assert!(saw_lib, "corpus must instantiate at least one library");
    }

    #[test]
    fn exact_fingerprint_survives_rename_but_not_mangle() {
        let db = crate::libraries::build_library_db();
        for (tier, survives) in [
            (ObfuscationTier::Rename, true),
            (ObfuscationTier::Mangle, false),
        ] {
            let mut corpus = small_corpus();
            let mappings = obfuscate_corpus(&mut corpus, tier, 3);
            let mut checked = false;
            for (app, mapping) in corpus.apps.iter().zip(&mappings) {
                let detected = db.detect(&app.apk.dex().unwrap());
                for (root, obf) in mapping {
                    checked = true;
                    let hit = detected
                        .iter()
                        .any(|d| d.name == *root && d.in_app_prefix == *obf);
                    assert_eq!(hit, survives, "{root} -> {obf} at {tier}");
                }
            }
            assert!(checked);
        }
    }

    #[test]
    fn junk_keeps_dex_valid_and_truth_stable() {
        let mut corpus = small_corpus();
        let truth_before: Vec<Vec<_>> = corpus
            .apps
            .iter()
            .map(|a| a.truth.iter().map(|t| t.domain.clone()).collect())
            .collect();
        obfuscate_corpus(&mut corpus, ObfuscationTier::Junk, 4);
        for (app, domains) in corpus.apps.iter().zip(&truth_before) {
            let dex = app.apk.dex().unwrap();
            assert_eq!(dex.validate(), Ok(()));
            let after: Vec<_> = app.truth.iter().map(|t| t.domain.clone()).collect();
            assert_eq!(&after, domains, "junk must not touch network operands");
        }
    }

    #[test]
    fn structural_profile_is_invariant_across_all_tiers() {
        let corpus = small_corpus();
        for tier in [
            ObfuscationTier::Rename,
            ObfuscationTier::Mangle,
            ObfuscationTier::Junk,
        ] {
            let mut obf = small_corpus();
            let mappings = obfuscate_corpus(&mut obf, tier, 5);
            let mut compared = false;
            for ((orig, obf_app), mapping) in corpus.apps.iter().zip(&obf.apps).zip(&mappings) {
                let odex = orig.apk.dex().unwrap();
                let xdex = obf_app.apk.dex().unwrap();
                for (root, new_root) in mapping {
                    compared = true;
                    assert_eq!(
                        spector_dex::features::subtree_profile(&odex, root),
                        spector_dex::features::subtree_profile(&xdex, new_root),
                        "profile moved for {root} at {tier}"
                    );
                }
            }
            assert!(compared);
        }
    }

    #[test]
    fn obfuscation_is_deterministic_in_seed() {
        let mut a = small_corpus();
        let mut b = small_corpus();
        let ma = obfuscate_corpus(&mut a, ObfuscationTier::Junk, 9);
        let mb = obfuscate_corpus(&mut b, ObfuscationTier::Junk, 9);
        assert_eq!(ma, mb);
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.apk.sha256(), y.apk.sha256());
        }
        let mut c = small_corpus();
        let mc = obfuscate_corpus(&mut c, ObfuscationTier::Junk, 10);
        assert_ne!(ma, mc, "different seed should pick different roots");
    }

    #[test]
    fn base26_is_injective_over_a_useful_range() {
        let names: std::collections::BTreeSet<String> = (0..1000).map(base26).collect();
        assert_eq!(names.len(), 1000);
        assert_eq!(base26(0), "a");
        assert_eq!(base26(25), "z");
        assert_eq!(base26(26), "aa");
    }
}
