//! Per-app generation: composition, call graph, volumes, ground truth.
//!
//! Every generated app is a complete apk (manifest + dex + optional
//! native libs) plus a *ground-truth* record of every network operation
//! baked into it — which method owns it, what origin the attribution
//! heuristic is expected to produce, the true library and domain
//! categories, and the op's list memberships. The original authors had
//! no ground truth for 25,000 real apps; the simulation does, and the
//! integration tests exploit it.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use spector_dex::apk::{ActivityDecl, Apk, ApkEntry, Manifest};
use spector_dex::model::{
    ClassDef, CodeItem, Connector, DexFile, Dispatcher, Instruction, MethodDef, MethodRef,
    NetworkOp, WireShape,
};
use spector_dex::sig::MethodSig;
use spector_libradar::LibCategory;
use spector_vtcat::DomainCategory;

use crate::categories::{game_share, mean_volume_multiplier, AppCategory};
use crate::domains::DomainUniverse;
use crate::fig9;
use crate::libraries::{
    instantiate, template_connector, templates_of, InstantiatedLibrary, LibraryOps, LibraryTemplate,
};

/// Traffic archetypes (§IV-A: 35 % of apps had AnT-only traffic, ~89 %
/// had some AnT traffic, ~10 % were AnT-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Archetype {
    /// All of this app's traffic comes from AnT libraries.
    AntOnly,
    /// AnT plus other libraries plus first-party traffic.
    Mixed,
    /// No AnT libraries at all.
    NoAnt,
}

/// How a network op is exercised during an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpStyle {
    /// Runs exactly once, from `Application.onCreate`.
    Startup,
    /// Re-runs on UI events (count depends on the monkey).
    Refresh,
    /// Platform-initiated, no app code on the stack.
    System,
}

/// Ground truth for one generated network operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowTruth {
    /// Destination host.
    pub domain: String,
    /// Destination port.
    pub port: u16,
    /// Request payload bytes per execution.
    pub send_bytes: u64,
    /// Response payload bytes per execution.
    pub recv_bytes: u64,
    /// Package of the method whose code contains the op.
    pub owner_package: String,
    /// Origin package the attribution heuristic is expected to find
    /// (`None` = only built-in frames remain: the `*` bucket).
    pub expected_origin: Option<String>,
    /// Library category this traffic should be accounted under.
    pub lib_category: LibCategory,
    /// True category of the destination domain.
    pub domain_category: DomainCategory,
    /// Op is owned by an advertisement/tracker library.
    pub is_ant: bool,
    /// Op is owned by a Li et al. common library.
    pub is_common: bool,
    /// Execution style.
    pub style: OpStyle,
    /// Wire shape the op was generated with (legacy ops are `Plain`).
    #[serde(default)]
    pub shape: WireShape,
}

/// A system-initiated op the experiment driver replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemOp {
    /// The operation.
    pub op: NetworkOp,
    /// Scheduler base frames for the system thread.
    pub dispatcher: Dispatcher,
}

/// One generated application.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// Application package name.
    pub package: String,
    /// Play category.
    pub category: &'static AppCategory,
    /// The built apk.
    pub apk: Apk,
    /// Ground truth for all baked-in ops (app + system).
    pub truth: Vec<FlowTruth>,
    /// Platform traffic replayed by the driver.
    pub system_ops: Vec<SystemOp>,
    /// Traffic archetype.
    pub archetype: Archetype,
}

/// Generator tunables.
#[derive(Debug, Clone)]
pub struct AppGenConfig {
    /// Scale on per-app method counts (1.0 ≈ the paper's mean of
    /// 49,138 methods per apk — far too slow for simulation; the
    /// default generates ~1/50th).
    pub method_scale: f64,
    /// Scale on per-app byte volumes (1.0 = paper per-app volumes).
    pub volume_scale: f64,
    /// Expected number of refresh invocations per refresh entry during
    /// a run (used to budget refresh op sizes); matches a 1,000-event
    /// monkey with default hit rates.
    pub expected_refresh_invocations: f64,
    /// Fraction of network ops carrying a modern wire shape — IPv6,
    /// TLS-like framing, CONNECT proxying, or pooled keep-alive —
    /// assigned deterministically per (owner, domain) with no RNG
    /// draws, so `0.0` (the default) generates a corpus byte-identical
    /// to the pre-shape generator.
    pub modern_fraction: f64,
}

impl Default for AppGenConfig {
    fn default() -> Self {
        AppGenConfig {
            method_scale: 0.02,
            volume_scale: 1.0,
            expected_refresh_invocations: 7.0,
            modern_fraction: 0.0,
        }
    }
}

const MB: f64 = 1_048_576.0;

/// Deterministic wire-shape assignment, hashed rather than rolled: the
/// FNV-1a hash of `owner` and `domain` decides both *whether* the op is
/// modern (against `modern_fraction`) and *which* shape it gets, so
/// shape assignment consumes zero RNG draws and every other random
/// decision in the generator is unperturbed by the knob.
fn shape_for_op(modern_fraction: f64, owner: &str, domain: &str) -> WireShape {
    if modern_fraction <= 0.0 {
        return WireShape::Plain;
    }
    let hash = crate::libraries::fnv1a(&format!("{owner}\u{1f}{domain}"));
    if (hash % 10_000) as f64 >= modern_fraction * 10_000.0 {
        return WireShape::Plain;
    }
    match (hash >> 16) % 4 {
        0 => WireShape::V6,
        1 => WireShape::TlsSni,
        2 => WireShape::ConnectProxy,
        _ => WireShape::Pooled {
            streams: 2 + ((hash >> 32) % 3) as u32,
        },
    }
}

/// Samples a domain of `category`, retrying to avoid domains this app
/// already uses so that `(app, domain)` uniquely identifies a ground-
/// truth op (tiny universes may still collide after the retry budget).
fn sample_unused<'u>(
    universe: &'u DomainUniverse,
    category: DomainCategory,
    rng: &mut SmallRng,
    used: &mut std::collections::HashSet<String>,
) -> &'u crate::domains::Domain {
    for _ in 0..32 {
        let candidate = universe.sample(category, rng);
        if !used.contains(&candidate.name) {
            used.insert(candidate.name.clone());
            return candidate;
        }
    }
    let fallback = universe.sample(category, rng);
    used.insert(fallback.name.clone());
    fallback
}

/// Generates one app.
#[allow(clippy::too_many_lines)]
pub fn generate_app(
    index: usize,
    category: &'static AppCategory,
    archetype: Archetype,
    universe: &DomainUniverse,
    config: &AppGenConfig,
    rng: &mut SmallRng,
) -> GeneratedApp {
    let package = format!("com.dev{}.app{index}", index % 911);
    let mut methods: Vec<MethodDef> = Vec::new();
    let mut truth: Vec<FlowTruth> = Vec::new();
    let mut used_domains: std::collections::HashSet<String> = std::collections::HashSet::new();

    // --- Volume planning -------------------------------------------------
    // Per-app volume factor: Figure 8 category multiplier × lognormal
    // spread, normalized so corpus expectation matches Figure 9.
    let spread = lognormal(rng, 0.9);
    let factor =
        category.volume_multiplier / mean_volume_multiplier() * spread * config.volume_scale;

    // --- Library composition ---------------------------------------------
    let mut libraries: Vec<(InstantiatedLibrary, f64)> = Vec::new(); // (instance, volume bytes)
    for lib_category in fig9::LIB_ORDER {
        if lib_category == LibCategory::Unknown {
            continue; // first-party, handled below
        }
        let is_ant_cat = matches!(
            lib_category,
            LibCategory::Advertisement | LibCategory::MobileAnalytics
        );
        // Archetype gating with expectation-preserving corrections.
        let (present, correction) = match (archetype, is_ant_cat) {
            (Archetype::AntOnly, true) | (Archetype::Mixed, true) => (true, 1.0 / 0.89),
            (_, true) => (false, 0.0),
            (Archetype::AntOnly, false) => (false, 0.0),
            (_, false) => (true, 1.0 / 0.65),
        };
        if !present {
            continue;
        }
        // Game engines only materialize in game apps.
        let correction = if lib_category == LibCategory::GameEngine {
            if !category.is_game() {
                continue;
            }
            correction / game_share()
        } else {
            correction
        };
        let target_bytes = fig9::per_app_mb(lib_category) * MB * factor * correction;
        if target_bytes < 1.0 {
            continue;
        }
        // Pick 1-2 templates of this category, popularity-weighted.
        let instances = if target_bytes > 2.0 * MB { 2 } else { 1 };
        let picked = pick_templates(lib_category, instances, rng);
        for template in picked {
            let share = target_bytes / instances as f64;
            let instance = build_instance(
                template,
                methods.len() as u32,
                share,
                universe,
                config,
                rng,
                &mut truth,
                &mut used_domains,
            );
            methods.extend(instance.methods.iter().cloned());
            libraries.push((instance, share));
        }
    }

    // --- First-party code (the Unknown column) ----------------------------
    let fp_target = if archetype == Archetype::AntOnly {
        0.0
    } else {
        fig9::per_app_mb(LibCategory::Unknown) * MB * factor / 0.65
    };
    let app_on_create_sig = MethodSig::new(&package, "App", "onCreate", "()V");
    let mut app_on_create_code: Vec<Instruction> = vec![Instruction::Const(0)];
    for (lib, _) in &libraries {
        let id = methods
            .iter()
            .position(|m| m.sig == lib.init_entry)
            .expect("init entry exists") as u32;
        app_on_create_code.push(Instruction::Invoke(MethodRef::Internal(id)));
    }
    // First-party network: an async loader plus an inline (synchronous)
    // fetch — both attribute to the app package.
    if fp_target > 1.0 {
        let (async_share, sync_share) = (fp_target * 0.6, fp_target * 0.4);
        let loader_sig = MethodSig::new(&format!("{package}.net"), "Loader", "run", "()V");
        let op = first_party_op(
            async_share,
            universe,
            config,
            rng,
            &package,
            &mut truth,
            &mut used_domains,
        );
        // The async loader runs on its own thread, so attribution lands
        // on the loader's own (sub-)package rather than the app root.
        if let Some(t) = truth.last_mut() {
            t.owner_package = loader_sig.package();
            t.expected_origin = Some(loader_sig.package());
        }
        let loader_id = methods.len() as u32;
        methods.push(MethodDef {
            sig: loader_sig,
            code: CodeItem {
                instructions: vec![Instruction::Network(op), Instruction::Return],
            },
        });
        app_on_create_code.push(Instruction::InvokeAsync {
            dispatcher: Dispatcher::Executor,
            target: MethodRef::Internal(loader_id),
        });
        // Synchronous first-party fetch inside onCreate itself.
        let op = first_party_op(
            sync_share,
            universe,
            config,
            rng,
            &package,
            &mut truth,
            &mut used_domains,
        );
        app_on_create_code.push(Instruction::Network(op));
    }
    app_on_create_code.push(Instruction::Return);
    let app_on_create_id = methods.len() as u32;
    methods.push(MethodDef {
        sig: app_on_create_sig.clone(),
        code: CodeItem {
            instructions: app_on_create_code,
        },
    });

    // --- Activities and handlers -------------------------------------------
    let activity_count = rng.gen_range(1..=4usize);
    let mut activities = Vec::with_capacity(activity_count);
    for a in 0..activity_count {
        let class = format!("{package}.Activity{a}");
        let on_create_sig = MethodSig::new(
            &package,
            &format!("Activity{a}"),
            "onCreate",
            "(Landroid/os/Bundle;)V",
        );
        methods.push(MethodDef {
            sig: on_create_sig.clone(),
            code: CodeItem {
                instructions: vec![Instruction::Const(a as u32), Instruction::Return],
            },
        });
        let handler_count = rng.gen_range(2..=5usize);
        let mut handlers = Vec::with_capacity(handler_count);
        for h in 0..handler_count {
            let sig = MethodSig::new(
                &package,
                &format!("Activity{a}"),
                &format!("onClick{h}"),
                "(Landroid/view/View;)V",
            );
            let mut instructions = vec![Instruction::Const(h as u32)];
            // Some handlers poke a library refresh entry (sparse:
            // most UI interactions do not trigger a banner rotation).
            if !libraries.is_empty() && rng.gen_bool(0.05) {
                let (lib, _) = &libraries[rng.gen_range(0..libraries.len())];
                let id = methods
                    .iter()
                    .position(|m| m.sig == lib.refresh_entry)
                    .expect("refresh entry exists") as u32;
                instructions.push(Instruction::Invoke(MethodRef::Internal(id)));
            }
            instructions.push(Instruction::Return);
            methods.push(MethodDef {
                sig: sig.clone(),
                code: CodeItem { instructions },
            });
            handlers.push(sig);
        }
        activities.push(ActivityDecl {
            class,
            handlers,
            on_create: vec![on_create_sig],
        });
    }

    // --- Filler to reach the method-count target ---------------------------
    let target_methods = (49_138.0 * config.method_scale * lognormal(rng, 0.55)).max(40.0) as usize;
    let mut filler_index = 0usize;
    while methods.len() < target_methods {
        let sub = ["", ".data", ".ui", ".sync"][filler_index % 4];
        let sig = MethodSig::new(
            &format!("{package}{sub}"),
            &format!("F{}", filler_index / 4),
            &format!("f{filler_index}"),
            "()V",
        );
        methods.push(MethodDef {
            sig,
            code: CodeItem {
                instructions: vec![Instruction::Const(filler_index as u32), Instruction::Return],
            },
        });
        filler_index += 1;
    }

    // --- System (platform) traffic -----------------------------------------
    let mut system_ops = Vec::new();
    // ~1.5 % of a typical app's volume: connectivity checks and account
    // sync through the platform okhttp, plus an occasional raw socket.
    let sys_volume = 0.015 * fig9::total_mb() / fig9::PAPER_APP_COUNT as f64 * MB * factor;
    if sys_volume > 1.0 {
        for (i, connector) in [Connector::AndroidOkHttp, Connector::DirectSocket]
            .into_iter()
            .enumerate()
        {
            let domain_category = if i == 0 {
                DomainCategory::InfoTech
            } else {
                DomainCategory::Advertisements
            };
            let domain = sample_unused(universe, domain_category, rng, &mut used_domains);
            let recv = (sys_volume / 2.0).max(64.0) as u64;
            let send = (recv as f64 / ratio_for(LibCategory::Utility, rng)).max(32.0) as u64;
            let shape = shape_for_op(config.modern_fraction, "android.system", &domain.name);
            let op = NetworkOp {
                domain: domain.name.clone(),
                port: 443,
                send_bytes: send,
                recv_bytes: recv,
                connector,
                shape,
            };
            let expected_origin = match connector {
                Connector::AndroidOkHttp => Some("com.android.okhttp.internal.huc".to_owned()),
                _ => None,
            };
            truth.push(FlowTruth {
                domain: domain.name.clone(),
                port: 443,
                send_bytes: send,
                recv_bytes: recv,
                owner_package: "android.system".to_owned(),
                expected_origin,
                lib_category: LibCategory::Unknown,
                domain_category,
                is_ant: false,
                is_common: false,
                style: OpStyle::System,
                shape,
            });
            system_ops.push(SystemOp {
                op,
                dispatcher: Dispatcher::Thread,
            });
        }
    }

    // --- Assemble the apk ----------------------------------------------------
    let classes = vec![ClassDef {
        dotted_name: format!("{package}.App"),
        method_indices: vec![app_on_create_id],
    }];
    let dex = DexFile { methods, classes };
    debug_assert_eq!(dex.validate(), Ok(()));
    let manifest = Manifest {
        package: package.clone(),
        version_code: 1 + (index % 40) as u32,
        category: category.name.to_owned(),
        dex_timestamp: 1_400_000_000 + (index as u64 * 7_919) % 160_000_000,
        vt_scan_date: Some(1_560_000_000 + (index as u64 * 104_729) % 30_000_000),
        application_on_create: vec![app_on_create_sig],
        activities,
    };
    // A minority of apps ship native code; most of those are fat apks.
    let extra = native_lib_entries(rng);
    let apk = Apk::build(&manifest, &dex, extra);

    GeneratedApp {
        package,
        category,
        apk,
        truth,
        system_ops,
        archetype,
    }
}

/// Picks `count` distinct templates of a category, weight-proportionally.
fn pick_templates(
    category: LibCategory,
    count: usize,
    rng: &mut SmallRng,
) -> Vec<&'static LibraryTemplate> {
    let mut pool = templates_of(category);
    let mut picked = Vec::new();
    for _ in 0..count.min(pool.len()) {
        let total: f64 = pool.iter().map(|t| t.weight).sum();
        let mut roll = rng.gen::<f64>() * total;
        let mut chosen = 0;
        for (i, t) in pool.iter().enumerate() {
            roll -= t.weight;
            if roll <= 0.0 {
                chosen = i;
                break;
            }
        }
        picked.push(pool.remove(chosen));
    }
    picked
}

/// Builds one library instance carrying `target_bytes` of session
/// volume, recording ground truth.
#[allow(clippy::too_many_arguments)] // generation context is inherently wide
fn build_instance(
    template: &'static LibraryTemplate,
    base_index: u32,
    target_bytes: f64,
    universe: &DomainUniverse,
    config: &AppGenConfig,
    rng: &mut SmallRng,
    truth: &mut Vec<FlowTruth>,
    used_domains: &mut std::collections::HashSet<String>,
) -> InstantiatedLibrary {
    let connector = template_connector(template);
    let dist = fig9::domain_distribution(template.category);
    let mut make_op = |bytes: f64, style: OpStyle| {
        let domain_category = sample_weighted(&dist, rng);
        let domain = sample_unused(universe, domain_category, rng, used_domains);
        let recv = bytes.max(64.0) as u64;
        let send = (bytes / ratio_for(template.category, rng)).max(32.0) as u64;
        let op = NetworkOp {
            domain: domain.name.clone(),
            port: if rng.gen_bool(0.85) { 443 } else { 80 },
            send_bytes: send,
            recv_bytes: recv,
            connector,
            shape: shape_for_op(config.modern_fraction, template.package, &domain.name),
        };
        (op, domain_category, style)
    };
    let (bg0, cat0, _) = make_op(target_bytes * 0.55, OpStyle::Startup);
    let (bg1, cat1, _) = make_op(target_bytes * 0.30, OpStyle::Startup);
    let (refresh, catr, _) = make_op(
        target_bytes * 0.15 / config.expected_refresh_invocations,
        OpStyle::Refresh,
    );
    let ops = LibraryOps {
        bg0: bg0.clone(),
        bg1: bg1.clone(),
        refresh: refresh.clone(),
    };
    let instance = instantiate(template, base_index, &ops);
    for ((sig, op), (domain_category, style)) in instance.owned_ops.iter().zip([
        (cat0, OpStyle::Startup),
        (cat1, OpStyle::Startup),
        (catr, OpStyle::Refresh),
    ]) {
        truth.push(FlowTruth {
            domain: op.domain.clone(),
            port: op.port,
            send_bytes: op.send_bytes,
            recv_bytes: op.recv_bytes,
            owner_package: sig.package(),
            expected_origin: Some(sig.package()),
            lib_category: template.category,
            domain_category,
            is_ant: template.is_ant,
            is_common: template.is_common,
            style,
            shape: op.shape,
        });
    }
    instance
}

/// Creates a first-party network op of roughly `bytes` and records its
/// truth (origin = the app's own package tree → Unknown category).
fn first_party_op(
    bytes: f64,
    universe: &DomainUniverse,
    config: &AppGenConfig,
    rng: &mut SmallRng,
    package: &str,
    truth: &mut Vec<FlowTruth>,
    used_domains: &mut std::collections::HashSet<String>,
) -> NetworkOp {
    let dist = fig9::domain_distribution(LibCategory::Unknown);
    let domain_category = sample_weighted(&dist, rng);
    let domain = sample_unused(universe, domain_category, rng, used_domains);
    let recv = bytes.max(64.0) as u64;
    let send = (bytes / ratio_for(LibCategory::Unknown, rng)).max(32.0) as u64;
    let op = NetworkOp {
        domain: domain.name.clone(),
        port: 443,
        send_bytes: send,
        recv_bytes: recv,
        connector: Connector::AndroidOkHttp,
        shape: shape_for_op(config.modern_fraction, package, &domain.name),
    };
    truth.push(FlowTruth {
        domain: domain.name.clone(),
        port: 443,
        send_bytes: send,
        recv_bytes: recv,
        owner_package: package.to_owned(),
        expected_origin: Some(package.to_owned()),
        lib_category: LibCategory::Unknown,
        domain_category,
        is_ant: false,
        is_common: false,
        style: OpStyle::Startup,
        shape: op.shape,
    });
    op
}

/// Per-flow received/sent ratio by category: AnT libraries pull far
/// more than they push (paper: AnT ratio ≈ 54.8 vs common ≈ 24.4).
fn ratio_for(category: LibCategory, rng: &mut SmallRng) -> f64 {
    // Payload-level means sit above the paper's wire-level targets
    // because per-flow header overhead (handshake, ACKs, teardown)
    // compresses the measured ratio.
    let mean = match category {
        LibCategory::Advertisement | LibCategory::MobileAnalytics => 220.0,
        LibCategory::GameEngine => 260.0,
        LibCategory::Unknown => 120.0,
        _ => 80.0,
    };
    (mean * lognormal(rng, 0.7)).clamp(1.2, 2_000.0)
}

fn sample_weighted(dist: &[(DomainCategory, f64)], rng: &mut SmallRng) -> DomainCategory {
    let mut roll = rng.gen::<f64>();
    for (cat, p) in dist {
        roll -= p;
        if roll <= 0.0 {
            return *cat;
        }
    }
    dist.last()
        .map(|(c, _)| *c)
        .unwrap_or(DomainCategory::Unknown)
}

/// Mean-1 lognormal multiplier with shape `sigma`.
fn lognormal(rng: &mut SmallRng, sigma: f64) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z - sigma * sigma / 2.0).exp()
}

/// Native-library entries: ~72 % pure Java, ~20 % fat (arm+x86), ~8 %
/// ARM-only (those get filtered out during app selection, §III-A).
fn native_lib_entries(rng: &mut SmallRng) -> Vec<ApkEntry> {
    let roll: f64 = rng.gen();
    let abis: &[&str] = if roll < 0.72 {
        &[]
    } else if roll < 0.92 {
        &["armeabi-v7a", "x86"]
    } else {
        &["armeabi-v7a", "arm64-v8a"]
    };
    abis.iter()
        .map(|abi| ApkEntry {
            name: format!("lib/{abi}/libnative.so"),
            data: bytes::Bytes::from(vec![0x7f, b'E', b'L', b'F']),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::APP_CATEGORIES;
    use rand::SeedableRng;

    fn quick_app(seed: u64, archetype: Archetype) -> GeneratedApp {
        let universe = DomainUniverse::generate(1, 400);
        let mut rng = SmallRng::seed_from_u64(seed);
        let config = AppGenConfig {
            method_scale: 0.005,
            ..Default::default()
        };
        generate_app(
            0,
            &APP_CATEGORIES[0],
            archetype,
            &universe,
            &config,
            &mut rng,
        )
    }

    #[test]
    fn generated_apk_is_well_formed() {
        let app = quick_app(1, Archetype::Mixed);
        let dex = app.apk.dex().expect("dex parses");
        assert_eq!(dex.validate(), Ok(()));
        let manifest = app.apk.manifest().expect("manifest parses");
        assert_eq!(manifest.package, app.package);
        assert_eq!(manifest.application_on_create.len(), 1);
        assert!(!manifest.activities.is_empty());
        // Every manifest entry point is defined in the dex.
        for sig in manifest.application_on_create.iter().chain(
            manifest
                .activities
                .iter()
                .flat_map(|a| a.on_create.iter().chain(a.handlers.iter())),
        ) {
            assert!(dex.find_method(sig).is_some(), "{sig} missing from dex");
        }
    }

    #[test]
    fn ant_only_apps_have_only_ant_truth() {
        let app = quick_app(2, Archetype::AntOnly);
        let app_flows: Vec<_> = app
            .truth
            .iter()
            .filter(|t| t.style != OpStyle::System)
            .collect();
        assert!(!app_flows.is_empty());
        assert!(app_flows.iter().all(|t| t.is_ant));
    }

    #[test]
    fn no_ant_apps_have_no_ant_truth() {
        let app = quick_app(3, Archetype::NoAnt);
        assert!(app.truth.iter().all(|t| !t.is_ant));
        // But they still talk to the network.
        assert!(app.truth.iter().any(|t| t.recv_bytes > 0));
    }

    #[test]
    fn mixed_apps_cover_ant_and_first_party() {
        let app = quick_app(4, Archetype::Mixed);
        assert!(app.truth.iter().any(|t| t.is_ant));
        assert!(app
            .truth
            .iter()
            .any(|t| t.lib_category == LibCategory::Unknown && t.style != OpStyle::System));
    }

    #[test]
    fn game_engine_only_in_game_apps() {
        let universe = DomainUniverse::generate(1, 400);
        let config = AppGenConfig::default();
        let game_cat = APP_CATEGORIES
            .iter()
            .find(|c| c.name == "GAME_ACTION")
            .unwrap();
        let tool_cat = APP_CATEGORIES.iter().find(|c| c.name == "TOOLS").unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let game = generate_app(0, game_cat, Archetype::Mixed, &universe, &config, &mut rng);
        let mut rng = SmallRng::seed_from_u64(5);
        let tool = generate_app(0, tool_cat, Archetype::Mixed, &universe, &config, &mut rng);
        assert!(game
            .truth
            .iter()
            .any(|t| t.lib_category == LibCategory::GameEngine));
        assert!(!tool
            .truth
            .iter()
            .any(|t| t.lib_category == LibCategory::GameEngine));
    }

    #[test]
    fn truth_domains_are_in_universe() {
        let universe = DomainUniverse::generate(1, 400);
        let mut rng = SmallRng::seed_from_u64(6);
        let app = generate_app(
            1,
            &APP_CATEGORIES[3],
            Archetype::Mixed,
            &universe,
            &AppGenConfig::default(),
            &mut rng,
        );
        for t in &app.truth {
            assert!(
                universe.by_name(&t.domain).is_some(),
                "{} unknown",
                t.domain
            );
        }
    }

    #[test]
    fn modern_fraction_consumes_no_rng() {
        // Same seed, different fraction: every random decision must be
        // identical — only the shape labels change. This is the
        // legacy-inertness guarantee at the generator level.
        let universe = DomainUniverse::generate(1, 400);
        let config = |modern_fraction| AppGenConfig {
            method_scale: 0.005,
            modern_fraction,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let legacy = generate_app(
            0,
            &APP_CATEGORIES[0],
            Archetype::Mixed,
            &universe,
            &config(0.0),
            &mut rng,
        );
        let mut rng = SmallRng::seed_from_u64(11);
        let modern = generate_app(
            0,
            &APP_CATEGORIES[0],
            Archetype::Mixed,
            &universe,
            &config(0.6),
            &mut rng,
        );
        assert!(legacy.truth.iter().all(|t| t.shape == WireShape::Plain));
        assert!(modern.truth.iter().any(|t| t.shape != WireShape::Plain));
        assert_eq!(legacy.truth.len(), modern.truth.len());
        for (l, m) in legacy.truth.iter().zip(&modern.truth) {
            assert_eq!(l.domain, m.domain);
            assert_eq!(l.send_bytes, m.send_bytes);
            assert_eq!(l.recv_bytes, m.recv_bytes);
            assert_eq!(l.owner_package, m.owner_package);
        }
    }

    #[test]
    fn shape_assignment_covers_every_kind() {
        // Across a spread of owners and domains at a high fraction, all
        // four modern shapes (and plain) must appear.
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let shape = shape_for_op(0.7, &format!("com.lib{}", i % 17), &format!("d{i}.example"));
            seen.insert(std::mem::discriminant(&shape));
        }
        assert_eq!(seen.len(), 5, "plain + 4 modern shapes");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_app(7, Archetype::Mixed);
        let b = quick_app(7, Archetype::Mixed);
        assert_eq!(a.apk.sha256(), b.apk.sha256());
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn received_exceeds_sent() {
        let app = quick_app(8, Archetype::Mixed);
        let recv: u64 = app.truth.iter().map(|t| t.recv_bytes).sum();
        let sent: u64 = app.truth.iter().map(|t| t.send_bytes).sum();
        assert!(recv > sent * 3, "recv {recv} sent {sent}");
    }

    #[test]
    fn lognormal_mean_is_about_one() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| lognormal(&mut rng, 0.9)).sum::<f64>() / n as f64;
        assert!((0.9..1.1).contains(&mean), "mean {mean}");
    }
}
