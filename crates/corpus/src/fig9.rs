//! Calibration matrix: traffic (MB) per library category × DNS domain
//! category, taken from Figure 9 of the paper (the heatmap prints its
//! cell values, making it the one complete quantitative description of
//! the measured traffic mix). The workload generator samples volumes so
//! that the *expected* corpus-wide mix reproduces this matrix, scaled by
//! corpus size; the analysis stage later re-derives the same figure from
//! the measured capture, closing the loop.

use spector_libradar::LibCategory;
use spector_vtcat::DomainCategory;

/// Number of library-category columns.
pub const LIB_COLS: usize = 13;
/// Number of domain-category rows.
pub const DOMAIN_ROWS: usize = 17;

/// Column order (Figure 9 x-axis).
pub const LIB_ORDER: [LibCategory; LIB_COLS] = [
    LibCategory::Advertisement,
    LibCategory::AppMarket,
    LibCategory::DevelopmentAid,
    LibCategory::DevelopmentFramework,
    LibCategory::DigitalIdentity,
    LibCategory::GuiComponent,
    LibCategory::GameEngine,
    LibCategory::MapLbs,
    LibCategory::MobileAnalytics,
    LibCategory::Payment,
    LibCategory::SocialNetwork,
    LibCategory::Unknown,
    LibCategory::Utility,
];

/// Row order (Figure 9 y-axis) — identical to [`DomainCategory::ALL`].
pub const DOMAIN_ORDER: [DomainCategory; DOMAIN_ROWS] = DomainCategory::ALL;

/// Figure 9 cell values in MB: `MATRIX_MB[domain_row][lib_col]`.
pub const MATRIX_MB: [[f64; LIB_COLS]; DOMAIN_ROWS] = [
    // adult
    [
        9.2, 0.0, 62.6, 0.1, 0.0, 0.0, 25.4, 4.1, 0.1, 0.3, 0.8, 19.1, 8.9,
    ],
    // advertisements
    [
        3518.5, 0.1, 1855.7, 0.4, 1.6, 3.1, 223.3, 0.4, 61.2, 18.3, 13.1, 36.0, 45.7,
    ],
    // analytics
    [
        3.5, 0.0, 97.3, 0.0, 1.0, 9.9, 4.9, 0.1, 190.6, 2.8, 0.8, 5.6, 3.3,
    ],
    // business_and_finance
    [
        1633.3, 5.8, 1280.0, 8.1, 82.0, 198.6, 183.3, 18.8, 40.4, 14.8, 36.5, 2221.9, 249.8,
    ],
    // cdn
    [
        2098.8, 0.4, 711.2, 4.0, 0.1, 0.1, 465.5, 0.0, 1.0, 5.1, 23.6, 1000.6, 29.6,
    ],
    // communication
    [
        23.6, 0.1, 195.4, 0.0, 0.2, 0.3, 2.2, 0.2, 19.5, 0.6, 14.2, 376.6, 14.2,
    ],
    // education
    [
        4.7, 0.0, 307.8, 0.0, 0.3, 0.1, 2.2, 2.4, 2.7, 1.0, 34.6, 133.1, 7.4,
    ],
    // entertainment
    [
        275.2, 0.0, 562.1, 1.3, 0.2, 1.4, 0.2, 0.5, 1.1, 25.4, 9.6, 629.3, 15.8,
    ],
    // games
    [
        4.7, 0.0, 18.3, 0.0, 1.5, 0.0, 1515.5, 0.0, 0.0, 0.0, 1.9, 1.1, 186.0,
    ],
    // health
    [
        0.1, 0.0, 11.6, 0.0, 0.0, 0.0, 0.0, 0.0, 0.1, 0.0, 0.0, 1.4, 40.3,
    ],
    // info_tech
    [
        892.5, 0.2, 615.6, 1.8, 14.7, 369.5, 245.8, 2.9, 60.8, 71.5, 93.6, 1862.3, 89.9,
    ],
    // internet_services
    [
        32.2, 0.0, 474.8, 3.3, 0.1, 1.4, 232.0, 1.4, 12.5, 0.9, 2.8, 88.0, 58.6,
    ],
    // lifestyle
    [
        18.7, 0.0, 300.7, 0.1, 0.9, 0.5, 25.3, 0.5, 0.8, 32.3, 3.1, 225.0, 22.8,
    ],
    // malicious
    [
        0.0, 0.0, 9.4, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 6.5, 0.3,
    ],
    // news
    [
        5.2, 0.0, 197.9, 0.4, 0.2, 3.7, 0.0, 0.3, 3.4, 9.4, 1.5, 110.8, 4.6,
    ],
    // social_networks
    [
        0.1, 0.0, 24.1, 0.0, 0.1, 0.0, 1.1, 0.0, 0.0, 0.1, 160.0, 1.5, 15.6,
    ],
    // unknown
    [
        177.4, 1.1, 1378.0, 4.3, 16.9, 21.5, 209.7, 28.2, 132.6, 33.6, 43.9, 1061.4, 241.9,
    ],
];

/// Paper corpus size the matrix was measured over.
pub const PAPER_APP_COUNT: usize = 25_000;

/// Column index of a library category.
pub fn lib_col(category: LibCategory) -> usize {
    LIB_ORDER
        .iter()
        .position(|c| *c == category)
        .expect("all 13 categories are columns")
}

/// Row index of a domain category.
pub fn domain_row(category: DomainCategory) -> usize {
    DOMAIN_ORDER
        .iter()
        .position(|c| *c == category)
        .expect("all 17 categories are rows")
}

/// Total MB attributed to a library category (column sum).
pub fn lib_category_total_mb(category: LibCategory) -> f64 {
    let col = lib_col(category);
    MATRIX_MB.iter().map(|row| row[col]).sum()
}

/// Total MB across the whole matrix.
pub fn total_mb() -> f64 {
    MATRIX_MB.iter().flatten().sum()
}

/// Expected MB a single app contributes to `category` (paper scale).
pub fn per_app_mb(category: LibCategory) -> f64 {
    lib_category_total_mb(category) / PAPER_APP_COUNT as f64
}

/// The destination-domain-category distribution for traffic of a
/// library category: Figure 9's column, normalized. Entries are
/// `(domain category, probability)` with zero-probability rows removed.
pub fn domain_distribution(category: LibCategory) -> Vec<(DomainCategory, f64)> {
    let col = lib_col(category);
    let total: f64 = MATRIX_MB.iter().map(|row| row[col]).sum();
    if total <= 0.0 {
        return vec![(DomainCategory::Unknown, 1.0)];
    }
    DOMAIN_ORDER
        .iter()
        .enumerate()
        .filter(|(row, _)| MATRIX_MB[*row][col] > 0.0)
        .map(|(row, cat)| (*cat, MATRIX_MB[row][col] / total))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shares_match_paper() {
        let total = total_mb();
        // Paper: Advertisement 28.28 %, Development Aid 26.34 %,
        // Unknown 25.3 %, Game Engine 10.2 %.
        let share = |cat| lib_category_total_mb(cat) / total * 100.0;
        assert!((share(LibCategory::Advertisement) - 28.28).abs() < 0.4);
        assert!((share(LibCategory::DevelopmentAid) - 26.34).abs() < 0.4);
        assert!((share(LibCategory::Unknown) - 25.3).abs() < 0.4);
        assert!((share(LibCategory::GameEngine) - 10.2).abs() < 0.4);
    }

    #[test]
    fn total_is_about_30_gb() {
        // The paper reports 30.75 GB of monitored traffic; the printed
        // matrix sums to roughly that (rounding differences aside).
        let gb = total_mb() / 1024.0;
        assert!((28.0..32.0).contains(&gb), "total {gb} GB");
    }

    #[test]
    fn distributions_are_normalized() {
        for cat in LIB_ORDER {
            let dist = domain_distribution(cat);
            let sum: f64 = dist.iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{cat}: {sum}");
            assert!(dist.iter().all(|(_, p)| *p > 0.0));
        }
    }

    #[test]
    fn ad_traffic_goes_to_cdn_substantially() {
        // §IV-B: "advertisement libraries send ~29% of their traffic to
        // CDN servers" (advertisements+cdn rows dominate the column).
        let dist = domain_distribution(LibCategory::Advertisement);
        let cdn = dist
            .iter()
            .find(|(c, _)| *c == DomainCategory::Cdn)
            .map(|(_, p)| *p)
            .unwrap_or(0.0);
        assert!((0.2..0.3).contains(&cdn), "cdn share {cdn}");
    }

    #[test]
    fn row_and_column_lookups() {
        assert_eq!(lib_col(LibCategory::Advertisement), 0);
        assert_eq!(lib_col(LibCategory::Utility), 12);
        assert_eq!(domain_row(DomainCategory::Adult), 0);
        assert_eq!(domain_row(DomainCategory::Unknown), 16);
    }
}
