//! Synthetic app-store corpus for Libspector experiments.
//!
//! The paper measures 25,000 top Google-Play apps. This crate generates
//! a corpus with the same *statistical shape*, at a configurable scale:
//!
//! * [`categories`] — the 49 Play categories with Figure 2/8-shaped
//!   weights and per-app volume multipliers;
//! * [`fig9`] — the paper's published library-category × domain-category
//!   traffic matrix, used as the volume calibration target;
//! * [`domains`] — a Table I-proportioned DNS domain universe with
//!   VirusTotal-style vendor labels;
//! * [`libraries`] — ~70 third-party library templates (real-world
//!   names) that instantiate into fingerprint-stable dex code;
//! * [`appgen`] — per-app composition with complete ground truth;
//! * [`store`] — the AndroidRank/AndroZoo selection rules.
//!
//! # Examples
//!
//! ```
//! use spector_corpus::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::generate(&CorpusConfig {
//!     apps: 5,
//!     seed: 42,
//!     ..Default::default()
//! });
//! assert_eq!(corpus.apps.len(), 5);
//! assert!(corpus.apps[0].apk.dex().unwrap().method_count() > 0);
//! ```

pub mod appgen;
pub mod categories;
pub mod domains;
pub mod fig9;
pub mod libraries;
pub mod obfuscate;
pub mod store;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub use appgen::{AppGenConfig, Archetype, FlowTruth, GeneratedApp, OpStyle, SystemOp};
pub use domains::DomainUniverse;
pub use obfuscate::{obfuscate_app, obfuscate_corpus, LibraryMapping, ObfuscationTier};
use spector_libradar::{LibraryDb, LibraryLists, StructuralIndex};

/// Corpus generation settings.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of apps to generate (post-selection).
    pub apps: usize,
    /// Master seed.
    pub seed: u64,
    /// Domain-universe size (defaults to a Table I-proportioned scale
    /// of roughly 6 domains per app, capped at the paper's 14,140).
    pub domain_count: Option<usize>,
    /// Per-app generation tunables.
    pub appgen: AppGenConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            apps: 100,
            seed: 42,
            domain_count: None,
            appgen: AppGenConfig::default(),
        }
    }
}

/// A generated corpus: apps with ground truth, the domain universe, and
/// the library knowledge bases the pipeline needs.
#[derive(Debug)]
pub struct Corpus {
    /// The selected apps.
    pub apps: Vec<GeneratedApp>,
    /// The DNS universe behind all generated traffic.
    pub domains: DomainUniverse,
    /// LibRadar-style fingerprint database over the library universe.
    pub library_db: LibraryDb,
    /// Structural-profile index over the same universe (the
    /// obfuscation-resistant detection tier's knowledge base).
    pub structural_index: StructuralIndex,
    /// Li et al.'s AnT / common-library lists.
    pub lists: LibraryLists,
}

impl Corpus {
    /// Generates a corpus.
    pub fn generate(config: &CorpusConfig) -> Self {
        let domain_count = config
            .domain_count
            .unwrap_or_else(|| (config.apps * 6).clamp(200, 14_140));
        let domains = DomainUniverse::generate(config.seed, domain_count);
        let mut rng = SmallRng::seed_from_u64(config.seed);

        let total_weight: f64 = categories::APP_CATEGORIES.iter().map(|c| c.weight).sum();
        let mut apps = Vec::with_capacity(config.apps);
        for index in 0..config.apps {
            // Category: weight-proportional.
            let mut roll = rng.gen::<f64>() * total_weight;
            let mut category = &categories::APP_CATEGORIES[0];
            for c in &categories::APP_CATEGORIES {
                roll -= c.weight;
                if roll <= 0.0 {
                    category = c;
                    break;
                }
            }
            // Archetype split (§IV-A): 35 % AnT-only, 54 % mixed,
            // 11 % AnT-free.
            let archetype = match rng.gen::<f64>() {
                r if r < 0.35 => Archetype::AntOnly,
                r if r < 0.89 => Archetype::Mixed,
                _ => Archetype::NoAnt,
            };
            apps.push(appgen::generate_app(
                index,
                category,
                archetype,
                &domains,
                &config.appgen,
                &mut rng,
            ));
        }

        Corpus {
            apps,
            domains,
            library_db: libraries::build_library_db(),
            structural_index: libraries::build_structural_index(),
            lists: libraries::library_lists(),
        }
    }

    /// Ground-truth lookup: expected origin package for a flow of
    /// `app_index` to `domain` (unique per app by construction for app
    /// traffic; system traffic may share domains).
    pub fn expected_origin(&self, app_index: usize, domain: &str) -> Option<&FlowTruth> {
        self.apps[app_index]
            .truth
            .iter()
            .find(|t| t.domain == domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(&CorpusConfig {
            apps: 30,
            seed: 7,
            appgen: AppGenConfig {
                method_scale: 0.004,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    #[test]
    fn generates_requested_count() {
        let corpus = small();
        assert_eq!(corpus.apps.len(), 30);
        assert!(!corpus.domains.is_empty());
        assert!(!corpus.library_db.is_empty());
    }

    #[test]
    fn archetype_mix_roughly_matches() {
        let corpus = Corpus::generate(&CorpusConfig {
            apps: 300,
            seed: 11,
            appgen: AppGenConfig {
                method_scale: 0.001,
                ..Default::default()
            },
            ..Default::default()
        });
        let ant_only = corpus
            .apps
            .iter()
            .filter(|a| a.archetype == Archetype::AntOnly)
            .count();
        let no_ant = corpus
            .apps
            .iter()
            .filter(|a| a.archetype == Archetype::NoAnt)
            .count();
        assert!((70..=140).contains(&ant_only), "ant_only {ant_only}");
        assert!((10..=70).contains(&no_ant), "no_ant {no_ant}");
    }

    #[test]
    fn deterministic_corpus() {
        let a = small();
        let b = small();
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.apk.sha256(), y.apk.sha256());
        }
    }

    #[test]
    fn truth_lookup_by_domain() {
        let corpus = small();
        let app_with_truth = corpus
            .apps
            .iter()
            .position(|a| !a.truth.is_empty())
            .expect("some app has traffic");
        let domain = corpus.apps[app_with_truth].truth[0].domain.clone();
        assert!(corpus.expected_origin(app_with_truth, &domain).is_some());
        assert!(corpus
            .expected_origin(app_with_truth, "no.such.domain")
            .is_none());
    }

    #[test]
    fn libraries_in_apps_are_detectable() {
        let corpus = small();
        let mut detected_any = false;
        for app in corpus.apps.iter().take(10) {
            let dex = app.apk.dex().unwrap();
            let detected = corpus.library_db.detect(&dex);
            let expected: std::collections::HashSet<&str> = app
                .truth
                .iter()
                .filter(|t| t.style != OpStyle::System)
                .filter(|t| t.lib_category != spector_libradar::LibCategory::Unknown)
                .map(|t| t.expected_origin.as_deref().unwrap_or(""))
                .collect();
            for origin in expected {
                // The origin is a sub-package of a detected library.
                let found = detected
                    .iter()
                    .any(|d| origin == d.name || origin.starts_with(&format!("{}.", d.name)));
                assert!(found, "origin {origin} not covered by detection");
                detected_any = true;
            }
        }
        assert!(detected_any);
    }
}
