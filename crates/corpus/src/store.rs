//! App collection: the AndroidRank ∩ AndroZoo selection logic (§III-A).
//!
//! The paper starts from the most-downloaded package names (AndroidRank),
//! pulls all archived versions of each from AndroZoo, and selects per
//! package:
//!
//! 1. the apk with the **latest dex timestamp**;
//! 2. for apks whose dex timestamp is the 01-01-1980 default, the one
//!    **most recently scanned by VirusTotal**;
//! 3. dropping apps that ship **only ARM** shared libraries.
//!
//! The same logic runs here over generated version sets, so the
//! collection pipeline is exercised, not just assumed.

use spector_dex::apk::{Apk, DEFAULT_DEX_TIMESTAMP};

/// One candidate version of a package in the archive.
#[derive(Debug, Clone)]
pub struct ArchivedApk {
    /// Package name.
    pub package: String,
    /// The apk.
    pub apk: Apk,
}

/// Why a package was dropped during selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Every candidate was ARM-only.
    ArmOnly,
    /// No parseable candidate existed.
    Unreadable,
}

/// Outcome of running selection over an archive.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Chosen apk per package, in first-seen package order.
    pub selected: Vec<ArchivedApk>,
    /// Dropped packages with reasons.
    pub rejected: Vec<(String, RejectReason)>,
}

/// Selects one apk per package per the paper's rules.
pub fn select_apks(archive: Vec<ArchivedApk>) -> Selection {
    let mut order: Vec<String> = Vec::new();
    let mut by_package: std::collections::HashMap<String, Vec<ArchivedApk>> =
        std::collections::HashMap::new();
    for entry in archive {
        if !by_package.contains_key(&entry.package) {
            order.push(entry.package.clone());
        }
        by_package
            .entry(entry.package.clone())
            .or_default()
            .push(entry);
    }

    let mut selection = Selection::default();
    for package in order {
        let candidates = by_package.remove(&package).expect("package recorded");
        let mut best: Option<(ArchivedApk, u64, Option<u64>)> = None;
        let mut any_parseable = false;
        for candidate in candidates {
            let Ok(manifest) = candidate.apk.manifest() else {
                continue;
            };
            any_parseable = true;
            let dex_ts = if manifest.dex_timestamp == DEFAULT_DEX_TIMESTAMP {
                // Default timestamp: rank below every real timestamp and
                // fall back to the VT scan date.
                0
            } else {
                manifest.dex_timestamp
            };
            let key = (dex_ts, manifest.vt_scan_date);
            let better = match &best {
                None => true,
                Some((_, best_ts, best_vt)) => key > (*best_ts, *best_vt),
            };
            if better {
                best = Some((candidate, key.0, key.1));
            }
        }
        match best {
            Some((chosen, _, _)) => {
                if chosen.apk.supports_x86() {
                    selection.selected.push(chosen);
                } else {
                    selection.rejected.push((package, RejectReason::ArmOnly));
                }
            }
            None => {
                let reason = if any_parseable {
                    RejectReason::ArmOnly
                } else {
                    RejectReason::Unreadable
                };
                selection.rejected.push((package, reason));
            }
        }
    }
    selection
}

/// Builds an AndroZoo-style archive from generated apps: each package
/// appears in 1-3 versions with increasing version codes, earlier
/// versions carrying older (or default) dex timestamps, so the §III-A
/// selection rules have real work to do. The *last* version of each
/// package is the generated app itself — the one selection must pick.
pub fn build_archive(apps: &[crate::appgen::GeneratedApp], seed: u64) -> Vec<ArchivedApk> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x00c0_ffee);
    let mut archive = Vec::new();
    for app in apps {
        let Ok(manifest) = app.apk.manifest() else {
            continue;
        };
        let Ok(dex) = app.apk.dex() else {
            continue;
        };
        let older_versions = rng.gen_range(0..=2usize);
        for version in 0..older_versions {
            let mut old = manifest.clone();
            old.version_code = manifest
                .version_code
                .saturating_sub((older_versions - version) as u32);
            // Half the stale entries carry the 01-01-1980 default dex
            // timestamp (the VT-date fallback path); the rest are just
            // older.
            if rng.gen_bool(0.5) {
                old.dex_timestamp = DEFAULT_DEX_TIMESTAMP;
                old.vt_scan_date = manifest.vt_scan_date.map(|d| d.saturating_sub(10_000));
            } else {
                old.dex_timestamp = manifest.dex_timestamp.saturating_sub(50_000);
            }
            archive.push(ArchivedApk {
                package: app.package.clone(),
                apk: Apk::build(&old, &dex, vec![]),
            });
        }
        archive.push(ArchivedApk {
            package: app.package.clone(),
            apk: app.apk.clone(),
        });
    }
    archive
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use spector_dex::apk::{ApkEntry, Manifest};
    use spector_dex::model::DexFile;

    fn make_apk(package: &str, dex_ts: u64, vt: Option<u64>, abis: &[&str]) -> ArchivedApk {
        let manifest = Manifest {
            package: package.into(),
            version_code: 1,
            category: "TOOLS".into(),
            dex_timestamp: dex_ts,
            vt_scan_date: vt,
            application_on_create: vec![],
            activities: vec![],
        };
        let extra = abis
            .iter()
            .map(|abi| ApkEntry {
                name: format!("lib/{abi}/libx.so"),
                data: Bytes::new(),
            })
            .collect();
        ArchivedApk {
            package: package.into(),
            apk: Apk::build(&manifest, &DexFile::new(), extra),
        }
    }

    #[test]
    fn picks_latest_dex_timestamp() {
        let selection = select_apks(vec![
            make_apk("com.a", 100, None, &[]),
            make_apk("com.a", 300, None, &[]),
            make_apk("com.a", 200, None, &[]),
        ]);
        assert_eq!(selection.selected.len(), 1);
        assert_eq!(
            selection.selected[0].apk.manifest().unwrap().dex_timestamp,
            300
        );
    }

    #[test]
    fn default_timestamp_falls_back_to_vt_date() {
        let selection = select_apks(vec![
            make_apk("com.b", DEFAULT_DEX_TIMESTAMP, Some(50), &[]),
            make_apk("com.b", DEFAULT_DEX_TIMESTAMP, Some(90), &[]),
            make_apk("com.b", DEFAULT_DEX_TIMESTAMP, Some(70), &[]),
        ]);
        assert_eq!(
            selection.selected[0].apk.manifest().unwrap().vt_scan_date,
            Some(90)
        );
    }

    #[test]
    fn real_timestamp_beats_default_with_newer_vt() {
        let selection = select_apks(vec![
            make_apk("com.c", DEFAULT_DEX_TIMESTAMP, Some(9_999_999_999), &[]),
            make_apk("com.c", 500, Some(1), &[]),
        ]);
        assert_eq!(
            selection.selected[0].apk.manifest().unwrap().dex_timestamp,
            500
        );
    }

    #[test]
    fn arm_only_apps_rejected() {
        let selection = select_apks(vec![
            make_apk("com.arm", 100, None, &["armeabi-v7a", "arm64-v8a"]),
            make_apk("com.fat", 100, None, &["armeabi-v7a", "x86"]),
            make_apk("com.java", 100, None, &[]),
        ]);
        let selected: Vec<&str> = selection
            .selected
            .iter()
            .map(|a| a.package.as_str())
            .collect();
        assert_eq!(selected, vec!["com.fat", "com.java"]);
        assert_eq!(
            selection.rejected,
            vec![("com.arm".to_owned(), RejectReason::ArmOnly)]
        );
    }

    #[test]
    fn preserves_first_seen_order() {
        let selection = select_apks(vec![
            make_apk("com.z", 1, None, &[]),
            make_apk("com.a", 1, None, &[]),
            make_apk("com.z", 2, None, &[]),
        ]);
        let order: Vec<&str> = selection
            .selected
            .iter()
            .map(|a| a.package.as_str())
            .collect();
        assert_eq!(order, vec!["com.z", "com.a"]);
    }

    #[test]
    fn empty_archive() {
        let selection = select_apks(vec![]);
        assert!(selection.selected.is_empty());
        assert!(selection.rejected.is_empty());
    }

    #[test]
    fn generated_archive_selection_recovers_latest_versions() {
        let corpus = crate::Corpus::generate(&crate::CorpusConfig {
            apps: 20,
            seed: 55,
            appgen: crate::AppGenConfig {
                method_scale: 0.003,
                ..Default::default()
            },
            ..Default::default()
        });
        let archive = build_archive(&corpus.apps, 55);
        assert!(
            archive.len() >= corpus.apps.len(),
            "versions were generated"
        );
        let selection = select_apks(archive);
        // Every x86-capable package is selected, and the chosen apk is
        // the app's own latest version (identical checksum).
        for app in &corpus.apps {
            let chosen = selection.selected.iter().find(|a| a.package == app.package);
            if app.apk.supports_x86() {
                let chosen = chosen.expect("x86 app must be selected");
                assert_eq!(chosen.apk.sha256(), app.apk.sha256(), "{}", app.package);
            } else {
                assert!(chosen.is_none(), "{} is ARM-only", app.package);
                assert!(selection
                    .rejected
                    .iter()
                    .any(|(p, r)| p == &app.package && *r == RejectReason::ArmOnly));
            }
        }
    }
}
