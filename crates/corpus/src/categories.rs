//! The 49 Google Play app categories and their corpus composition.
//!
//! Category weights approximate the composition visible in Figure 2
//! (aggregate bars) and Figure 8 (per-app averages): game sub-categories
//! are numerous, media categories transfer the most per app, and
//! finance/dating apps barely talk to the network during monkey runs.

/// One Play-store category with its corpus parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppCategory {
    /// Play-store label, e.g. `GAME_ACTION`.
    pub name: &'static str,
    /// Relative share of the corpus.
    pub weight: f64,
    /// Per-app traffic multiplier (Figure 8 shape; 1.0 = corpus mean
    /// before normalization).
    pub volume_multiplier: f64,
}

impl AppCategory {
    /// `true` for `GAME_*` categories and `GAMES`.
    pub fn is_game(&self) -> bool {
        self.name.starts_with("GAME")
    }
}

/// All 49 categories (Figure 2 x-axis).
pub const APP_CATEGORIES: [AppCategory; 49] = [
    AppCategory {
        name: "NEWS_AND_MAGAZINES",
        weight: 2.6,
        volume_multiplier: 3.2,
    },
    AppCategory {
        name: "MUSIC_AND_AUDIO",
        weight: 2.6,
        volume_multiplier: 3.4,
    },
    AppCategory {
        name: "GAME_SIMULATION",
        weight: 2.6,
        volume_multiplier: 2.1,
    },
    AppCategory {
        name: "SPORTS",
        weight: 2.4,
        volume_multiplier: 2.4,
    },
    AppCategory {
        name: "BOOKS_AND_REFERENCE",
        weight: 2.4,
        volume_multiplier: 2.0,
    },
    AppCategory {
        name: "GAME_PUZZLE",
        weight: 3.0,
        volume_multiplier: 1.6,
    },
    AppCategory {
        name: "GAME_ACTION",
        weight: 2.8,
        volume_multiplier: 1.9,
    },
    AppCategory {
        name: "EDUCATION",
        weight: 2.6,
        volume_multiplier: 1.5,
    },
    AppCategory {
        name: "ART_AND_DESIGN",
        weight: 1.6,
        volume_multiplier: 1.4,
    },
    AppCategory {
        name: "GAME_RACING",
        weight: 1.8,
        volume_multiplier: 1.8,
    },
    AppCategory {
        name: "GAME_ARCADE",
        weight: 2.8,
        volume_multiplier: 1.7,
    },
    AppCategory {
        name: "GAME_ADVENTURE",
        weight: 1.8,
        volume_multiplier: 1.7,
    },
    AppCategory {
        name: "PERSONALIZATION",
        weight: 2.8,
        volume_multiplier: 1.4,
    },
    AppCategory {
        name: "ENTERTAINMENT",
        weight: 2.8,
        volume_multiplier: 1.4,
    },
    AppCategory {
        name: "GAME_WORD",
        weight: 1.4,
        volume_multiplier: 1.5,
    },
    AppCategory {
        name: "GAME_CASUAL",
        weight: 2.6,
        volume_multiplier: 1.5,
    },
    AppCategory {
        name: "GAME_STRATEGY",
        weight: 1.8,
        volume_multiplier: 1.5,
    },
    AppCategory {
        name: "FOOD_AND_DRINK",
        weight: 1.4,
        volume_multiplier: 1.1,
    },
    AppCategory {
        name: "TOOLS",
        weight: 3.4,
        volume_multiplier: 1.2,
    },
    AppCategory {
        name: "GAME_BOARD",
        weight: 1.4,
        volume_multiplier: 1.3,
    },
    AppCategory {
        name: "GAME_TRIVIA",
        weight: 1.2,
        volume_multiplier: 1.3,
    },
    AppCategory {
        name: "GAME_CASINO",
        weight: 1.2,
        volume_multiplier: 1.3,
    },
    AppCategory {
        name: "GAME_SPORTS",
        weight: 1.4,
        volume_multiplier: 1.3,
    },
    AppCategory {
        name: "VIDEO_PLAYERS",
        weight: 1.8,
        volume_multiplier: 1.2,
    },
    AppCategory {
        name: "COMICS",
        weight: 1.0,
        volume_multiplier: 1.3,
    },
    AppCategory {
        name: "GAME_ROLE_PLAYING",
        weight: 1.2,
        volume_multiplier: 1.2,
    },
    AppCategory {
        name: "MEDICAL",
        weight: 1.2,
        volume_multiplier: 1.0,
    },
    AppCategory {
        name: "GAME_CARD",
        weight: 1.2,
        volume_multiplier: 1.1,
    },
    AppCategory {
        name: "LIFESTYLE",
        weight: 2.6,
        volume_multiplier: 0.9,
    },
    AppCategory {
        name: "GAME_EDUCATIONAL",
        weight: 1.0,
        volume_multiplier: 1.0,
    },
    AppCategory {
        name: "SHOPPING",
        weight: 1.8,
        volume_multiplier: 0.85,
    },
    AppCategory {
        name: "HEALTH_AND_FITNESS",
        weight: 1.8,
        volume_multiplier: 0.8,
    },
    AppCategory {
        name: "PHOTOGRAPHY",
        weight: 2.0,
        volume_multiplier: 0.8,
    },
    AppCategory {
        name: "BEAUTY",
        weight: 1.0,
        volume_multiplier: 0.9,
    },
    AppCategory {
        name: "TRAVEL_AND_LOCAL",
        weight: 1.8,
        volume_multiplier: 0.75,
    },
    AppCategory {
        name: "LIBRARIES_AND_DEMO",
        weight: 1.0,
        volume_multiplier: 1.5,
    },
    AppCategory {
        name: "WEATHER",
        weight: 1.0,
        volume_multiplier: 0.7,
    },
    AppCategory {
        name: "HOUSE_AND_HOME",
        weight: 1.0,
        volume_multiplier: 0.7,
    },
    AppCategory {
        name: "COMMUNICATION",
        weight: 2.2,
        volume_multiplier: 0.6,
    },
    AppCategory {
        name: "EVENTS",
        weight: 0.8,
        volume_multiplier: 1.1,
    },
    AppCategory {
        name: "GAME_MUSIC",
        weight: 0.6,
        volume_multiplier: 1.0,
    },
    AppCategory {
        name: "SOCIAL",
        weight: 2.0,
        volume_multiplier: 0.55,
    },
    AppCategory {
        name: "MAPS_AND_NAVIGATION",
        weight: 1.4,
        volume_multiplier: 0.5,
    },
    AppCategory {
        name: "PRODUCTIVITY",
        weight: 2.4,
        volume_multiplier: 0.45,
    },
    AppCategory {
        name: "BUSINESS",
        weight: 2.2,
        volume_multiplier: 0.4,
    },
    AppCategory {
        name: "PARENTING",
        weight: 0.8,
        volume_multiplier: 0.5,
    },
    AppCategory {
        name: "AUTO_AND_VEHICLES",
        weight: 1.0,
        volume_multiplier: 0.4,
    },
    AppCategory {
        name: "FINANCE",
        weight: 2.0,
        volume_multiplier: 0.25,
    },
    AppCategory {
        name: "DATING",
        weight: 0.8,
        volume_multiplier: 0.2,
    },
];

/// Weighted share of game apps in the corpus.
pub fn game_share() -> f64 {
    let total: f64 = APP_CATEGORIES.iter().map(|c| c.weight).sum();
    let games: f64 = APP_CATEGORIES
        .iter()
        .filter(|c| c.is_game())
        .map(|c| c.weight)
        .sum();
    games / total
}

/// The weighted mean of volume multipliers, used to normalize so that
/// the corpus-wide expected volume matches the Figure 9 totals exactly.
pub fn mean_volume_multiplier() -> f64 {
    let total: f64 = APP_CATEGORIES.iter().map(|c| c.weight).sum();
    APP_CATEGORIES
        .iter()
        .map(|c| c.weight * c.volume_multiplier)
        .sum::<f64>()
        / total
}

/// Looks up a category by name.
pub fn category_by_name(name: &str) -> Option<&'static AppCategory> {
    APP_CATEGORIES.iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_nine_distinct_categories() {
        assert_eq!(APP_CATEGORIES.len(), 49);
        let names: std::collections::HashSet<_> = APP_CATEGORIES.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), 49);
    }

    #[test]
    fn seventeen_game_categories() {
        // Figure 2 lists 17 GAME_* sub-categories.
        let games = APP_CATEGORIES.iter().filter(|c| c.is_game()).count();
        assert_eq!(games, 17);
        assert!(game_share() > 0.2 && game_share() < 0.5);
    }

    #[test]
    fn media_categories_lead_per_app_volume() {
        // Figure 8: Music and News transfer the most per app; Finance
        // and Dating the least.
        let m = |n: &str| category_by_name(n).unwrap().volume_multiplier;
        assert!(m("MUSIC_AND_AUDIO") > m("TOOLS"));
        assert!(m("NEWS_AND_MAGAZINES") > m("SHOPPING"));
        assert!(m("FINANCE") < m("LIFESTYLE"));
        assert!(m("DATING") <= m("FINANCE"));
    }

    #[test]
    fn positive_weights_and_multipliers() {
        for c in APP_CATEGORIES {
            assert!(c.weight > 0.0, "{}", c.name);
            assert!(c.volume_multiplier > 0.0, "{}", c.name);
        }
        assert!(mean_volume_multiplier() > 0.5);
    }

    #[test]
    fn lookup_by_name() {
        assert!(category_by_name("GAME_ACTION").unwrap().is_game());
        assert!(category_by_name("NOT_A_CATEGORY").is_none());
    }
}
