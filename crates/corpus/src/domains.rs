//! The DNS domain universe.
//!
//! Table I reports 14,140 distinct domains across 17 generic categories
//! (with very different sizes: 3,394 business/finance domains but only
//! 77 CDN domains — which is exactly why CDN domains top the per-domain
//! average in Figure 7). The universe is generated at a size scaled to
//! the corpus, preserving Table I's proportions, and each domain gets a
//! unique address plus deterministic VirusTotal-style vendor labels.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spector_vtcat::{DomainCategory, VendorOracle};

/// Table I domain counts per generic category, in
/// [`DomainCategory::ALL`] order.
pub const TABLE1_DOMAIN_COUNTS: [u32; 17] = [
    206,   // adult
    1_336, // advertisements
    419,   // analytics
    3_394, // business_and_finance
    77,    // cdn
    472,   // communication
    413,   // education
    481,   // entertainment
    288,   // games
    40,    // health
    1_525, // info_tech
    374,   // internet_services
    558,   // lifestyle
    23,    // malicious
    415,   // news
    55,    // social_networks
    4_064, // unknown
];

/// Paper total (sum of the Table I counts).
pub const TABLE1_TOTAL: u32 = 14_140;

/// One domain in the universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    /// Host name.
    pub name: String,
    /// Authoritative address (unique per domain).
    pub ip: Ipv4Addr,
    /// True category (ground truth; the pipeline must *recover* this
    /// via the vendor oracle + tokenizer).
    pub true_category: DomainCategory,
    /// VirusTotal-style vendor labels.
    pub vendor_labels: Vec<String>,
}

/// The generated domain universe.
#[derive(Debug, Clone)]
pub struct DomainUniverse {
    domains: Vec<Domain>,
    /// indices per true category, for sampling.
    by_category: HashMap<DomainCategory, Vec<usize>>,
}

impl DomainUniverse {
    /// Generates a universe of roughly `target_total` domains with
    /// Table I category proportions (at least one domain per non-empty
    /// category).
    pub fn generate(seed: u64, target_total: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let oracle = VendorOracle::new(seed);
        let mut domains = Vec::new();
        let mut by_category: HashMap<DomainCategory, Vec<usize>> = HashMap::new();
        let scale = target_total as f64 / f64::from(TABLE1_TOTAL);

        for (idx, category) in DomainCategory::ALL.iter().enumerate() {
            let count = ((f64::from(TABLE1_DOMAIN_COUNTS[idx]) * scale).round() as usize).max(1);
            for n in 0..count {
                let global = domains.len();
                let name = domain_name(&mut rng, *category, n, global);
                let ip = index_ip(global);
                let vendor_labels = oracle.labels(&name, *category);
                by_category.entry(*category).or_default().push(global);
                domains.push(Domain {
                    name,
                    ip,
                    true_category: *category,
                    vendor_labels,
                });
            }
        }
        DomainUniverse {
            domains,
            by_category,
        }
    }

    /// All domains.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Returns `true` when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Number of domains in one category.
    pub fn category_count(&self, category: DomainCategory) -> usize {
        self.by_category.get(&category).map_or(0, Vec::len)
    }

    /// Samples a domain of `category`, rank-skewed so that a few
    /// domains per category receive most traffic (the paper: the top
    /// 4,010 of 14,140 domains carry half of all bytes).
    pub fn sample(&self, category: DomainCategory, rng: &mut SmallRng) -> &Domain {
        let indices = self
            .by_category
            .get(&category)
            .expect("every category has at least one domain");
        // Log-uniform rank: heavy skew toward low ranks.
        let u: f64 = rng.gen();
        let rank = ((indices.len() as f64).powf(u) - 1.0) as usize;
        &self.domains[indices[rank.min(indices.len() - 1)]]
    }

    /// Looks up a domain by name (linear; used by tests and tooling).
    pub fn by_name(&self, name: &str) -> Option<&Domain> {
        self.domains.iter().find(|d| d.name == name)
    }
}

/// Deterministic unique address per domain index, spread over the
/// 198.18.0.0/15 benchmarking range (RFC 2544) and 203.0.113.0/24-style
/// extensions for very large universes.
fn index_ip(index: usize) -> Ipv4Addr {
    let hi = (index / 254) as u16;
    let lo = (index % 254 + 1) as u8;
    Ipv4Addr::new(198, 18 + (hi / 256) as u8, (hi % 256) as u8, lo)
}

fn domain_name(rng: &mut SmallRng, category: DomainCategory, n: usize, global: usize) -> String {
    const STEMS: [&str; 12] = [
        "cloud", "app", "net", "data", "hub", "box", "zone", "srv", "go", "api", "web", "core",
    ];
    const TLDS: [&str; 5] = ["com", "net", "io", "org", "co"];
    let stem = STEMS[rng.gen_range(0..STEMS.len())];
    let tld = TLDS[rng.gen_range(0..TLDS.len())];
    let short = match category {
        DomainCategory::Advertisements => "ad",
        DomainCategory::Analytics => "metrics",
        DomainCategory::Cdn => "cdn",
        DomainCategory::Games => "play",
        DomainCategory::SocialNetworks => "social",
        DomainCategory::News => "news",
        DomainCategory::BusinessAndFinance => "biz",
        _ => "host",
    };
    // `global` keys uniqueness across the whole universe; `n` keeps the
    // per-category numbering human-readable.
    format!("{short}{n}.{stem}{global}.{tld}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_paper_total() {
        assert_eq!(TABLE1_DOMAIN_COUNTS.iter().sum::<u32>(), TABLE1_TOTAL);
    }

    #[test]
    fn proportions_preserved_at_scale() {
        let universe = DomainUniverse::generate(1, 1_414); // 10% scale
        assert!(!universe.is_empty());
        // business_and_finance should be ~339, cdn ~8.
        let biz = universe.category_count(DomainCategory::BusinessAndFinance);
        let cdn = universe.category_count(DomainCategory::Cdn);
        assert!((330..350).contains(&biz), "biz {biz}");
        assert!((6..11).contains(&cdn), "cdn {cdn}");
        assert!(universe.category_count(DomainCategory::Malicious) >= 1);
    }

    #[test]
    fn unique_names_and_ips() {
        let universe = DomainUniverse::generate(2, 2_000);
        let mut names: Vec<_> = universe.domains().iter().map(|d| &d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), universe.len());
        let mut ips: Vec<_> = universe.domains().iter().map(|d| d.ip).collect();
        ips.sort_unstable();
        ips.dedup();
        assert_eq!(ips.len(), universe.len());
    }

    #[test]
    fn deterministic_generation() {
        let a = DomainUniverse::generate(3, 500);
        let b = DomainUniverse::generate(3, 500);
        assert_eq!(a.domains(), b.domains());
        let c = DomainUniverse::generate(4, 500);
        assert_ne!(a.domains(), c.domains());
    }

    #[test]
    fn sampling_respects_category_and_skews() {
        let universe = DomainUniverse::generate(5, 2_000);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut first_hit = 0;
        let n = 1_000;
        for _ in 0..n {
            let d = universe.sample(DomainCategory::Advertisements, &mut rng);
            assert_eq!(d.true_category, DomainCategory::Advertisements);
            if std::ptr::eq(d, universe.sample_first(DomainCategory::Advertisements)) {
                first_hit += 1;
            }
        }
        // The rank-0 domain must receive far more than a uniform share
        // (uniform would be ~1000/189 ≈ 5).
        assert!(first_hit > 50, "rank-0 hits {first_hit}");
    }

    #[test]
    fn unknown_category_domains_have_no_labels() {
        let universe = DomainUniverse::generate(6, 1_000);
        for d in universe.domains() {
            if d.true_category == DomainCategory::Unknown {
                assert!(d.vendor_labels.is_empty());
            }
        }
    }

    impl DomainUniverse {
        fn sample_first(&self, category: DomainCategory) -> &Domain {
            &self.domains[self.by_category[&category][0]]
        }
    }
}
