//! `spector-telemetry` — observability for the measurement system
//! itself.
//!
//! Libspector *is* a measurement system, so its own internals must be
//! measurable: how many reports each pipeline stage saw, dropped, and
//! attributed; how long each stage took; what the chaos layer
//! injected. This crate provides the shared substrate:
//!
//! * **Registry** ([`registry`]) — a lock-light [`Telemetry`] handle.
//!   Registration takes a short write lock once per metric; every
//!   increment afterwards is a single atomic op through a pre-fetched
//!   [`Counter`] / [`Gauge`] / [`Histogram`] handle that workers clone
//!   freely. A *disabled* handle ([`Telemetry::disabled`]) reduces
//!   every operation to one `Option` test — the zero-overhead-when-
//!   disabled contract pinned by `perf/telemetry_overhead`.
//! * **Spans** ([`span`]) — hierarchical stage profiling. A span path
//!   is slash-separated (`pipeline/flow_join/attribute`); durations
//!   land in a fixed-bucket latency histogram keyed by the path.
//!   Timing comes from a [`TimeSource`]: wall-clock in production, or
//!   a shared virtual clock ([`TimeSource::Virtual`]) so spans are
//!   deterministic under the fault layer's virtual-time testing.
//! * **Snapshots** ([`snapshot`]) — [`MetricsSnapshot`] is the
//!   serializable point-in-time view. [`MetricsSnapshot::merge`] is
//!   associative and commutative (property-tested), which is what
//!   lets shard-local telemetry fold into one campaign view the same
//!   way `LiveSummary` partials do.
//! * **Exporters** ([`export`]) — Prometheus text format and a stable
//!   JSON layout (the snapshot's serde form), surfaced by
//!   `libspector run --metrics` / `libspector metrics`.
//!
//! # Metric naming scheme
//!
//! Every metric name is `spector_<subsystem>_<what>[_total]`, with at
//! most one `{key="value"}` label pair (stage paths use
//! `{stage="..."}`). Counters end in `_total`; histograms carry their
//! unit in the name (`_micros`, `_bytes`). See DESIGN.md
//! "Observability" for the full inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use export::render_prometheus;
pub use registry::{
    Counter, Gauge, Histogram, MetricKey, Telemetry, TimeSource, COUNT_BOUNDS,
    LATENCY_BOUNDS_MICROS, SIZE_BOUNDS_BYTES,
};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use span::{StageGuard, StageRecorder, STAGE_CALLS_SUFFIX, STAGE_MICROS};
