//! Exporters: Prometheus text format over a [`MetricsSnapshot`].
//!
//! The JSON exporter is simply the snapshot's serde form (stable —
//! `BTreeMap` keys sort deterministically); this module renders the
//! same snapshot in the Prometheus text exposition format, with
//! `# TYPE` headers per family, `_bucket{le="..."}` lines per
//! histogram bucket, and cumulative bucket counts as the format
//! requires.

use std::fmt::Write as _;

use crate::registry::MetricKey;
use crate::snapshot::MetricsSnapshot;

fn family(rendered_id: &str) -> &str {
    rendered_id.split('{').next().unwrap_or(rendered_id)
}

fn label_body(id: &MetricKey) -> String {
    match &id.label {
        None => String::new(),
        Some((key, value)) => format!("{key}=\"{value}\""),
    }
}

/// Renders the snapshot in Prometheus text exposition format.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family = String::new();
    let mut type_header = |out: &mut String, id: &str, kind: &str| {
        let fam = family(id);
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} {kind}");
            last_family = fam.to_owned();
        }
    };

    for (id, value) in &snapshot.counters {
        type_header(&mut out, id, "counter");
        let _ = writeln!(out, "{id} {value}");
    }
    for (id, value) in &snapshot.gauges {
        type_header(&mut out, id, "gauge");
        let _ = writeln!(out, "{id} {value}");
    }
    for (id, histogram) in &snapshot.histograms {
        type_header(&mut out, id, "histogram");
        let key = MetricKey::parse(id);
        let fam = key.name.clone();
        let labels = label_body(&key);
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (idx, bucket) in histogram.buckets.iter().enumerate() {
            cumulative += bucket;
            let le = match histogram.bounds.get(idx) {
                Some(bound) => bound.to_string(),
                None => "+Inf".to_owned(),
            };
            let _ = writeln!(out, "{fam}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}");
        }
        let suffix = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "{fam}_sum{suffix} {}", histogram.sum);
        let _ = writeln!(out, "{fam}_count{suffix} {}", histogram.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Telemetry, LATENCY_BOUNDS_MICROS};

    #[test]
    fn prometheus_format_has_types_buckets_and_cumulative_counts() {
        let telemetry = Telemetry::enabled();
        telemetry.counter("spector_apps_total").add(3);
        telemetry.gauge("spector_workers").set(4);
        let h = telemetry.histogram_labeled(
            "spector_stage_micros",
            "stage",
            "pipeline",
            &LATENCY_BOUNDS_MICROS,
        );
        h.record(3);
        h.record(7);
        h.record(2_000_000);
        let text = render_prometheus(&telemetry.snapshot());
        assert!(text.contains("# TYPE spector_apps_total counter"));
        assert!(text.contains("spector_apps_total 3"));
        assert!(text.contains("# TYPE spector_workers gauge"));
        assert!(text.contains("# TYPE spector_stage_micros histogram"));
        assert!(text.contains("spector_stage_micros_bucket{stage=\"pipeline\",le=\"5\"} 1"));
        assert!(text.contains("spector_stage_micros_bucket{stage=\"pipeline\",le=\"10\"} 2"));
        assert!(text.contains("spector_stage_micros_bucket{stage=\"pipeline\",le=\"+Inf\"} 3"));
        assert!(text.contains("spector_stage_micros_sum{stage=\"pipeline\"} 2000010"));
        assert!(text.contains("spector_stage_micros_count{stage=\"pipeline\"} 3"));
    }

    #[test]
    fn unlabeled_histogram_renders_plain_suffixes() {
        let telemetry = Telemetry::enabled();
        telemetry.histogram("spector_app_micros", &[100]).record(42);
        let text = render_prometheus(&telemetry.snapshot());
        assert!(text.contains("spector_app_micros_bucket{le=\"100\"} 1"));
        assert!(text.contains("spector_app_micros_sum 42"));
        assert!(text.contains("spector_app_micros_count 1"));
    }
}
