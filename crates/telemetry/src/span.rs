//! Hierarchical stage spans: who spent how long where.
//!
//! A *stage path* is a slash-separated hierarchy rooted at the
//! subsystem (`pipeline/flow_join/attribute`, `experiment/run_app`).
//! Each stage owns two metrics keyed by a `{stage="<path>"}` label:
//! a fixed-bucket latency histogram [`STAGE_MICROS`] and a call
//! counter (`STAGE_MICROS` + [`STAGE_CALLS_SUFFIX`]). Durations come
//! from the registry's [`TimeSource`], so under a virtual clock the
//! recorded numbers are bit-deterministic.
//!
//! Two usage shapes:
//!
//! * [`Telemetry::stage`] returns a scope guard that records on drop
//!   — for one-off coarse stages. [`StageGuard::child`] opens a
//!   nested stage, extending the path.
//! * [`StageRecorder`] pre-fetches the handles once (per campaign,
//!   per analyze call, per shard) and then times closures with two
//!   clock reads and two atomic ops — the hot-path shape. A recorder
//!   fetched from a disabled registry runs the closure untouched.
//!
//! [`TimeSource`]: crate::TimeSource

use crate::registry::{Counter, Histogram, Telemetry, LATENCY_BOUNDS_MICROS};

/// Histogram family for stage durations, labeled `{stage="<path>"}`.
pub const STAGE_MICROS: &str = "spector_stage_micros";

/// Suffix appended to [`STAGE_MICROS`] for the per-stage call counter
/// family (`spector_stage_micros_calls_total`).
pub const STAGE_CALLS_SUFFIX: &str = "_calls_total";

impl Telemetry {
    /// Opens a stage scope that records its duration into
    /// [`STAGE_MICROS`]`{stage=path}` when dropped.
    pub fn stage(&self, path: &str) -> StageGuard {
        StageGuard {
            recorder: self.stage_recorder(path),
            telemetry: self.clone(),
            path: path.to_owned(),
            start: self.now_micros(),
        }
    }

    /// Pre-fetches the duration histogram and call counter for one
    /// stage path. Fetch once, then [`StageRecorder::time`] per call.
    pub fn stage_recorder(&self, path: &str) -> StageRecorder {
        StageRecorder {
            telemetry: self.clone(),
            micros: self.histogram_labeled(STAGE_MICROS, "stage", path, &LATENCY_BOUNDS_MICROS),
            calls: self.counter_labeled(
                &format!("{STAGE_MICROS}{STAGE_CALLS_SUFFIX}"),
                "stage",
                path,
            ),
        }
    }
}

/// Pre-fetched handles for one stage: a duration histogram and a call
/// counter. Cheap to clone; free when disabled.
#[derive(Clone, Default)]
pub struct StageRecorder {
    telemetry: Telemetry,
    micros: Histogram,
    calls: Counter,
}

impl StageRecorder {
    /// Runs `f`, recording its duration and one call. When the
    /// recorder is disabled this is exactly one branch around `f`.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let Some(start) = self.telemetry.now_micros() else {
            return f();
        };
        let result = f();
        let end = self.telemetry.now_micros().unwrap_or(start);
        self.micros.record(end.saturating_sub(start));
        self.calls.inc();
        result
    }

    /// Records an externally measured duration (e.g. a virtual-clock
    /// run duration) as one call of this stage.
    pub fn record_micros(&self, micros: u64) {
        self.micros.record(micros);
        self.calls.inc();
    }

    /// Calls recorded so far (0 when disabled).
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }
}

/// Scope guard from [`Telemetry::stage`]: records the stage duration
/// when dropped.
pub struct StageGuard {
    recorder: StageRecorder,
    telemetry: Telemetry,
    path: String,
    start: Option<u64>,
}

impl StageGuard {
    /// Opens a nested stage (`<parent path>/<name>`).
    pub fn child(&self, name: &str) -> StageGuard {
        self.telemetry.stage(&format!("{}/{name}", self.path))
    }

    /// This stage's full path.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if let (Some(start), Some(end)) = (self.start, self.telemetry.now_micros()) {
            self.recorder.record_micros(end.saturating_sub(start));
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use super::*;

    #[test]
    fn virtual_clock_spans_are_deterministic() {
        let clock = Arc::new(AtomicU64::new(0));
        let telemetry = Telemetry::with_virtual_clock(Arc::clone(&clock));
        {
            let outer = telemetry.stage("pipeline");
            clock.fetch_add(100, Ordering::Relaxed);
            {
                let _inner = outer.child("flow_join");
                clock.fetch_add(40, Ordering::Relaxed);
            }
            clock.fetch_add(10, Ordering::Relaxed);
        }
        let snapshot = telemetry.snapshot();
        let outer = &snapshot.histograms["spector_stage_micros{stage=\"pipeline\"}"];
        assert_eq!(outer.count, 1);
        assert_eq!(outer.sum, 150);
        let inner = &snapshot.histograms["spector_stage_micros{stage=\"pipeline/flow_join\"}"];
        assert_eq!(inner.sum, 40);
        assert_eq!(
            snapshot.counter("spector_stage_micros_calls_total{stage=\"pipeline\"}"),
            1
        );
    }

    #[test]
    fn recorder_times_closures_and_counts_calls() {
        let clock = Arc::new(AtomicU64::new(0));
        let telemetry = Telemetry::with_virtual_clock(Arc::clone(&clock));
        let recorder = telemetry.stage_recorder("pipeline/report_decode");
        for step in [5u64, 15, 25] {
            let value = recorder.time(|| {
                clock.fetch_add(step, Ordering::Relaxed);
                step * 2
            });
            assert_eq!(value, step * 2);
        }
        assert_eq!(recorder.calls(), 3);
        let snapshot = telemetry.snapshot();
        let h = &snapshot.histograms["spector_stage_micros{stage=\"pipeline/report_decode\"}"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 45);
        assert!(h.buckets_sum_to_count());
    }

    #[test]
    fn disabled_recorder_passes_through() {
        let recorder = Telemetry::disabled().stage_recorder("anything");
        assert_eq!(recorder.time(|| 41) + 1, 42);
        assert_eq!(recorder.calls(), 0);
        let guard = Telemetry::disabled().stage("outer");
        let _child = guard.child("inner");
    }
}
