//! Serializable, mergeable point-in-time metric snapshots.
//!
//! [`MetricsSnapshot`] is the exchange format between subsystems: the
//! registry produces one, shard-local registries produce partials,
//! and [`MetricsSnapshot::merge`] folds partials into a campaign view
//! exactly the way `LiveSummary::merge` folds shard summaries —
//! field-wise addition, bucket-wise for histograms. Merge is
//! associative and commutative with the empty snapshot as identity
//! (pinned by `tests/proptests.rs`), so any fold order over any shard
//! partition produces the same campaign view.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One histogram's state: fixed bucket upper bounds, per-bucket
/// counts (with the trailing `+Inf` bucket), total count and sum.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds; the final `+Inf` bucket is
    /// implicit (so `buckets.len() == bounds.len() + 1`).
    pub bounds: Vec<u64>,
    /// Observation count per bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile (0..=1) from the bucket counts: returns
    /// the upper bound of the bucket containing the q-th observation
    /// (`None` when empty; the `+Inf` bucket reports the largest
    /// finite bound).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Some(match self.bounds.get(idx) {
                    Some(bound) => *bound,
                    None => self.bounds.last().copied().unwrap_or(u64::MAX),
                });
            }
        }
        Some(self.bounds.last().copied().unwrap_or(u64::MAX))
    }

    /// Bucket-wise sum invariant: every observation lives in exactly
    /// one bucket.
    pub fn buckets_sum_to_count(&self) -> bool {
        self.buckets.iter().sum::<u64>() == self.count
    }

    /// Folds `other` into `self`. Same-layout histograms (the only
    /// kind one metric name can produce, since the registry fixes a
    /// name's bounds at first registration) add bucket-wise. For
    /// mismatched layouts the operation stays total, associative and
    /// commutative: buckets pad with zeros and add element-wise,
    /// bounds combine by element-wise max.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.bounds.len() > self.bounds.len() {
            self.bounds.resize(other.bounds.len(), 0);
        }
        for (mine, theirs) in self.bounds.iter_mut().zip(&other.bounds) {
            *mine = (*mine).max(*theirs);
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Point-in-time view of every metric a registry (or a merged set of
/// registries) holds, keyed by the rendered metric id
/// (`name` or `name{key="value"}`). This is the stable JSON layout
/// `libspector run --metrics` writes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (point-in-time values; merge adds, which is the right
    /// semantics for shard-local occupancy-style gauges).
    pub gauges: BTreeMap<String, i64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Convenience: the counter's value, 0 when absent.
    pub fn counter(&self, id: &str) -> u64 {
        self.counters.get(id).copied().unwrap_or(0)
    }

    /// Folds another (typically shard-local) snapshot into this one:
    /// counters and gauges add, histograms merge bucket-wise.
    /// Associative and commutative, with the default snapshot as
    /// identity.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (id, value) in &other.counters {
            *self.counters.entry(id.clone()).or_default() += value;
        }
        for (id, value) in &other.gauges {
            *self.gauges.entry(id.clone()).or_default() += value;
        }
        for (id, histogram) in &other.histograms {
            self.histograms
                .entry(id.clone())
                .or_default()
                .merge(histogram);
        }
    }

    /// Merges a list of partials into one view (any order — merge is
    /// associative and commutative).
    pub fn merged<'a>(partials: impl IntoIterator<Item = &'a MetricsSnapshot>) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for partial in partials {
            out.merge(partial);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: &[u64], buckets: &[u64], sum: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            buckets: buckets.to_vec(),
            count: buckets.iter().sum(),
            sum,
        }
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x_total".into(), 2);
        a.histograms
            .insert("lat".into(), hist(&[10, 100], &[1, 0, 0], 3));
        let mut b = MetricsSnapshot::default();
        b.counters.insert("x_total".into(), 5);
        b.counters.insert("y_total".into(), 1);
        b.histograms
            .insert("lat".into(), hist(&[10, 100], &[0, 2, 1], 5_000));
        a.merge(&b);
        assert_eq!(a.counter("x_total"), 7);
        assert_eq!(a.counter("y_total"), 1);
        let h = &a.histograms["lat"];
        assert_eq!(h.buckets, vec![1, 2, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 5_003);
        assert!(h.buckets_sum_to_count());
    }

    #[test]
    fn quantiles_report_bucket_bounds() {
        let h = hist(&[10, 100, 1_000], &[5, 3, 1, 1], 2_000);
        assert_eq!(h.quantile(0.5), Some(10));
        assert_eq!(h.quantile(0.9), Some(1_000));
        // The +Inf bucket reports the largest finite bound.
        assert_eq!(h.quantile(1.0), Some(1_000));
        assert_eq!(h.mean(), Some(200.0));
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }

    #[test]
    fn empty_snapshot_is_merge_identity() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x_total".into(), 3);
        a.gauges.insert("g".into(), -2);
        a.histograms.insert("lat".into(), hist(&[10], &[1, 1], 50));
        let mut merged = a.clone();
        merged.merge(&MetricsSnapshot::default());
        assert_eq!(merged, a);
        let mut from_empty = MetricsSnapshot::default();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
    }
}
