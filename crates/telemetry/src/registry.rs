//! The lock-light metrics registry and its cheap handles.
//!
//! Design: a [`Telemetry`] value is `Option<Arc<Inner>>`. The
//! *disabled* handle is `None`, so every operation on it is a single
//! branch — no allocation, no atomics, no locks. The *enabled* handle
//! shares one registry: metric registration takes a short `RwLock`
//! write once per distinct metric key; the returned [`Counter`] /
//! [`Gauge`] / [`Histogram`] handles hold an `Arc` straight to the
//! atomic cells, so the hot path (worker threads bumping counters,
//! stage spans recording durations) never touches the lock again.
//! Handles are `Clone` and are meant to be fetched once per subsystem
//! and cloned into workers / shards.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Default fixed bucket upper bounds for latency histograms, in
/// microseconds (an implicit `+Inf` bucket follows the last bound).
pub const LATENCY_BOUNDS_MICROS: [u64; 12] = [
    1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000,
];

/// Default fixed bucket upper bounds for size histograms, in bytes.
pub const SIZE_BOUNDS_BYTES: [u64; 10] = [
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

/// Default fixed bucket upper bounds for small-cardinality count
/// histograms (batch sizes, queue depths): powers of two up to 512.
pub const COUNT_BOUNDS: [u64; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Identity of one metric: a family name plus at most one label pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetricKey {
    /// Metric family name (`spector_pipeline_reports_total`).
    pub name: String,
    /// Optional single `{key="value"}` label pair.
    pub label: Option<(String, String)>,
}

impl MetricKey {
    /// Key with no label.
    pub fn plain(name: &str) -> MetricKey {
        MetricKey {
            name: name.to_owned(),
            label: None,
        }
    }

    /// Key with one label pair.
    pub fn labeled(name: &str, key: &str, value: &str) -> MetricKey {
        MetricKey {
            name: name.to_owned(),
            label: Some((key.to_owned(), value.to_owned())),
        }
    }

    /// Canonical rendered id — `name` or `name{key="value"}`. This is
    /// the string the JSON snapshot keys metrics by.
    pub fn render(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some((key, value)) => format!("{}{{{key}=\"{value}\"}}", self.name),
        }
    }

    /// Parses a rendered id back into a key (inverse of [`render`]
    /// for ids produced by it).
    ///
    /// [`render`]: MetricKey::render
    pub fn parse(rendered: &str) -> MetricKey {
        let Some((name, rest)) = rendered.split_once('{') else {
            return MetricKey::plain(rendered);
        };
        let Some(body) = rest.strip_suffix('}') else {
            return MetricKey::plain(rendered);
        };
        let Some((key, value)) = body.split_once('=') else {
            return MetricKey::plain(rendered);
        };
        MetricKey::labeled(name, key, value.trim_matches('"'))
    }
}

/// Where span/stage timing comes from.
///
/// `Wall` anchors at registry creation and reads the monotonic OS
/// clock; `Virtual` reads a shared atomic micros cell that tests (and
/// the fault layer's virtual-time harnesses) advance explicitly, so
/// recorded durations are bit-deterministic.
#[derive(Clone, Debug)]
pub enum TimeSource {
    /// Monotonic wall clock, anchored at registry creation.
    Wall(Instant),
    /// Shared virtual clock in microseconds; never advances on its own.
    Virtual(Arc<AtomicU64>),
}

impl TimeSource {
    /// Current time in microseconds under this source.
    pub fn now_micros(&self) -> u64 {
        match self {
            TimeSource::Wall(anchor) => anchor.elapsed().as_micros() as u64,
            TimeSource::Virtual(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

/// One histogram's shared cells: fixed bucket bounds, per-bucket
/// counts (plus the trailing `+Inf` bucket), total count and sum.
#[derive(Debug)]
pub struct HistogramCore {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> HistogramCore {
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, AtomicU64::default);
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|bound| value <= *bound)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug)]
struct Inner {
    time: TimeSource,
    counters: RwLock<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<HistogramCore>>>,
}

/// The registry handle. Cloning is one `Arc` bump (or nothing when
/// disabled); every subsystem that wants to record clones one of
/// these and pre-fetches its handles.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => f.write_str("Telemetry(disabled)"),
            Some(_) => f.write_str("Telemetry(enabled)"),
        }
    }
}

impl Telemetry {
    /// The no-op handle: every operation is a single branch.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// An enabled registry timing spans on the wall clock.
    pub fn enabled() -> Telemetry {
        Telemetry::with_time_source(TimeSource::Wall(Instant::now()))
    }

    /// An enabled registry timing spans on a shared virtual clock —
    /// deterministic under test and under the fault layer's clock.
    pub fn with_virtual_clock(clock: Arc<AtomicU64>) -> Telemetry {
        Telemetry::with_time_source(TimeSource::Virtual(clock))
    }

    /// An enabled registry over an explicit time source.
    pub fn with_time_source(time: TimeSource) -> Telemetry {
        Telemetry(Some(Arc::new(Inner {
            time,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        })))
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Current time under the registry's time source; `None` when
    /// disabled (callers skip timing work entirely).
    pub fn now_micros(&self) -> Option<u64> {
        self.0.as_ref().map(|inner| inner.time.now_micros())
    }

    /// Registers (or fetches) the counter `name` and returns its
    /// handle. Disabled registries return a no-op handle.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(MetricKey::plain(name))
    }

    /// [`counter`](Self::counter) with one label pair.
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> Counter {
        self.counter_with(MetricKey::labeled(name, key, value))
    }

    fn counter_with(&self, metric: MetricKey) -> Counter {
        let Some(inner) = &self.0 else {
            return Counter(None);
        };
        if let Some(cell) = inner.counters.read().get(&metric) {
            return Counter(Some(Arc::clone(cell)));
        }
        let mut map = inner.counters.write();
        let cell = map.entry(metric).or_default();
        Counter(Some(Arc::clone(cell)))
    }

    /// Registers (or fetches) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.0 else {
            return Gauge(None);
        };
        let metric = MetricKey::plain(name);
        if let Some(cell) = inner.gauges.read().get(&metric) {
            return Gauge(Some(Arc::clone(cell)));
        }
        let mut map = inner.gauges.write();
        let cell = map.entry(metric).or_default();
        Gauge(Some(Arc::clone(cell)))
    }

    /// Registers (or fetches) the histogram `name` with the given
    /// fixed bucket upper bounds (an `+Inf` bucket is implicit). The
    /// first registration of a key wins; later callers share its
    /// bounds — by construction every histogram of one name has one
    /// bucket layout, which is what keeps snapshot merging exact.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(MetricKey::plain(name), bounds)
    }

    /// [`histogram`](Self::histogram) with one label pair.
    pub fn histogram_labeled(
        &self,
        name: &str,
        key: &str,
        value: &str,
        bounds: &[u64],
    ) -> Histogram {
        self.histogram_with(MetricKey::labeled(name, key, value), bounds)
    }

    fn histogram_with(&self, metric: MetricKey, bounds: &[u64]) -> Histogram {
        let Some(inner) = &self.0 else {
            return Histogram(None);
        };
        if let Some(core) = inner.histograms.read().get(&metric) {
            return Histogram(Some(Arc::clone(core)));
        }
        let mut map = inner.histograms.write();
        let core = map
            .entry(metric)
            .or_insert_with(|| Arc::new(HistogramCore::new(bounds)));
        Histogram(Some(Arc::clone(core)))
    }

    /// A consistent point-in-time snapshot of every registered metric.
    /// Disabled registries return the empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.0 else {
            return MetricsSnapshot::default();
        };
        let mut snapshot = MetricsSnapshot::default();
        for (key, cell) in inner.counters.read().iter() {
            snapshot
                .counters
                .insert(key.render(), cell.load(Ordering::Relaxed));
        }
        for (key, cell) in inner.gauges.read().iter() {
            snapshot
                .gauges
                .insert(key.render(), cell.load(Ordering::Relaxed));
        }
        for (key, core) in inner.histograms.read().iter() {
            snapshot.histograms.insert(key.render(), core.snapshot());
        }
        snapshot
    }
}

/// Monotonic counter handle. No-op when fetched from a disabled
/// registry.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|cell| cell.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Gauge handle: a signed value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds (possibly negative) `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map(|cell| cell.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Fixed-bucket histogram handle.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Observation count so far (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map(|core| core.count.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let telemetry = Telemetry::disabled();
        let counter = telemetry.counter("spector_test_total");
        counter.inc();
        counter.add(41);
        assert_eq!(counter.get(), 0);
        let gauge = telemetry.gauge("spector_test_gauge");
        gauge.set(7);
        assert_eq!(gauge.get(), 0);
        let histogram = telemetry.histogram("spector_test_micros", &LATENCY_BOUNDS_MICROS);
        histogram.record(123);
        assert_eq!(histogram.count(), 0);
        assert_eq!(telemetry.now_micros(), None);
        assert_eq!(telemetry.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn counters_share_cells_across_fetches_and_clones() {
        let telemetry = Telemetry::enabled();
        let a = telemetry.counter("spector_shared_total");
        let b = telemetry.counter("spector_shared_total");
        let c = a.clone();
        a.inc();
        b.add(2);
        c.add(3);
        assert_eq!(telemetry.counter("spector_shared_total").get(), 6);
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counters["spector_shared_total"], 6);
    }

    #[test]
    fn labeled_metrics_render_and_parse() {
        let key = MetricKey::labeled("spector_stage_micros", "stage", "pipeline/flow_join");
        let rendered = key.render();
        assert_eq!(
            rendered,
            "spector_stage_micros{stage=\"pipeline/flow_join\"}"
        );
        assert_eq!(MetricKey::parse(&rendered), key);
        assert_eq!(
            MetricKey::parse("spector_plain_total"),
            MetricKey::plain("spector_plain_total")
        );
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let telemetry = Telemetry::enabled();
        let histogram = telemetry.histogram("spector_lat_micros", &[10, 100]);
        for value in [0, 10, 11, 100, 5_000] {
            histogram.record(value);
        }
        let snapshot = telemetry.snapshot();
        let h = &snapshot.histograms["spector_lat_micros"];
        assert_eq!(h.bounds, vec![10, 100]);
        assert_eq!(h.buckets, vec![2, 2, 1]);
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 5_121, "0 + 10 + 11 + 100 + 5_000");
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn virtual_clock_is_deterministic() {
        let clock = Arc::new(AtomicU64::new(0));
        let telemetry = Telemetry::with_virtual_clock(Arc::clone(&clock));
        assert_eq!(telemetry.now_micros(), Some(0));
        clock.store(1_234, Ordering::Relaxed);
        assert_eq!(telemetry.now_micros(), Some(1_234));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let telemetry = Telemetry::enabled();
        let gauge = telemetry.gauge("spector_in_flight");
        gauge.add(5);
        gauge.add(-2);
        assert_eq!(gauge.get(), 3);
        gauge.set(0);
        assert_eq!(gauge.get(), 0);
    }
}
