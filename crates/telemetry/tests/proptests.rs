//! Property tests pinning the algebra the telemetry subsystem leans
//! on: snapshot merge is associative and commutative with the empty
//! snapshot as identity, and histograms never lose observations
//! (bucket counts always sum to the total count, before and after
//! merging).

use proptest::prelude::*;
use spector_telemetry::{HistogramSnapshot, MetricsSnapshot, Telemetry, LATENCY_BOUNDS_MICROS};

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    // Layouts drawn from a tiny set of bound vectors so merges hit
    // both the same-layout fast path and the padded mismatch path.
    let layouts = prop_oneof![
        Just(vec![10u64, 100, 1_000]),
        Just(vec![10u64, 100]),
        Just(LATENCY_BOUNDS_MICROS.to_vec()),
    ];
    (layouts, proptest::collection::vec(0u64..50, 0..16)).prop_map(|(bounds, values)| {
        let telemetry = Telemetry::enabled();
        let h = telemetry.histogram("h", &bounds);
        let mut sum = 0u64;
        for v in &values {
            h.record(*v * 97);
            sum += *v * 97;
        }
        let snap = telemetry.snapshot().histograms["h"].clone();
        assert_eq!(snap.sum, sum);
        snap
    })
}

fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    let names = || prop_oneof![Just("a_total"), Just("b_total"), Just("c_total")];
    (
        proptest::collection::vec((names(), 0u64..1_000), 0..3),
        proptest::collection::vec((names(), (0u64..100).prop_map(|v| v as i64 - 50)), 0..3),
        proptest::collection::vec(
            (prop_oneof![Just("lat"), Just("size")], arb_histogram()),
            0..3,
        ),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsSnapshot {
            counters: counters
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            gauges: gauges.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
            histograms: histograms
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        })
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in arb_snapshot(), b in arb_snapshot(), c in arb_snapshot()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_is_identity(a in arb_snapshot()) {
        let mut left = MetricsSnapshot::default();
        left.merge(&a);
        prop_assert_eq!(&left, &a);
        let mut right = a.clone();
        right.merge(&MetricsSnapshot::default());
        prop_assert_eq!(&right, &a);
    }

    #[test]
    fn histogram_buckets_always_sum_to_count(h in arb_histogram(), g in arb_histogram()) {
        prop_assert!(h.buckets_sum_to_count());
        let mut merged = h.clone();
        merged.merge(&g);
        prop_assert!(merged.buckets_sum_to_count());
        prop_assert_eq!(merged.count, h.count + g.count);
        prop_assert_eq!(merged.sum, h.sum + g.sum);
    }

    #[test]
    fn recorded_values_land_in_exactly_one_bucket(values in proptest::collection::vec(0u64..2_000_000, 0..64)) {
        let telemetry = Telemetry::enabled();
        let h = telemetry.histogram("lat", &LATENCY_BOUNDS_MICROS);
        for v in &values {
            h.record(*v);
        }
        let snap = &telemetry.snapshot().histograms["lat"];
        prop_assert!(snap.buckets_sum_to_count());
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
    }
}
