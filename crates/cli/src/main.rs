//! `libspector` — run measurement campaigns over a synthetic app store.
//!
//! ```text
//! libspector run    --apps 200 --seed 42 --events 1000 [--workers 0]
//!                   [--out campaign.json] [--method-scale 0.02]
//!                   [--chaos none|light|heavy] [--chaos-seed S]
//!                   [--max-failures N] [--checkpoint FILE]
//!                   [--checkpoint-every N] [--resume FILE]
//! libspector report --campaign campaign.json
//! libspector sweep  --apps 50 --seed 42 --events 10,100,500,1000
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use libspector::knowledge::Knowledge;
use spector_analysis::FullReport;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_dispatch::{
    run_campaign_stored, run_corpus, save_campaign, AppFailure, Campaign, CampaignConfig,
    CheckpointConfig, DispatchConfig, RetryPolicy,
};
use spector_faults::{FaultPlan, FaultProfile};
use spector_sampling::{SamplingConfig, TraceBudget};
use spector_store::{
    CampaignKind, CampaignMeta, CampaignSealRecord, StoreOptions, StoreReader, StoreTelemetry,
    StoreWriter, StoredFailure, DEFAULT_SEAL_EVERY,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "live" => cmd_live(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "baseline" => cmd_baseline(&args[1..]),
        "policy" => cmd_policy(&args[1..]),
        "export" => cmd_export(&args[1..]),
        "shapes" => cmd_shapes(&args[1..]),
        "detect-quality" => cmd_detect_quality(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
libspector — context-aware network traffic analysis (simulated reproduction)

USAGE:
  libspector run    --apps N [--seed S] [--events E] [--workers W]
                    [--out FILE] [--method-scale F]
                    [--modern-fraction F]  (IPv6/pooled/TLS-like/CONNECT traffic share)
                    [--chaos none|light|heavy] [--chaos-seed S]
                    [--max-failures N] [--checkpoint FILE]
                    [--checkpoint-every N] [--resume FILE]
                    [--sample-rate F]    (per-socket report sampling, default 1.0)
                    [--trace-budget N [--trace-budget-window MICROS]]
                    [--metrics FILE]  (also writes FILE.prom)
                    [--store DIR]     (durable columnar campaign store)
                    [--store-seal-every N]  (analyses per sealed segment)
  libspector live   --apps N [--seed S] [--events E] [--workers W]
                    [--shards K] [--batch-events B] [--snapshot-every N]
                    [--modern-fraction F]
                    [--sample-rate F] [--trace-budget N [--trace-budget-window MICROS]]
                    [--metrics FILE] [--store DIR] [--store-seal-every N]
  libspector query  --store DIR [--campaign N | --campaigns N1,N2,...]
                    [--report] [--top N] [--metrics FILE]
                    (--report prints the stored campaign's standard report,
                     byte-identical to what `run` printed; integrity counts
                     — ok/rejected/orphaned/unsealed — go to stderr)
  libspector metrics --file FILE [--prometheus]  (per-stage profile table)
  libspector report --campaign FILE
  libspector sweep  --apps N [--seed S] --events E1,E2,...
  libspector baseline --campaign FILE          (DNS-only classifier comparison)
  libspector policy   --campaign FILE [--min-mb F]  (blacklist suggestion + what-if)
  libspector export   --campaign FILE --out DIR     (CSV per table/figure)
  libspector shapes   --campaign FILE                (check paper shapes)
  libspector detect-quality [--apps N] [--seed S] [--method-scale F]
                    [--obf-seed S]   (cascade precision/recall per obfuscation level)
";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value {raw:?} for {name}")),
    }
}

/// Parses the shared sampling/budget flags. The inclusion seed is
/// derived from the campaign seed so reruns are reproducible, but
/// offset so changing the rate never perturbs the monkey workload.
fn parse_sampling(args: &[String], seed: u64) -> Result<SamplingConfig, String> {
    let rate: f64 = parse_flag(args, "--sample-rate", 1.0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--sample-rate {rate} outside [0, 1]"));
    }
    let budget: Option<u64> = match flag(args, "--trace-budget") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value {raw:?} for --trace-budget"))?,
        ),
    };
    let window_micros: u64 = parse_flag(args, "--trace-budget-window", 0)?;
    Ok(SamplingConfig {
        rate,
        seed: seed ^ 0x5a4d_9a17_c0ff_ee01,
        budget: budget.map(|max_reports| TraceBudget {
            max_reports,
            window_micros,
        }),
    })
}

/// Writes the snapshot as stable JSON to `path` and as Prometheus
/// text to `path` + ".prom".
fn write_metrics(snapshot: &spector_telemetry::MetricsSnapshot, path: &str) -> Result<(), String> {
    let json = serde_json::to_string_pretty(snapshot).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    let prom_path = format!("{path}.prom");
    let prom = spector_telemetry::render_prometheus(snapshot);
    std::fs::write(&prom_path, prom).map_err(|e| format!("writing {prom_path}: {e}"))?;
    eprintln!("metrics written to {path} (+ {prom_path})");
    Ok(())
}

fn build_corpus(apps: usize, seed: u64, method_scale: f64, modern_fraction: f64) -> Corpus {
    eprintln!("generating corpus: {apps} apps, seed {seed}");
    Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale,
            modern_fraction,
            ..Default::default()
        },
        ..Default::default()
    })
}

/// Opens `dir` as a store and registers a new campaign for this
/// invocation.
fn open_store_writer(
    dir: &str,
    seed: u64,
    apps: usize,
    events: u32,
    kind: CampaignKind,
    seal_every: usize,
    telemetry: &spector_telemetry::Telemetry,
) -> Result<std::sync::Mutex<StoreWriter>, String> {
    let meta = CampaignMeta {
        seed,
        apps,
        monkey_events: events as usize,
        kind,
    };
    let options = StoreOptions {
        seal_every,
        telemetry: StoreTelemetry::new(telemetry),
    };
    let writer = StoreWriter::create(std::path::Path::new(dir), &meta, options)
        .map_err(|e| format!("opening store {dir}: {e}"))?;
    eprintln!("store: writing campaign {} to {dir}", writer.campaign_id());
    Ok(std::sync::Mutex::new(writer))
}

/// Seals the store campaign, preserving the failure ledger.
fn seal_store(
    writer: std::sync::Mutex<StoreWriter>,
    seed: u64,
    apps: usize,
    events: u32,
    failures: &[AppFailure],
) -> Result<(), String> {
    let seal = CampaignSealRecord {
        seed,
        apps,
        monkey_events: events as usize,
        failures: failures
            .iter()
            .map(|f| StoredFailure {
                index: f.index,
                package: f.package.clone(),
                error: f.error.clone(),
                attempts: f.attempts,
            })
            .collect(),
    };
    writer
        .into_inner()
        .expect("store writer poisoned")
        .finish(&seal)
        .map_err(|e| format!("sealing store campaign: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let apps: usize = parse_flag(args, "--apps", 100)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let events: u32 = parse_flag(args, "--events", 1_000)?;
    let workers: usize = parse_flag(args, "--workers", 0)?;
    let method_scale: f64 = parse_flag(args, "--method-scale", 0.02)?;
    let modern_fraction: f64 = parse_flag(args, "--modern-fraction", 0.0)?;
    let out: Option<String> = flag(args, "--out");
    let chaos_profile: FaultProfile = parse_flag(args, "--chaos", FaultProfile::none())?;
    let chaos_seed: u64 = parse_flag(args, "--chaos-seed", seed)?;
    let max_failures: usize = parse_flag(args, "--max-failures", 0)?;
    let checkpoint: Option<String> = flag(args, "--checkpoint");
    let checkpoint_every: usize = parse_flag(args, "--checkpoint-every", 25)?;
    let resume: Option<String> = flag(args, "--resume");
    let metrics_out: Option<String> = flag(args, "--metrics");
    let store_dir: Option<String> = flag(args, "--store");
    let seal_every: usize = parse_flag(args, "--store-seal-every", DEFAULT_SEAL_EVERY)?;
    let sampling = parse_sampling(args, seed)?;

    let corpus = build_corpus(apps, seed, method_scale, modern_fraction);
    eprintln!("scanning corpus (LibRadar aggregate + domain labels)");
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = events;
    dispatch.experiment.monkey.seed = seed;
    dispatch.experiment.supervisor.sampling = sampling;
    if !sampling.is_exact() {
        eprintln!(
            "sampled tracing: rate {}, budget {}",
            sampling.rate,
            match sampling.budget {
                Some(b) => format!(
                    "{} report(s) per {} us window",
                    b.max_reports, b.window_micros
                ),
                None => "none".to_owned(),
            }
        );
    }

    let chaos = (!chaos_profile.is_noop()).then(|| FaultPlan::new(chaos_seed, chaos_profile));
    if let Some(plan) = &chaos {
        eprintln!("chaos enabled: seed {}", plan.seed());
    }
    let telemetry = if metrics_out.is_some() {
        spector_telemetry::Telemetry::enabled()
    } else {
        spector_telemetry::Telemetry::disabled()
    };
    let config = CampaignConfig {
        dispatch,
        chaos,
        retry: if chaos.is_some() {
            RetryPolicy::default()
        } else {
            RetryPolicy::never()
        },
        checkpoint: checkpoint.map(|path| CheckpointConfig {
            path: PathBuf::from(path),
            every: checkpoint_every,
        }),
        resume_from: resume.map(PathBuf::from),
        telemetry: telemetry.clone(),
        ..Default::default()
    };
    let store = store_dir
        .as_deref()
        .map(|dir| {
            open_store_writer(
                dir,
                seed,
                apps,
                events,
                CampaignKind::Run,
                seal_every,
                &telemetry,
            )
        })
        .transpose()?;
    eprintln!("running campaign ({events} monkey events per app)");
    let progress = |done: usize| {
        if done.is_multiple_of(50) {
            eprintln!("  {done}/{apps} apps done");
        }
    };
    let outcome = run_campaign_stored(
        &corpus,
        &knowledge,
        &config,
        None,
        Some(&progress),
        store.as_ref(),
    )
    .map_err(|e| format!("campaign checkpoint i/o: {e}"))?;
    if let Some(writer) = store {
        seal_store(writer, seed, apps, events, &outcome.failures)?;
    }
    for failure in &outcome.failures {
        eprintln!(
            "warning: app {} ({}) failed after {} attempt(s): {}",
            failure.index, failure.package, failure.attempts, failure.error
        );
    }
    if outcome.retried > 0 || outcome.injected.total() > 0 {
        eprintln!(
            "chaos summary: {} retried app run(s), {} injected fault event(s)",
            outcome.retried,
            outcome.injected.total()
        );
    }
    if let Some(path) = &metrics_out {
        write_metrics(&telemetry.snapshot(), path)?;
    }
    let failures = outcome.failures;
    let analyses = outcome.analyses;
    let report = FullReport::build(&analyses);
    println!("{}", report.render());
    if let Some(out) = out {
        let campaign = Campaign {
            seed,
            apps,
            monkey_events: events,
            analyses,
            failures: failures.clone(),
        };
        save_campaign(&campaign, &PathBuf::from(&out)).map_err(|e| e.to_string())?;
        eprintln!("campaign saved to {out}");
    }
    if failures.len() > max_failures {
        return Err(format!(
            "{} app(s) failed, exceeding --max-failures {max_failures}",
            failures.len()
        ));
    }
    Ok(())
}

fn cmd_live(args: &[String]) -> Result<(), String> {
    use spector_dispatch::LiveCollector;
    use spector_live::{LiveConfig, LiveEngine, LiveSummary};

    let apps: usize = parse_flag(args, "--apps", 50)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let events: u32 = parse_flag(args, "--events", 500)?;
    let workers: usize = parse_flag(args, "--workers", 0)?;
    let shards: usize = parse_flag(args, "--shards", 2)?;
    let batch_events: usize = parse_flag(args, "--batch-events", 64)?;
    let method_scale: f64 = parse_flag(args, "--method-scale", 0.02)?;
    let modern_fraction: f64 = parse_flag(args, "--modern-fraction", 0.0)?;
    let snapshot_every: usize = parse_flag(args, "--snapshot-every", 10)?;
    let metrics_out: Option<String> = flag(args, "--metrics");
    let store_dir: Option<String> = flag(args, "--store");
    let seal_every: usize = parse_flag(args, "--store-seal-every", DEFAULT_SEAL_EVERY)?;
    let sampling = parse_sampling(args, seed)?;

    let corpus = build_corpus(apps, seed, method_scale, modern_fraction);
    eprintln!("scanning corpus (LibRadar aggregate + domain labels)");
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = events;
    dispatch.experiment.monkey.seed = seed;
    dispatch.experiment.supervisor.sampling = sampling;
    if !sampling.is_exact() {
        eprintln!("sampled tracing: rate {}", sampling.rate);
    }

    let telemetry = if metrics_out.is_some() {
        spector_telemetry::Telemetry::enabled()
    } else {
        spector_telemetry::Telemetry::disabled()
    };
    let store = store_dir
        .as_deref()
        .map(|dir| {
            open_store_writer(
                dir,
                seed,
                apps,
                events,
                CampaignKind::Live,
                seal_every,
                &telemetry,
            )
        })
        .transpose()?;
    let collector = LiveCollector::new(LiveEngine::start(
        std::sync::Arc::new(knowledge.clone()),
        LiveConfig {
            shards,
            batch_events,
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    ));
    eprintln!(
        "streaming campaign through {shards} shard(s), batches of {batch_events}, \
         {events} monkey events per app"
    );
    let progress = |done: usize| {
        if snapshot_every > 0 && done.is_multiple_of(snapshot_every) {
            let snapshot = collector.snapshot();
            if let Some(writer) = &store {
                if let Err(error) = writer
                    .lock()
                    .expect("store writer poisoned")
                    .append_live_snapshot(&snapshot)
                {
                    eprintln!("warning: store snapshot flush failed: {error}");
                }
            }
            eprintln!(
                "  [{done}/{apps}] {}",
                spector_analysis::live::brief(&snapshot)
            );
        }
    };
    // Matches what `run_corpus_live` builds: dispatch telemetry stays
    // default so the metrics snapshot remains the live engine's alone.
    let campaign_config = CampaignConfig {
        dispatch: dispatch.clone(),
        ..Default::default()
    };
    let outcome = run_campaign_stored(
        &corpus,
        &knowledge,
        &campaign_config,
        Some(&collector),
        Some(&progress),
        store.as_ref(),
    )
    .map_err(|e| format!("campaign store i/o: {e}"))?;
    if let Some(writer) = store {
        seal_store(writer, seed, apps, events, &outcome.failures)?;
    }
    let (live, live_metrics) = collector.finish_with_metrics();
    if let Some(path) = &metrics_out {
        write_metrics(&live_metrics, path)?;
    }
    print!("{}", spector_analysis::live::render(&live));
    for failure in &outcome.failures {
        eprintln!(
            "warning: app {} ({}) failed: {}",
            failure.index, failure.package, failure.error
        );
    }

    // The engine guarantees its final summary equals the offline
    // pipeline's; verify on every invocation and fail loudly if not.
    let offline = LiveSummary::from_analyses(&outcome.analyses);
    let equivalent = live.flows == offline.flows
        && live.unattributed_flows == offline.unattributed_flows
        && live.per_library == offline.per_library
        && live.per_domain_category == offline.per_domain_category
        && live.total_sent == offline.total_sent
        && live.total_recv == offline.total_recv
        && live.unjoined_reports() == offline.unjoined_reports();
    if !equivalent {
        return Err("live summary diverged from the offline pipeline".into());
    }
    eprintln!(
        "offline equivalence: OK ({} flows, {} libraries, {} domain categories)",
        live.flows,
        live.per_library.len(),
        live.per_domain_category.len(),
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let dir = flag(args, "--store").ok_or("missing --store DIR")?;
    let campaign: Option<u32> = match flag(args, "--campaign") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("invalid value {raw:?} for --campaign"))?,
        ),
    };
    let campaigns: Option<Vec<u32>> = match flag(args, "--campaigns") {
        None => campaign.map(|c| vec![c]),
        Some(_) if campaign.is_some() => {
            return Err("--campaign and --campaigns are mutually exclusive".into());
        }
        Some(raw) => Some(
            raw.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| format!("bad campaign id {s:?}"))
                })
                .collect::<Result<Vec<u32>, String>>()?,
        ),
    };
    let top: usize = parse_flag(args, "--top", 20)?;
    let report = args.iter().any(|a| a == "--report");
    let metrics_out: Option<String> = flag(args, "--metrics");

    let telemetry = if metrics_out.is_some() {
        spector_telemetry::Telemetry::enabled()
    } else {
        spector_telemetry::Telemetry::disabled()
    };
    let reader =
        StoreReader::open_with(std::path::Path::new(&dir), StoreTelemetry::new(&telemetry))
            .map_err(|e| format!("opening store {dir}: {e}"))?;
    for (file, kind) in &reader.integrity().rejected {
        eprintln!("warning: rejected segment {file}: {}", kind.label());
    }
    let integrity = reader.integrity();
    eprintln!(
        "store integrity: {} segment(s) ok, {} rejected, {} orphaned, {} unsealed campaign(s)",
        integrity.segments_ok,
        integrity.rejected.len(),
        integrity.orphaned_segments,
        integrity.unsealed_campaigns,
    );

    if report {
        // The stored campaign's standard report: byte-identical to the
        // stdout `libspector run` produced for the same campaign.
        let id = match campaigns.as_deref() {
            Some([id]) => *id,
            Some(_) => return Err("--report takes exactly one campaign".into()),
            None => match reader.campaigns() {
                [only] => only.id,
                [] => return Err(format!("store {dir} holds no campaigns")),
                _ => return Err("--report needs --campaign N (store holds several)".into()),
            },
        };
        let full = spector_analysis::storeq::report_from_store(&reader, id);
        println!("{}", full.render());
    } else {
        let stats = spector_analysis::storeq::compute(&reader, campaigns.as_deref());
        print!("{}", spector_analysis::storeq::render(&stats, top));
    }
    if let Some(path) = &metrics_out {
        write_metrics(&telemetry.snapshot(), path)?;
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--file").ok_or("missing --file FILE (a --metrics JSON snapshot)")?;
    let raw = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
    let snapshot: spector_telemetry::MetricsSnapshot =
        serde_json::from_str(&raw).map_err(|e| format!("parsing {path}: {e}"))?;
    if args.iter().any(|a| a == "--prometheus") {
        print!("{}", spector_telemetry::render_prometheus(&snapshot));
    } else {
        print!("{}", spector_analysis::profile::render_profile(&snapshot));
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--campaign").ok_or("missing --campaign FILE")?;
    let campaign =
        spector_dispatch::load_campaign(&PathBuf::from(&path)).map_err(|e| e.to_string())?;
    let report = FullReport::build(&campaign.analyses);
    println!("{}", report.render());
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let apps: usize = parse_flag(args, "--apps", 50)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let raw_events = flag(args, "--events").unwrap_or_else(|| "10,100,500,1000".to_owned());
    let budgets: Vec<u32> = raw_events
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad event count {s:?}"))
        })
        .collect::<Result<_, _>>()?;

    let corpus = build_corpus(apps, seed, 0.02, 0.0);
    let knowledge = Knowledge::from_corpus(&corpus);
    println!(
        "{:>8} {:>14} {:>12}",
        "events", "mean coverage", "mean MB/app"
    );
    for &events in &budgets {
        let mut dispatch = DispatchConfig::default();
        dispatch.experiment.monkey.events = events;
        dispatch.experiment.monkey.seed = seed;
        let analyses = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;
        let report = FullReport::build(&analyses);
        let mb = report.headline.total_bytes as f64 / 1_048_576.0 / apps.max(1) as f64;
        println!(
            "{events:>8} {:>13.2}% {mb:>12.3}",
            report.fig10.mean_coverage_percent
        );
    }
    Ok(())
}

fn cmd_baseline(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--campaign").ok_or("missing --campaign FILE")?;
    let campaign =
        spector_dispatch::load_campaign(&PathBuf::from(&path)).map_err(|e| e.to_string())?;
    let comparison = libspector::baseline::compare(&campaign.analyses);
    println!("DNS-only baseline vs context-aware attribution");
    println!(
        "  total {:.2} MB | agree {:.2} MB | conflict {:.2} MB | invisible {:.2} MB",
        comparison.total_bytes as f64 / 1_048_576.0,
        comparison.agree_bytes as f64 / 1_048_576.0,
        comparison.conflict_bytes as f64 / 1_048_576.0,
        comparison.invisible_bytes as f64 / 1_048_576.0,
    );
    println!(
        "  misclassified/invisible {:.1}% | known-origin CDN {:.1}% (paper: 19.3%) | ad bytes missed {:.1}%",
        comparison.misclassified_fraction() * 100.0,
        comparison.known_origin_cdn_fraction() * 100.0,
        comparison.ad_miss_fraction() * 100.0,
    );
    Ok(())
}

fn cmd_policy(args: &[String]) -> Result<(), String> {
    use libspector::policy::{apply, suggest_blacklist, Action, Matcher, Policy};
    let path = flag(args, "--campaign").ok_or("missing --campaign FILE")?;
    let min_mb: f64 = parse_flag(args, "--min-mb", 0.5)?;
    let campaign =
        spector_dispatch::load_campaign(&PathBuf::from(&path)).map_err(|e| e.to_string())?;
    let suggestions = suggest_blacklist(&campaign.analyses, (min_mb * 1_048_576.0) as u64);
    if suggestions.is_empty() {
        println!("no AnT origin exceeds {min_mb} MB; nothing to suggest");
        return Ok(());
    }
    println!("suggested blacklist (AnT 2-level origins >= {min_mb} MB):");
    let mut policy = Policy::allow_by_default();
    for (origin, bytes) in &suggestions {
        println!("  {origin:<30} {:>9.2} MB", *bytes as f64 / 1_048_576.0);
        policy = policy.with_rule(
            &format!("block {origin}"),
            Matcher::LibraryPrefix(origin.clone()),
            Action::Block,
        );
    }
    let report = apply(&policy, &campaign.analyses);
    println!(
        "what-if: block {} of {} flows, {:.2} MB; {} apps fully silenced; saves ${:.3}/hour per app",
        report.blocked_flows,
        report.flows,
        report.blocked_bytes as f64 / 1_048_576.0,
        report.fully_blocked_apps,
        report.hourly_savings_usd(&libspector::cost::DataPlan::default(), campaign.analyses.len()),
    );
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--campaign").ok_or("missing --campaign FILE")?;
    let out = flag(args, "--out").ok_or("missing --out DIR")?;
    let campaign =
        spector_dispatch::load_campaign(&PathBuf::from(&path)).map_err(|e| e.to_string())?;
    let report = FullReport::build(&campaign.analyses);
    let written = spector_analysis::export::export_all(&report, &PathBuf::from(&out))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} CSV files to {out}: {}",
        written.len(),
        written.join(", ")
    );
    Ok(())
}

fn cmd_detect_quality(args: &[String]) -> Result<(), String> {
    use spector_analysis::detect::{evaluate, render, DetectQualityConfig};

    let defaults = DetectQualityConfig::default();
    let config = DetectQualityConfig {
        apps: parse_flag(args, "--apps", defaults.apps)?,
        seed: parse_flag(args, "--seed", defaults.seed)?,
        method_scale: parse_flag(args, "--method-scale", defaults.method_scale)?,
        obfuscation_seed: parse_flag(args, "--obf-seed", defaults.obfuscation_seed)?,
    };
    eprintln!(
        "grading detection cascade: {} apps per obfuscation level, seed {}",
        config.apps, config.seed
    );
    print!("{}", render(&evaluate(&config)));
    Ok(())
}

fn cmd_shapes(args: &[String]) -> Result<(), String> {
    let path = flag(args, "--campaign").ok_or("missing --campaign FILE")?;
    let campaign =
        spector_dispatch::load_campaign(&PathBuf::from(&path)).map_err(|e| e.to_string())?;
    let report = FullReport::build(&campaign.analyses);
    let checks = spector_analysis::paper::compare_to_paper(&report);
    print!("{}", spector_analysis::paper::render_checks(&checks));
    let holding = checks.iter().filter(|c| c.holds).count();
    if holding < checks.len() {
        return Err(format!("{} shape(s) out of band", checks.len() - holding));
    }
    Ok(())
}
