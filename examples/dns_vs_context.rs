//! RQ2, live: context-aware attribution vs a DNS-only baseline, plus
//! the BorderPatrol policy hand-off (§IV-B, §IV-E).
//!
//! Runs a campaign, classifies the same traffic twice — once with
//! Libspector's stack-trace context, once the way name-based systems do
//! (from the destination domain category alone) — and quantifies the
//! disagreement. Then derives a blacklist from the measured AnT traffic
//! and replays it as a policy to show what enforcement would save.
//!
//! ```text
//! cargo run --release -p spector-cli --example dns_vs_context
//! ```

use libspector::baseline;
use libspector::cost::DataPlan;
use libspector::knowledge::Knowledge;
use libspector::policy::{apply, suggest_blacklist, Action, Matcher, Policy};
use spector_corpus::{Corpus, CorpusConfig};
use spector_dispatch::{run_corpus, DispatchConfig};

fn main() {
    let apps = 60;
    let corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed: 1337,
        ..Default::default()
    });
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig::default();
    dispatch.experiment.monkey.events = 250;
    eprintln!("running {apps}-app campaign...");
    let analyses = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;

    // --- RQ2: how wrong is a DNS-only classifier? ---------------------
    let comparison = baseline::compare(&analyses);
    println!("== DNS-only baseline vs context-aware attribution ==");
    println!(
        "  total {:.2} MB | agree {:.2} MB | conflict {:.2} MB | invisible {:.2} MB",
        mb(comparison.total_bytes),
        mb(comparison.agree_bytes),
        mb(comparison.conflict_bytes),
        mb(comparison.invisible_bytes)
    );
    println!(
        "  misclassified or invisible: {:.1}% of all bytes",
        comparison.misclassified_fraction() * 100.0
    );
    println!(
        "  known-origin traffic terminating at CDNs: {:.1}% of all bytes (paper: 19.3%)",
        comparison.known_origin_cdn_fraction() * 100.0
    );
    println!(
        "  advertisement bytes a DNS-only view misses: {:.1}%",
        comparison.ad_miss_fraction() * 100.0
    );

    // --- The User-Agent baseline (Xu et al. / Maier et al.) -----------
    let ua = baseline::compare_user_agent(&analyses);
    println!("\n== User-Agent baseline ==");
    println!(
        "  {} flows: {} SDK-tagged ({} consistent with stack context), {} generic-UA, {} non-HTTP",
        ua.flows, ua.tagged_flows, ua.tagged_matching_context, ua.generic_flows, ua.non_http_flows
    );
    println!(
        "  header-visible identifiers cover only {:.1}% of bytes",
        ua.attributable_fraction() * 100.0
    );

    // --- §IV-E Security: derive and replay a blacklist ----------------
    let suggestions = suggest_blacklist(&analyses, 512 * 1024);
    println!("\n== suggested blacklist (AnT 2-level origins ≥ 0.5 MB) ==");
    let mut policy = Policy::allow_by_default();
    for (origin, bytes) in suggestions.iter().take(8) {
        println!("  {origin:<28} {:>8.2} MB", mb(*bytes));
        policy = policy.with_rule(
            &format!("block {origin}"),
            Matcher::LibraryPrefix(origin.clone()),
            Action::Block,
        );
    }
    let report = apply(&policy, &analyses);
    println!("\n== policy what-if (block the suggested origins) ==");
    println!(
        "  would block {} of {} flows, {:.2} MB of traffic",
        report.blocked_flows,
        report.flows,
        mb(report.blocked_bytes)
    );
    println!(
        "  {} apps would lose their entire network traffic",
        report.fully_blocked_apps
    );
    println!(
        "  user savings: ${:.3}/hour on a $10/GB plan",
        report.hourly_savings_usd(&DataPlan::default(), analyses.len())
    );
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1_048_576.0
}
