//! Store sweep: a miniature §IV measurement campaign.
//!
//! Generates a multi-category app store, runs every app through the
//! instrumented emulator in parallel, and prints the full evaluation
//! report — all tables and figures at campaign scale — exactly what the
//! `libspector run` command does, shown here as library usage.
//!
//! ```text
//! cargo run --release -p spector-cli --example store_sweep
//! ```

use libspector::knowledge::Knowledge;
use spector_analysis::FullReport;
use spector_corpus::{Corpus, CorpusConfig};
use spector_dispatch::{run_corpus, DispatchConfig};

fn main() {
    let apps = std::env::args()
        .nth(1)
        .and_then(|raw| raw.parse().ok())
        .unwrap_or(60usize);
    eprintln!("generating a {apps}-app store (seed 42)...");
    let corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed: 42,
        ..Default::default()
    });

    // The §III-D pre-scan: LibRadar aggregate + domain labels.
    let knowledge = Knowledge::from_corpus(&corpus);
    eprintln!(
        "knowledge: {} aggregated libraries, {} labeled domains",
        knowledge.aggregated.len(),
        knowledge.domain_categories.len()
    );

    let mut dispatch = DispatchConfig::default();
    dispatch.experiment.monkey.events = 250;
    let progress = |done: usize| {
        if done.is_multiple_of(20) {
            eprintln!("  {done}/{apps} apps analyzed");
        }
    };
    let analyses = run_corpus(&corpus, &knowledge, &dispatch, Some(&progress)).analyses;

    let report = FullReport::build(&analyses);
    println!("{}", report.render());

    // The paper's RQ2 check, computed live: how much ad-library traffic
    // would a DNS-only classifier misattribute?
    let fig9 = &report.fig9;
    let ad_to_cdn = fig9.column_share(
        spector_vtcat::DomainCategory::Cdn,
        spector_libradar::LibCategory::Advertisement,
    );
    println!(
        "RQ2: {:.1}% of advertisement-library traffic terminates at CDN domains — a\n\
         name-based classifier would label all of it 'CDN', missing the ad context.",
        ad_to_cdn * 100.0
    );
}
