//! Coverage study: the paper's §IV-C event-budget calibration.
//!
//! Before the large-scale run, the authors exercised 100 apps with 10,
//! 100, 500, 1,000, 5,000 and 10,000 monkey events and found that going
//! past 1,000 events "did not provide any significant benefits over the
//! number of methods called". This example repeats that pre-study on a
//! smaller corpus and prints the coverage curve.
//!
//! ```text
//! cargo run --release -p spector-cli --example coverage_study
//! ```

use libspector::knowledge::Knowledge;
use spector_analysis::FullReport;
use spector_corpus::{Corpus, CorpusConfig};
use spector_dispatch::{run_corpus, DispatchConfig};

fn main() {
    let apps = 25;
    let corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed: 99,
        ..Default::default()
    });
    let knowledge = Knowledge::from_corpus(&corpus);

    println!(
        "{:>8} {:>16} {:>16} {:>14}",
        "events", "mean coverage", "executed/app", "MB per app"
    );
    let mut previous_coverage = 0.0f64;
    for events in [10u32, 100, 500, 1_000, 5_000] {
        let mut dispatch = DispatchConfig::default();
        dispatch.experiment.monkey.events = events;
        dispatch.experiment.monkey.seed = 99;
        let analyses = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;
        let report = FullReport::build(&analyses);
        let executed: usize = analyses
            .iter()
            .map(|a| a.coverage.executed_methods)
            .sum::<usize>()
            / analyses.len().max(1);
        let mb_per_app =
            report.headline.total_bytes as f64 / 1_048_576.0 / analyses.len().max(1) as f64;
        let coverage = report.fig10.mean_coverage_percent;
        let delta = coverage - previous_coverage;
        println!(
            "{events:>8} {coverage:>15.2}% {executed:>16} {mb_per_app:>14.3}   (+{delta:.2} pp)"
        );
        previous_coverage = coverage;
    }
    println!(
        "\nDiminishing returns past ~1,000 events justify the paper's choice of\n\
         1,000 events @ 500 ms per app for the 25,000-app campaign."
    );
}
