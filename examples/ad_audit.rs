//! Ad audit: what do advertisement libraries cost the user?
//!
//! Runs a small campaign, isolates advertisement/tracker (AnT) traffic,
//! ranks the ad libraries by bytes, and applies the paper's §IV-D
//! monetary and energy models — the "is this app's ad load worth it"
//! question a store auditor or MDM operator would ask.
//!
//! ```text
//! cargo run -p spector-cli --example ad_audit
//! ```

use std::collections::BTreeMap;

use libspector::cost::{DataPlan, EnergyModel};
use libspector::knowledge::Knowledge;
use libspector::OriginKind;
use spector_corpus::{Corpus, CorpusConfig};
use spector_dispatch::{run_corpus, DispatchConfig};

fn main() {
    let apps = 40;
    let corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed: 2024,
        ..Default::default()
    });
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig::default();
    dispatch.experiment.monkey.events = 200;
    eprintln!("running {apps}-app campaign...");
    let analyses = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;

    // Rank AnT origin-libraries by bytes.
    let mut per_lib: BTreeMap<String, u64> = BTreeMap::new();
    let mut ant_total = 0u64;
    let mut grand_total = 0u64;
    let mut ant_apps = 0usize;
    for analysis in &analyses {
        let app_ant = analysis.ant_bytes();
        if app_ant > 0 {
            ant_apps += 1;
        }
        ant_total += app_ant;
        for flow in &analysis.flows {
            grand_total += flow.total_bytes();
            if !flow.is_ant {
                continue;
            }
            if let OriginKind::Library { origin_library, .. } = &flow.origin {
                *per_lib.entry(origin_library.clone()).or_default() += flow.total_bytes();
            }
        }
    }
    let mut ranked: Vec<(String, u64)> = per_lib.into_iter().collect();
    ranked.sort_by_key(|(_, b)| std::cmp::Reverse(*b));

    println!("top advertisement/tracker origin-libraries:");
    for (library, bytes) in ranked.iter().take(12) {
        println!("  {library:<48} {:>9.3} MB", *bytes as f64 / 1_048_576.0);
    }
    println!(
        "\nAnT traffic: {:.2} MB of {:.2} MB total ({:.1}%), present in {}/{} apps",
        ant_total as f64 / 1_048_576.0,
        grand_total as f64 / 1_048_576.0,
        ant_total as f64 / grand_total.max(1) as f64 * 100.0,
        ant_apps,
        analyses.len()
    );

    // Cost models (paper constants).
    let plan = DataPlan::default();
    let energy = EnergyModel::default();
    let per_app_session = ant_total as f64 / analyses.len().max(1) as f64;
    println!(
        "per-app ad session volume {:.2} MB -> ${:.3}/hour on a $10/GB plan",
        per_app_session / 1_048_576.0,
        plan.hourly_cost_usd(per_app_session)
    );
    println!(
        "energy: {:.0} J per session ({:.1}% of an 11.55 Wh battery)",
        energy.joules_for_bytes(per_app_session),
        energy.battery_fraction_for_bytes(per_app_session) * 100.0
    );
}
