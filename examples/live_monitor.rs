//! Live monitor: watch a campaign's attribution as it streams.
//!
//! Runs a small campaign through the dispatcher while a sharded
//! [`LiveEngine`] consumes every run's capture concurrently, printing
//! a one-line summary after each app finishes and the full live report
//! at the end — then proves the streaming view equals the offline
//! pipeline's answer.
//!
//! ```text
//! cargo run -p spector-cli --release --example live_monitor
//! ```

use std::sync::Arc;

use libspector::knowledge::Knowledge;
use spector_corpus::{Corpus, CorpusConfig};
use spector_dispatch::{run_corpus_live, DispatchConfig, LiveCollector};
use spector_live::{LiveConfig, LiveEngine, LiveSummary};

fn main() {
    let corpus = Corpus::generate(&CorpusConfig {
        apps: 12,
        seed: 99,
        ..Default::default()
    });
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig::default();
    dispatch.experiment.monkey.events = 200;

    let engine = LiveEngine::start(
        Arc::new(knowledge.clone()),
        LiveConfig {
            shards: 2,
            collector_port: dispatch.experiment.supervisor.collector_port,
            ..Default::default()
        },
    );
    let collector = LiveCollector::new(engine);

    let total = corpus.apps.len();
    println!("streaming {total} apps through 2 shards...\n");
    let outcome = {
        let collector = &collector;
        run_corpus_live(
            &corpus,
            &knowledge,
            &dispatch,
            collector,
            Some(&move |done| {
                println!(
                    "[{done:>2}/{total}] {}",
                    spector_analysis::live::brief(&collector.snapshot())
                );
            }),
        )
    };
    for failure in &outcome.failures {
        eprintln!(
            "app {} ({}) failed: {}",
            failure.index, failure.package, failure.error
        );
    }

    let live = collector.finish();
    println!("\n{}", spector_analysis::live::render(&live));

    // The punchline: the streaming view is the offline answer.
    let offline = LiveSummary::from_analyses(&outcome.analyses);
    assert_eq!(live.flows, offline.flows);
    assert_eq!(live.per_library, offline.per_library);
    assert_eq!(live.total_sent, offline.total_sent);
    assert_eq!(live.total_recv, offline.total_recv);
    println!(
        "offline equivalence: OK ({} flows, {} libraries)",
        live.flows,
        live.per_library.len()
    );
}
