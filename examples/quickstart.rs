//! Quickstart: analyze one app end-to-end.
//!
//! Generates a single synthetic app, runs it through the instrumented
//! emulator with the monkey, and prints what Libspector attributes each
//! TCP flow to — the library origin, its category, the destination
//! domain and its category, and byte counts — plus method coverage.
//!
//! ```text
//! cargo run -p spector-cli --example quickstart
//! ```

use libspector::experiment::{resolver_for, run_app, ExperimentConfig};
use libspector::knowledge::Knowledge;
use libspector::pipeline::analyze_run;
use libspector::OriginKind;
use spector_corpus::{Corpus, CorpusConfig};

fn main() {
    // A one-app "store" with a deterministic seed.
    let corpus = Corpus::generate(&CorpusConfig {
        apps: 1,
        seed: 7,
        ..Default::default()
    });
    let app = &corpus.apps[0];
    println!(
        "app {} ({}, archetype {:?})",
        app.package, app.category.name, app.archetype
    );

    // Drive the app: process init, platform traffic, 300 monkey events.
    let mut config = ExperimentConfig::default();
    config.monkey.events = 300;
    let resolver = resolver_for(&corpus.domains);
    let system: Vec<_> = app
        .system_ops
        .iter()
        .map(|s| (s.op.clone(), s.dispatcher))
        .collect();
    let raw = run_app(&app.apk, &resolver, &system, &config).expect("generated apk is valid");
    println!(
        "capture: {} packets over {:.1} virtual seconds",
        raw.capture.len(),
        raw.duration_micros as f64 / 1e6
    );

    // Offline analysis against corpus knowledge.
    let knowledge = Knowledge::from_corpus(&corpus);
    let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
    println!(
        "coverage: {:.2}% of {} dex methods",
        analysis.coverage.percent(),
        analysis.coverage.total_methods
    );
    println!("\nattributed flows:");
    for flow in &analysis.flows {
        let origin = match &flow.origin {
            OriginKind::Library { origin_library, .. } => origin_library.clone(),
            OriginKind::Builtin => "*".to_owned(),
        };
        println!(
            "  {:<42} [{:<16}] -> {:<28} [{:<16}] {:>9} B recv{}",
            origin,
            flow.lib_category.to_string(),
            flow.domain.as_deref().unwrap_or("?"),
            flow.domain_category.to_string(),
            flow.recv_bytes,
            if flow.is_ant { "  (AnT)" } else { "" },
        );
    }
    println!(
        "\ntotals: sent {} B, received {} B, AnT share {:.1}%",
        analysis.total_sent(),
        analysis.total_recv(),
        analysis.ant_bytes() as f64 / (analysis.total_sent() + analysis.total_recv()).max(1) as f64
            * 100.0
    );
}
