//! The store-backed query wall: a campaign written through
//! `spector-store` must answer queries **byte-identically** to the
//! in-memory pipeline that produced it.
//!
//! The anchor fixture is the 400-app benchmark campaign
//! (`seed 7_778`, 60 monkey events, `method_scale 0.004`): one
//! deterministic run, stored once, then attacked from every angle —
//! the golden report snapshot, the columnar query totals, torn
//! segments, and a fresh `libspector query` process against a store
//! the `run` subcommand wrote.
//!
//! Regenerate the golden after an intentional renderer change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p spector-cli --test store_query
//! ```

use std::path::PathBuf;
use std::process::Command;
use std::sync::{Mutex, OnceLock};

use libspector::knowledge::Knowledge;
use libspector::pipeline::AppAnalysis;
use spector_analysis::{storeq, FullReport};
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_dispatch::{run_campaign_stored, CampaignConfig, DispatchConfig};
use spector_store::{
    CampaignKind, CampaignMeta, CampaignSealRecord, StoreOptions, StoreReader, StoreWriter,
};

/// The stored 400-app fixture campaign: in-memory analyses plus the
/// store directory they were appended to, built exactly once.
struct Fixture {
    analyses: Vec<AppAnalysis>,
    dir: PathBuf,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let apps = 400;
        let seed = 7_778;
        let corpus = Corpus::generate(&CorpusConfig {
            apps,
            seed,
            appgen: AppGenConfig {
                method_scale: 0.004,
                ..Default::default()
            },
            ..Default::default()
        });
        let knowledge = Knowledge::from_corpus(&corpus);
        let mut dispatch = DispatchConfig {
            workers: 2,
            ..Default::default()
        };
        dispatch.experiment.monkey.events = 60;
        dispatch.experiment.monkey.seed = seed;
        let config = CampaignConfig {
            dispatch,
            ..Default::default()
        };
        let dir = std::env::temp_dir().join(format!("spector-store-golden-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = CampaignMeta {
            seed,
            apps,
            monkey_events: 60,
            kind: CampaignKind::Run,
        };
        let writer = Mutex::new(
            StoreWriter::create(&dir, &meta, StoreOptions::default()).expect("store opens"),
        );
        let outcome = run_campaign_stored(&corpus, &knowledge, &config, None, None, Some(&writer))
            .expect("fixture campaign runs");
        writer
            .into_inner()
            .unwrap()
            .finish(&CampaignSealRecord {
                seed,
                apps,
                monkey_events: 60,
                failures: vec![],
            })
            .expect("fixture campaign seals");
        assert_eq!(outcome.analyses.len(), apps, "fixture must not lose apps");
        Fixture {
            analyses: outcome.analyses,
            dir,
        }
    })
}

fn golden_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/query_report.txt"
    ))
}

fn update_requested() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The tentpole identity, pinned three ways at once: the store-backed
/// report equals the in-memory report byte-for-byte, and both equal
/// the checked-in golden snapshot.
#[test]
fn stored_report_is_byte_identical_to_in_memory_and_golden() {
    let fixture = fixture();
    let reader = StoreReader::open(&fixture.dir).expect("store reads back");
    assert_eq!(reader.integrity().rejected.len(), 0);
    assert_eq!(reader.integrity().unsealed_campaigns, 0);

    let stored = storeq::report_from_store(&reader, 0).render();
    let in_memory = FullReport::build(&fixture.analyses).render();
    assert_eq!(
        stored, in_memory,
        "store round-trip must not change a single report byte"
    );

    let path = golden_path();
    if update_requested() {
        std::fs::write(&path, &stored).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("tests/golden/query_report.txt (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        golden, stored,
        "query_report: stored report differs from golden \
         (regenerate with UPDATE_GOLDEN=1 if intentional)"
    );
}

/// The columnar scan (no materialization) agrees with the analyses on
/// every conserved quantity.
#[test]
fn columnar_query_conserves_campaign_totals() {
    let fixture = fixture();
    let reader = StoreReader::open(&fixture.dir).expect("store reads back");
    let stats = storeq::compute(&reader, None);

    assert_eq!(stats.apps as usize, fixture.analyses.len());
    let flows: usize = fixture.analyses.iter().map(|a| a.flows.len()).sum();
    assert_eq!(stats.flows as usize, flows);
    let sent: u64 = fixture
        .analyses
        .iter()
        .flat_map(|a| &a.flows)
        .map(|f| f.sent_bytes)
        .sum();
    let recv: u64 = fixture
        .analyses
        .iter()
        .flat_map(|a| &a.flows)
        .map(|f| f.recv_bytes)
        .sum();
    assert_eq!(stats.total.sent, sent);
    assert_eq!(stats.total.recv, recv);
    // Every per-bucket view conserves the same byte total.
    for (label, buckets) in [
        ("per_library", &stats.per_library),
        ("per_domain", &stats.per_domain),
        ("per_domain_category", &stats.per_domain_category),
        ("per_lib_category", &stats.per_lib_category),
    ] {
        let total: u64 = buckets.values().map(|v| v.total()).sum();
        assert_eq!(total, sent + recv, "{label} must conserve bytes");
    }
    let seal = reader.seal_record(0).expect("seal parses").expect("sealed");
    assert_eq!(seal.apps, 400);
    assert_eq!(seal.failures.len(), 0);
}

/// Torn-write at campaign scale: truncating one sealed segment of a
/// *copy* of the store costs exactly that segment's rows — classified
/// and counted — while every other segment keeps answering.
#[test]
fn torn_segment_costs_only_its_own_rows() {
    let fixture = fixture();
    let dir = std::env::temp_dir().join(format!("spector-store-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create torn copy");
    for entry in std::fs::read_dir(&fixture.dir).expect("read store dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dir.join(entry.file_name())).expect("copy store file");
    }

    let intact = StoreReader::open(&fixture.dir).expect("intact store opens");
    let victim_entry = intact.segments()[0].clone();
    let victim = dir.join(&victim_entry.file);
    let bytes = std::fs::read(&victim).expect("read victim segment");
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).expect("tear victim segment");

    let reader = StoreReader::open(&dir).expect("torn store still opens");
    assert_eq!(
        reader.integrity().rejected.len(),
        1,
        "one counted rejection"
    );
    assert_eq!(reader.integrity().rejected[0].0, victim_entry.file);
    let survivors = reader.analyses(None);
    assert_eq!(
        survivors.len(),
        fixture.analyses.len() - victim_entry.analyses,
        "losses are exactly the torn segment's rows"
    );
    // The surviving rows are still byte-exact (appends are completion-
    // ordered, so the survivors are not contiguous — match by index).
    for stored in &survivors {
        assert_eq!(
            &stored.analysis,
            &fixture.analyses[stored.app_index as usize]
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI shape, in miniature: `libspector run --store` in one
/// process, `libspector query --report` in a fresh process, stdout
/// compared byte-for-byte.
#[test]
fn fresh_process_query_matches_run_stdout() {
    let dir = std::env::temp_dir().join(format!("spector-store-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.join("store");
    let run = Command::new(env!("CARGO_BIN_EXE_libspector"))
        .args(["run", "--apps", "16", "--seed", "31", "--events", "80"])
        .args(["--method-scale", "0.006", "--store"])
        .arg(&store)
        .output()
        .expect("spawn libspector run");
    assert!(run.status.success(), "run --store must succeed");
    let query = Command::new(env!("CARGO_BIN_EXE_libspector"))
        .args(["query", "--report", "--store"])
        .arg(&store)
        .output()
        .expect("spawn libspector query");
    assert!(query.status.success(), "query --report must succeed");
    assert_eq!(
        String::from_utf8_lossy(&run.stdout),
        String::from_utf8_lossy(&query.stdout),
        "a fresh process must reproduce the run's report exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
