//! Ablation studies: remove one design element at a time and measure
//! the damage — evidence for why each piece of the paper's design
//! exists.
//!
//! * stock bounded-buffer profiler vs the modified unique-method tracer
//!   (§II-B1: why the ART modification was necessary);
//! * the footnote 2 builtin-frame filter (§III-C: why attribution
//!   filters stacks before picking the origin frame);
//! * supervisor report loss (the UDP side channel is lossy in
//!   principle; unmatched flows become unattributable);
//! * listening on the wrong collector port (collection-server
//!   misconfiguration leaves every flow unattributed).

use libspector::attribution::BuiltinFilter;
use libspector::experiment::{resolver_for, run_app, ExperimentConfig};
use libspector::knowledge::Knowledge;
use libspector::pipeline::analyze_run;
use libspector::OriginKind;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_hooks::report::SocketReport;
use spector_netsim::packet::{decode_frame, Transport};
use spector_runtime::TraceMode;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        apps: 4,
        seed: 77,
        appgen: AppGenConfig {
            method_scale: 0.01,
            ..Default::default()
        },
        ..Default::default()
    })
}

#[test]
fn stock_profiler_buffer_loses_coverage() {
    let corpus = corpus();
    let app = &corpus.apps[0];
    let resolver = resolver_for(&corpus.domains);

    let run_with = |mode: TraceMode| {
        let mut config = ExperimentConfig::default();
        config.monkey.events = 150;
        config.runtime.trace_mode = mode;
        run_app(&app.apk, &resolver, &[], &config).unwrap()
    };
    let unique = run_with(TraceMode::UniqueMethods);
    // A severely bounded stock buffer, as the paper observed: "filled
    // within seconds of app initialization".
    let stock = run_with(TraceMode::StockBuffer { capacity: 64 });

    let unique_methods = unique.executed_methods.len();
    let stock_methods = stock.executed_methods.len();
    assert!(
        stock_methods < unique_methods,
        "stock buffer ({stock_methods}) must lose methods vs unique mode ({unique_methods})"
    );
    // The traffic itself is identical — only the *measurement* differs.
    assert_eq!(unique.capture.len(), stock.capture.len());
}

#[test]
fn removing_builtin_filter_destroys_attribution() {
    let corpus = corpus();
    let app = &corpus.apps[0];
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 100;
    let raw = run_app(&app.apk, &resolver, &[], &config).unwrap();

    let knowledge = Knowledge::from_corpus(&corpus);
    let with_filter = analyze_run(&raw, &knowledge, config.supervisor.collector_port);

    let mut ablated = knowledge.clone();
    ablated.builtin = BuiltinFilter::disabled();
    let without_filter = analyze_run(&raw, &ablated, config.supervisor.collector_port);

    // With the filter, origins match ground truth (validated elsewhere);
    // without it, the chronologically-first frame is a scheduler or
    // Zygote frame, so origins collapse into framework packages.
    let framework_origins = |analysis: &libspector::pipeline::AppAnalysis| {
        analysis
            .flows
            .iter()
            .filter(|f| match &f.origin {
                OriginKind::Library { origin_library, .. } => {
                    origin_library.starts_with("java.")
                        || origin_library.starts_with("android.")
                        || origin_library.starts_with("com.android.internal")
                }
                OriginKind::Builtin => false,
            })
            .count()
    };
    assert_eq!(framework_origins(&with_filter), 0);
    assert_eq!(
        framework_origins(&without_filter),
        without_filter.flows.len(),
        "every flow should attribute to framework internals without the filter"
    );
}

#[test]
fn dropped_reports_become_unattributed_flows() {
    let corpus = corpus();
    let app = &corpus.apps[1];
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 100;
    let mut raw = run_app(&app.apk, &resolver, &[], &config).unwrap();
    let knowledge = Knowledge::from_corpus(&corpus);

    let baseline = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
    assert!(baseline.flows.len() >= 4, "need several flows to drop");
    assert_eq!(baseline.unattributed_flows, 0);

    // Drop every second supervisor report datagram from the capture,
    // simulating UDP loss between emulator and collection server.
    let mut report_index = 0usize;
    raw.capture.retain(|packet| {
        let Ok(frame) = decode_frame(&packet.data) else {
            return true;
        };
        let Transport::Udp { payload } = frame.transport else {
            return true;
        };
        if frame.pair.dst_port == config.supervisor.collector_port
            && SocketReport::is_report_payload(&payload)
        {
            report_index += 1;
            return report_index.is_multiple_of(2);
        }
        true
    });
    let lossy = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
    let dropped = baseline.flows.len() - lossy.flows.len();
    assert!(dropped > 0, "some reports must have been dropped");
    assert_eq!(lossy.unattributed_flows, dropped);
    // The flows that survived are byte-identical to their baseline
    // counterparts (loss affects attribution coverage, not accounting).
    for flow in &lossy.flows {
        assert!(baseline.flows.contains(flow));
    }
}

#[test]
fn corrupted_capture_degrades_gracefully() {
    // Flip a byte in every 7th packet: checksums reject the damaged
    // frames, the rest of the pipeline proceeds, and accounting only
    // ever shrinks.
    let corpus = corpus();
    let app = &corpus.apps[3];
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 80;
    let mut raw = run_app(&app.apk, &resolver, &[], &config).unwrap();
    let knowledge = Knowledge::from_corpus(&corpus);
    let baseline = analyze_run(&raw, &knowledge, config.supervisor.collector_port);

    for (index, packet) in raw.capture.iter_mut().enumerate() {
        if index % 7 == 0 && !packet.data.is_empty() {
            let at = packet.data.len() / 2;
            packet.data[at] ^= 0xff;
        }
    }
    let corrupted = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
    let total = |a: &libspector::pipeline::AppAnalysis| a.total_sent() + a.total_recv();
    assert!(total(&corrupted) <= total(&baseline));
    assert!(corrupted.flows.len() <= baseline.flows.len());
    // Every surviving flow is still well-formed.
    for flow in &corrupted.flows {
        assert!(flow.sent_payload <= flow.sent_bytes);
        assert!(flow.recv_payload <= flow.recv_bytes);
    }
}

#[test]
fn wrong_collector_port_leaves_everything_unattributed() {
    let corpus = corpus();
    let app = &corpus.apps[2];
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 80;
    let raw = run_app(&app.apk, &resolver, &[], &config).unwrap();
    let knowledge = Knowledge::from_corpus(&corpus);

    let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port + 1);
    assert!(analysis.flows.is_empty());
    assert!(analysis.unattributed_flows > 0);
    assert_eq!(analysis.report_packets, 0);
}
