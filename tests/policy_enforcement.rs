//! Online policy enforcement (§IV-E "Security"): the OnlineEnforcer
//! runs *inside* the instrumented emulator, applies the attribution
//! heuristic to the live stack at connect time, and blocks blacklisted
//! library traffic before any payload moves.

use libspector::experiment::{resolver_for, run_app, run_app_with_hooks, ExperimentConfig};
use libspector::knowledge::Knowledge;
use libspector::pipeline::analyze_run;
use libspector::policy::{Action, Matcher, OnlineEnforcer, Policy};
use spector_corpus::{AppGenConfig, Archetype, Corpus, CorpusConfig};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        apps: 10,
        seed: 88,
        appgen: AppGenConfig {
            method_scale: 0.008,
            ..Default::default()
        },
        ..Default::default()
    })
}

fn ip_to_domain(corpus: &Corpus) -> std::collections::HashMap<std::net::IpAddr, String> {
    corpus
        .domains
        .domains()
        .iter()
        .map(|d| (std::net::IpAddr::V4(d.ip), d.name.clone()))
        .collect()
}

#[test]
fn blocking_ant_eliminates_ant_payload_but_keeps_other_traffic() {
    let corpus = corpus();
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 100;

    // Pick a Mixed app so both AnT and non-AnT traffic exist.
    let app = corpus
        .apps
        .iter()
        .find(|a| a.archetype == Archetype::Mixed)
        .expect("corpus has mixed apps");
    let baseline_raw = run_app(&app.apk, &resolver, &[], &config).unwrap();
    let baseline = analyze_run(&baseline_raw, &knowledge, config.supervisor.collector_port);
    assert!(baseline.ant_bytes() > 0, "mixed app must have AnT traffic");

    let policy = Policy::allow_by_default().with_rule("no-ant", Matcher::AnyAnt, Action::Block);
    let enforcer = OnlineEnforcer::new(policy, &knowledge, ip_to_domain(&corpus));
    let enforced_raw =
        run_app_with_hooks(&app.apk, &resolver, &[], &config, vec![Box::new(enforcer)]).unwrap();
    assert!(enforced_raw.runtime_stats.blocked_ops > 0);
    let enforced = analyze_run(&enforced_raw, &knowledge, config.supervisor.collector_port);

    // Blocked connections still appear (handshake + report happened)
    // but carry no payload.
    for flow in enforced.flows.iter().filter(|f| f.is_ant) {
        assert_eq!(
            flow.recv_payload, 0,
            "AnT flow to {:?} moved payload despite the block",
            flow.domain
        );
    }
    // Non-AnT traffic is untouched: same non-AnT payload as baseline.
    let non_ant_payload = |analysis: &libspector::pipeline::AppAnalysis| -> u64 {
        analysis
            .flows
            .iter()
            .filter(|f| !f.is_ant)
            .map(|f| f.recv_payload)
            .sum()
    };
    assert_eq!(non_ant_payload(&enforced), non_ant_payload(&baseline));
    // And the app saved real bytes.
    assert!(enforced.total_recv() < baseline.total_recv());
}

#[test]
fn library_prefix_blacklist_blocks_only_that_family() {
    let corpus = corpus();
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 80;

    // Find an app with traffic from at least two distinct 2-level
    // origins, then blacklist exactly one of them.
    for app in &corpus.apps {
        let raw = run_app(&app.apk, &resolver, &[], &config).unwrap();
        let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
        let mut two_levels: Vec<String> = analysis
            .flows
            .iter()
            .filter_map(|f| match &f.origin {
                libspector::OriginKind::Library { two_level, .. } => Some(two_level.clone()),
                libspector::OriginKind::Builtin => None,
            })
            .collect();
        two_levels.sort();
        two_levels.dedup();
        if two_levels.len() < 2 {
            continue;
        }
        let target = two_levels[0].clone();
        let policy = Policy::allow_by_default().with_rule(
            "blacklist-one",
            Matcher::LibraryPrefix(target.clone()),
            Action::Block,
        );
        let enforcer = OnlineEnforcer::new(policy, &knowledge, ip_to_domain(&corpus));
        let enforced_raw =
            run_app_with_hooks(&app.apk, &resolver, &[], &config, vec![Box::new(enforcer)])
                .unwrap();
        let enforced = analyze_run(&enforced_raw, &knowledge, config.supervisor.collector_port);
        for flow in &enforced.flows {
            if let libspector::OriginKind::Library { two_level, .. } = &flow.origin {
                if two_level == &target {
                    assert_eq!(flow.recv_payload, 0, "blacklisted family moved payload");
                } else if !flow.is_ant {
                    // Unrelated libraries keep flowing.
                    continue;
                }
            }
        }
        assert!(enforced_raw.runtime_stats.blocked_ops > 0);
        return; // one qualifying app is enough
    }
    panic!("no app with two distinct 2-level origins found");
}

#[test]
fn allow_by_default_policy_changes_nothing() {
    let corpus = corpus();
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 60;
    let app = &corpus.apps[0];

    let baseline = run_app(&app.apk, &resolver, &[], &config).unwrap();
    let enforcer = OnlineEnforcer::new(
        Policy::allow_by_default(),
        &knowledge,
        ip_to_domain(&corpus),
    );
    let enforced =
        run_app_with_hooks(&app.apk, &resolver, &[], &config, vec![Box::new(enforcer)]).unwrap();
    assert_eq!(enforced.runtime_stats.blocked_ops, 0);
    assert_eq!(enforced.capture.len(), baseline.capture.len());
}
