//! Golden-snapshot wall for the report renderer: every section of the
//! evaluation report is pinned byte-for-byte against a checked-in
//! snapshot under `tests/golden/`. Any formatting or aggregation
//! change must show up as a reviewed golden diff, never as silent
//! drift.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p spector-cli --test golden_render
//! ```

use std::path::PathBuf;
use std::sync::OnceLock;

use libspector::knowledge::Knowledge;
use spector_analysis::render::{render_section, Section};
use spector_analysis::FullReport;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_dispatch::{run_corpus, DispatchConfig};

/// The fixture campaign every golden file is rendered from. Fully
/// deterministic: seeded corpus, seeded monkey, virtual clock.
fn report() -> &'static FullReport {
    static REPORT: OnceLock<FullReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            apps: 12,
            seed: 9_406,
            appgen: AppGenConfig {
                method_scale: 0.006,
                ..Default::default()
            },
            ..Default::default()
        });
        let knowledge = Knowledge::from_corpus(&corpus);
        let mut dispatch = DispatchConfig {
            workers: 2,
            ..Default::default()
        };
        dispatch.experiment.monkey.events = 120;
        dispatch.experiment.monkey.seed = 9_406;
        let analyses = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;
        assert_eq!(analyses.len(), 12, "fixture campaign must not lose apps");
        FullReport::build(&analyses)
    })
}

/// A second fixture with the modern socket shapes switched on (IPv6,
/// pooled streams, TLS-like framing, CONNECT tunnels) — the source of
/// `tests/golden/shape_mix.txt`. Kept separate so the legacy fixture
/// above (and every golden it feeds) stays byte-identical.
fn mixed_report() -> &'static FullReport {
    static REPORT: OnceLock<FullReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let corpus = Corpus::generate(&CorpusConfig {
            apps: 8,
            seed: 9_406,
            appgen: AppGenConfig {
                method_scale: 0.006,
                modern_fraction: 0.6,
                ..Default::default()
            },
            ..Default::default()
        });
        let knowledge = Knowledge::from_corpus(&corpus);
        let mut dispatch = DispatchConfig {
            workers: 2,
            ..Default::default()
        };
        dispatch.experiment.monkey.events = 120;
        dispatch.experiment.monkey.seed = 9_406;
        let analyses = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;
        assert_eq!(
            analyses.len(),
            8,
            "mixed fixture campaign must not lose apps"
        );
        FullReport::build(&analyses)
    })
}

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

fn update_requested() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn every_section_matches_its_golden_snapshot() {
    let dir = golden_dir();
    if update_requested() {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let mut mismatches = Vec::new();
    for section in Section::ALL {
        let rendered = render_section(report(), section);
        let path = dir.join(format!("{}.txt", section.slug()));
        if update_requested() {
            std::fs::write(&path, &rendered).expect("write golden file");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == rendered => {}
            Ok(golden) => mismatches.push(format!(
                "{}: rendered output differs from golden ({} vs {} bytes)",
                section.slug(),
                rendered.len(),
                golden.len()
            )),
            Err(e) => mismatches.push(format!("{}: unreadable golden file: {e}", section.slug())),
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden mismatches (regenerate with UPDATE_GOLDEN=1 if intentional):\n  {}",
        mismatches.join("\n  ")
    );
}

/// The socket-shape mix section renders only for mixed campaigns, so
/// it gets its own golden file fed by the mixed fixture. The legacy
/// fixture must never activate it — that is the byte-identity
/// guarantee for historical reports.
#[test]
fn shape_mix_matches_its_golden_snapshot() {
    use spector_analysis::render::render_shape_mix;

    assert!(
        !report().shapes.active,
        "legacy fixture must not activate the shape section"
    );
    assert!(
        report().render().find("Socket shapes").is_none(),
        "legacy render must not contain the shape section"
    );
    let mixed = mixed_report();
    assert!(
        mixed.shapes.active,
        "mixed fixture must activate the shape section"
    );
    assert!(
        mixed.shapes.v6_flows > 0,
        "mixed fixture must attribute IPv6 flows"
    );
    assert!(
        mixed.shapes.tls_flows > 0,
        "mixed fixture must attribute TLS-like flows"
    );
    assert!(
        mixed.shapes.proxy_flows > 0,
        "mixed fixture must attribute CONNECT flows"
    );
    assert!(
        mixed.shapes.pooled_connections > 0,
        "mixed fixture must pool connections"
    );
    let rendered = render_shape_mix(mixed);
    assert!(
        mixed.render().contains(&rendered),
        "full mixed render must embed the shape section"
    );
    let path = golden_dir().join("shape_mix.txt");
    if update_requested() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("tests/golden/shape_mix.txt (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        golden, rendered,
        "shape_mix: rendered output differs from golden \
         (regenerate with UPDATE_GOLDEN=1 if intentional)"
    );
}

/// The detection-quality table gets its own golden file: it is not a
/// [`Section`] of the campaign report (it grades the corpus statically,
/// no campaign needed) but its rendering is pinned just as strictly.
#[test]
fn detect_quality_matches_its_golden_snapshot() {
    use spector_analysis::detect::{evaluate, render, DetectQualityConfig};

    let rendered = render(&evaluate(&DetectQualityConfig {
        apps: 12,
        seed: 9_406,
        method_scale: 0.006,
        obfuscation_seed: 0x0bf5,
    }));
    let path = golden_dir().join("detect_quality.txt");
    if update_requested() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("tests/golden/detect_quality.txt (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        golden, rendered,
        "detect_quality: rendered output differs from golden \
         (regenerate with UPDATE_GOLDEN=1 if intentional)"
    );
}

#[test]
fn full_render_is_the_concatenation_of_all_sections() {
    let full = report().render();
    let concatenated: String = Section::ALL
        .iter()
        .map(|&s| render_section(report(), s))
        .collect();
    assert_eq!(full, concatenated);
}

#[test]
fn golden_directory_holds_exactly_the_known_sections() {
    if update_requested() {
        return; // files are being rewritten; inventory is checked on replay
    }
    let mut on_disk: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden must exist (run once with UPDATE_GOLDEN=1)")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = Section::ALL
        .iter()
        .map(|s| format!("{}.txt", s.slug()))
        .collect();
    expected.push("detect_quality.txt".to_owned());
    // The store-backed report golden (tests/store_query.rs) shares the
    // directory.
    expected.push("query_report.txt".to_owned());
    expected.push("shape_mix.txt".to_owned());
    expected.sort();
    assert_eq!(on_disk, expected, "stale or missing golden files");
}
