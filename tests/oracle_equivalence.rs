//! Fast-path vs oracle equivalence.
//!
//! The optimized `analyze_run` — one `CaptureIndex` decode pass,
//! trie-backed longest-prefix matching, memoized knowledge lookups —
//! must produce output byte-identical to `analyze_run_oracle`, the
//! retired implementation that walks the capture three times and
//! recomputes every verdict linearly.

use libspector::experiment::{resolver_for, run_app, ExperimentConfig};
use libspector::knowledge::Knowledge;
use libspector::pipeline::{analyze_run, analyze_run_oracle};
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};

#[test]
fn fast_path_is_byte_identical_to_oracle() {
    for seed in [41u64, 42, 43] {
        let corpus = Corpus::generate(&CorpusConfig {
            apps: 2,
            seed,
            appgen: AppGenConfig {
                method_scale: 0.006,
                ..Default::default()
            },
            ..Default::default()
        });
        let knowledge = Knowledge::from_corpus(&corpus);
        let resolver = resolver_for(&corpus.domains);
        let mut config = ExperimentConfig::default();
        config.monkey.events = 100;
        for app in &corpus.apps {
            let system: Vec<_> = app
                .system_ops
                .iter()
                .map(|s| (s.op.clone(), s.dispatcher))
                .collect();
            let raw = run_app(&app.apk, &resolver, &system, &config).unwrap();
            let fast = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
            let oracle = analyze_run_oracle(&raw, &knowledge, config.supervisor.collector_port);
            assert_eq!(fast, oracle, "seed {seed}, app {}", app.package);
            assert_eq!(
                serde_json::to_string(&fast).unwrap(),
                serde_json::to_string(&oracle).unwrap(),
                "serialized analyses must be byte-identical (seed {seed}, app {})",
                app.package
            );
            assert!(!fast.flows.is_empty(), "seed {seed} produced no flows");
        }
        // The fast path must actually have exercised the memo cache.
        assert!(knowledge.cached_verdicts() > 0);
    }
}
