//! Shape reproduction: a mid-size campaign must reproduce the paper's
//! qualitative findings — who wins, by roughly what factor, and where
//! the crossovers fall. Absolute numbers scale with corpus size; the
//! assertions below use generous bands around the paper's values.

use libspector::knowledge::Knowledge;
use spector_analysis::FullReport;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_dispatch::{run_corpus, DispatchConfig};
use spector_libradar::LibCategory;
use spector_vtcat::DomainCategory;

/// One shared campaign for all shape assertions (expensive to run).
fn campaign() -> FullReport {
    let corpus = Corpus::generate(&CorpusConfig {
        apps: 150,
        seed: 4242,
        appgen: AppGenConfig {
            method_scale: 0.006,
            ..Default::default()
        },
        ..Default::default()
    });
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig::default();
    dispatch.experiment.monkey.events = 250;
    dispatch.experiment.monkey.seed = 4242;
    let analyses = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;
    FullReport::build(&analyses)
}

#[test]
fn paper_shapes_hold_at_campaign_scale() {
    let report = campaign();
    let headline = &report.headline;

    // §IV-A: advertisement libraries cause "over a quarter" of traffic;
    // Development Aid and Unknown are the other two big blocks.
    let ads = headline.share(LibCategory::Advertisement);
    assert!((18.0..40.0).contains(&ads), "ad share {ads}%");
    let dev = headline.share(LibCategory::DevelopmentAid);
    assert!((15.0..38.0).contains(&dev), "dev-aid share {dev}%");
    let unknown = headline.share(LibCategory::Unknown);
    assert!((14.0..38.0).contains(&unknown), "unknown share {unknown}%");
    // Game engines land near 10 %.
    let games = headline.share(LibCategory::GameEngine);
    assert!((3.0..22.0).contains(&games), "game-engine share {games}%");
    // The three big categories dominate, in the paper's order bands.
    assert!(ads > games && dev > games);

    // §IV-A: apps receive far more than they send.
    assert!(
        headline.recv_bytes > headline.sent_bytes * 8,
        "recv {} sent {}",
        headline.recv_bytes,
        headline.sent_bytes
    );

    // Figure 6: AnT prevalence — ~35 % AnT-only, ~89 % some AnT, ~10 %
    // AnT-free.
    let fig6 = &report.fig6;
    assert!(
        (0.20..0.50).contains(&fig6.ant_only_fraction),
        "ant-only {}",
        fig6.ant_only_fraction
    );
    assert!(
        (0.75..0.98).contains(&fig6.some_ant_fraction),
        "some-ant {}",
        fig6.some_ant_fraction
    );
    assert!(
        (0.02..0.25).contains(&fig6.ant_free_fraction),
        "ant-free {}",
        fig6.ant_free_fraction
    );
    // AnT libraries are roughly twice as "aggressive" as common libs.
    assert!(
        fig6.ant_recv_sent_ratio > fig6.common_recv_sent_ratio * 1.3,
        "AnT {} vs CL {}",
        fig6.ant_recv_sent_ratio,
        fig6.common_recv_sent_ratio
    );

    // Figure 7: CDN domains receive far more per domain than
    // advertisement domains (paper: ~11×; require ≥3×).
    let fig7 = &report.fig7;
    let cdn = fig7.domain_average("cdn");
    let ads_avg = fig7.domain_average("advertisements");
    assert!(
        cdn > ads_avg * 3.0,
        "cdn/domain {cdn} vs ads/domain {ads_avg}"
    );

    // Figure 9: cross-category traffic exists — ad libraries send a
    // substantial share (paper ~24-29 %) of their bytes to CDN domains.
    let ad_to_cdn = report
        .fig9
        .column_share(DomainCategory::Cdn, LibCategory::Advertisement);
    assert!(
        (0.10..0.45).contains(&ad_to_cdn),
        "ads→cdn share {ad_to_cdn}"
    );
    // And analytics traffic lands in business/finance domains too.
    let analytics_to_biz = report.fig9.column_share(
        DomainCategory::BusinessAndFinance,
        LibCategory::MobileAnalytics,
    );
    assert!(analytics_to_biz > 0.0, "no analytics→business traffic");

    // Figure 10: coverage is partial — around the paper's 9.5 % mean.
    let coverage = report.fig10.mean_coverage_percent;
    assert!((2.0..30.0).contains(&coverage), "mean coverage {coverage}%");

    // Figure 3: a minority of 2-level libraries carries the majority of
    // bytes (paper: top 25 of 4,793 carried 72.5 %).
    assert!(
        report.fig3.top25_two_level_share > 0.5,
        "top-25 share {}",
        report.fig3.top25_two_level_share
    );

    // Table I: business/finance has many domains, CDN very few.
    let table1 = &report.table1;
    assert!(
        table1.count(DomainCategory::BusinessAndFinance) > table1.count(DomainCategory::Cdn),
        "biz {} vs cdn {}",
        table1.count(DomainCategory::BusinessAndFinance),
        table1.count(DomainCategory::Cdn)
    );

    // §IV-D: ad traffic costs real money. The per-app granularity is
    // scale-free: the Figure 9 calibration (8.69 GB over 25,000 apps ≈
    // 0.35 MB/app/session) implies ≈ $0.026/hour per app; allow a wide
    // band for sampling variance.
    let hourly = report.cost.hourly(LibCategory::Advertisement);
    assert!(
        (0.004..0.20).contains(&hourly),
        "ad data cost ${hourly}/hour per app"
    );
    // And ads cost more than analytics at every granularity, as in the
    // paper ($1.17 vs $0.17 per hour).
    assert!(
        report.cost.hourly(LibCategory::Advertisement)
            > report.cost.hourly(LibCategory::MobileAnalytics)
    );
    assert!(
        report.cost.hourly_per_library(LibCategory::Advertisement)
            > report.cost.hourly_per_library(LibCategory::MobileAnalytics)
    );
}
