//! Telemetry-vs-ground-truth agreement: the counters a campaign's
//! metrics snapshot reports must equal, exactly, the totals the
//! campaign outcome itself carries — under every chaos profile.
//!
//! Three independent accounting systems observe the same campaign:
//! the [`RunIntegrity`] ledgers embedded in each accepted analysis,
//! the [`PerturbStats`] the fault layer accumulates, and the
//! telemetry counters incremented at the instrumentation points.
//! Any drift between them means an instrumentation point is missing,
//! double-counted, or misplaced.

use libspector::knowledge::Knowledge;
use libspector::pipeline::RunIntegrity;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_dispatch::{
    run_campaign, CampaignConfig, CampaignOutcome, DispatchConfig, RetryPolicy,
};
use spector_faults::{FaultPlan, FaultProfile};
use spector_telemetry::{MetricsSnapshot, Telemetry};

fn run_with_profile(
    profile: FaultProfile,
    seed: u64,
    apps: usize,
) -> (CampaignOutcome, MetricsSnapshot) {
    let corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale: 0.006,
            ..Default::default()
        },
        ..Default::default()
    });
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers: 2,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = 80;
    dispatch.experiment.monkey.seed = seed;
    let chaos = (!profile.is_noop()).then(|| FaultPlan::new(seed ^ 0xc4a5, profile));
    let telemetry = Telemetry::enabled();
    let config = CampaignConfig {
        dispatch,
        retry: if chaos.is_some() {
            RetryPolicy::default()
        } else {
            RetryPolicy::never()
        },
        chaos,
        telemetry: telemetry.clone(),
        ..Default::default()
    };
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).expect("campaign runs");
    (outcome, telemetry.snapshot())
}

/// Field-wise sum of the per-analysis integrity ledgers.
fn integrity_totals(outcome: &CampaignOutcome) -> RunIntegrity {
    let mut total = RunIntegrity::default();
    for analysis in &outcome.analyses {
        total.frames_truncated += analysis.integrity.frames_truncated;
        total.frames_malformed += analysis.integrity.frames_malformed;
        total.frames_bad_checksum += analysis.integrity.frames_bad_checksum;
        total.reports_truncated += analysis.integrity.reports_truncated;
        total.reports_malformed += analysis.integrity.reports_malformed;
        total.synthesized_flows += analysis.integrity.synthesized_flows;
    }
    total
}

fn assert_agreement(outcome: &CampaignOutcome, snapshot: &MetricsSnapshot, label: &str) {
    // 1. Integrity counters equal the field-wise RunIntegrity sums —
    //    record_integrity fires exactly once per accepted analysis.
    let integrity = integrity_totals(outcome);
    let pairs = [
        ("frames_truncated", integrity.frames_truncated),
        ("frames_malformed", integrity.frames_malformed),
        ("frames_bad_checksum", integrity.frames_bad_checksum),
        ("reports_truncated", integrity.reports_truncated),
        ("reports_malformed", integrity.reports_malformed),
        ("synthesized_flows", integrity.synthesized_flows),
    ];
    for (field, expected) in pairs {
        assert_eq!(
            snapshot.counter(&format!("spector_integrity_{field}_total")),
            expected as u64,
            "{label}: integrity counter {field} disagrees with analyses"
        );
    }

    // 2. Fault counters equal the outcome's accumulated PerturbStats —
    //    recorded in the collector exactly where `injected` merges.
    let injected = &outcome.injected;
    let faults = [
        ("reports_dropped", injected.reports_dropped),
        ("reports_duplicated", injected.reports_duplicated),
        ("reports_reordered", injected.reports_reordered),
        ("reports_truncated", injected.reports_truncated),
        ("reports_bit_flipped", injected.reports_bit_flipped),
        ("frames_truncated", injected.frames_truncated),
        (
            "frames_lost_to_capture_death",
            injected.frames_lost_to_capture_death,
        ),
    ];
    for (field, expected) in faults {
        assert_eq!(
            snapshot.counter(&format!("spector_fault_{field}_total")),
            expected as u64,
            "{label}: fault counter {field} disagrees with outcome.injected"
        );
    }

    // 3. Campaign lifecycle counters equal the outcome lens.
    assert_eq!(
        snapshot.counter("spector_campaign_apps_ok_total"),
        outcome.analyses.len() as u64,
        "{label}: apps_ok"
    );
    assert_eq!(
        snapshot.counter("spector_campaign_apps_failed_total"),
        outcome.failures.len() as u64,
        "{label}: apps_failed"
    );
    assert_eq!(
        snapshot.counter("spector_campaign_retries_total"),
        outcome.retried as u64,
        "{label}: retries"
    );

    // 4. Pipeline join balance and per-analysis flow accounting.
    let reports = snapshot.counter("spector_pipeline_reports_total");
    let attributed = snapshot.counter("spector_pipeline_flows_attributed_total");
    let duplicates = snapshot.counter("spector_pipeline_duplicate_reports_total");
    let orphans = snapshot.counter("spector_pipeline_reports_without_flow_total");
    assert_eq!(
        reports,
        attributed + duplicates + orphans,
        "{label}: join balance"
    );
    let flows: u64 = outcome.analyses.iter().map(|a| a.flows.len() as u64).sum();
    let unattributed: u64 = outcome
        .analyses
        .iter()
        .map(|a| a.unattributed_flows as u64)
        .sum();
    let orphaned: u64 = outcome
        .analyses
        .iter()
        .map(|a| a.reports_without_flow as u64)
        .sum();
    assert_eq!(attributed, flows, "{label}: attributed flows");
    assert_eq!(
        snapshot.counter("spector_pipeline_flows_unattributed_total"),
        unattributed,
        "{label}: unattributed flows"
    );
    assert_eq!(orphans, orphaned, "{label}: flow-less reports");
}

#[test]
fn clean_campaign_telemetry_agrees_with_outcome() {
    let (outcome, snapshot) = run_with_profile(FaultProfile::none(), 501, 8);
    assert_eq!(outcome.failures.len(), 0, "no chaos, no failures");
    assert_eq!(outcome.injected.total(), 0);
    assert_agreement(&outcome, &snapshot, "none/501");
    // Without chaos every fault counter is zero.
    assert_eq!(
        snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("spector_fault_"))
            .map(|(_, v)| *v)
            .sum::<u64>(),
        0
    );
}

#[test]
fn light_chaos_telemetry_agrees_with_outcome() {
    let (outcome, snapshot) = run_with_profile(FaultProfile::light(), 502, 8);
    assert!(
        outcome.injected.total() > 0,
        "light chaos must inject something at this scale"
    );
    assert_agreement(&outcome, &snapshot, "light/502");
}

#[test]
fn heavy_chaos_telemetry_agrees_with_outcome() {
    let (outcome, snapshot) = run_with_profile(FaultProfile::heavy(), 503, 8);
    assert!(outcome.injected.total() > 0);
    // Heavy chaos corrupts reports on the wire: the integrity ledgers
    // (and therefore the counters checked below) see real damage.
    assert_agreement(&outcome, &snapshot, "heavy/503");
}

/// Seed sweep: agreement is a property of the instrumentation points,
/// not of any particular trace, so it must hold for every seed.
#[test]
fn agreement_holds_across_profiles_and_seeds() {
    for profile in [
        FaultProfile::none(),
        FaultProfile::light(),
        FaultProfile::heavy(),
    ] {
        for seed in [9_001u64, 9_002] {
            let label = format!("{profile:?}/{seed}");
            let (outcome, snapshot) = run_with_profile(profile, seed, 5);
            assert_agreement(&outcome, &snapshot, &label);
        }
    }
}
