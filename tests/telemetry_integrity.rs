//! Telemetry-vs-ground-truth agreement: the counters a campaign's
//! metrics snapshot reports must equal, exactly, the totals the
//! campaign outcome itself carries — under every chaos profile.
//!
//! Three independent accounting systems observe the same campaign:
//! the [`RunIntegrity`] ledgers embedded in each accepted analysis,
//! the [`PerturbStats`] the fault layer accumulates, and the
//! telemetry counters incremented at the instrumentation points.
//! Any drift between them means an instrumentation point is missing,
//! double-counted, or misplaced.

use std::sync::Arc;

use libspector::attribution::OriginKind;
use libspector::experiment::{resolver_for, run_app, ExperimentConfig, RawRun};
use libspector::knowledge::Knowledge;
use libspector::pipeline::{DetectStats, RunIntegrity};
use spector_corpus::{obfuscate_corpus, AppGenConfig, Corpus, CorpusConfig, ObfuscationTier};
use spector_dispatch::{
    run_campaign, CampaignConfig, CampaignOutcome, DispatchConfig, RetryPolicy,
};
use spector_faults::{perturb_capture, FaultPlan, FaultProfile};
use spector_live::{LiveConfig, LiveEngine};
use spector_sampling::{SamplingConfig, SamplingLedger, TraceBudget};
use spector_telemetry::{MetricsSnapshot, Telemetry};

fn run_with_profile(
    profile: FaultProfile,
    seed: u64,
    apps: usize,
) -> (CampaignOutcome, MetricsSnapshot) {
    run_sampled(profile, SamplingConfig::default(), seed, apps)
}

fn run_sampled(
    profile: FaultProfile,
    sampling: SamplingConfig,
    seed: u64,
    apps: usize,
) -> (CampaignOutcome, MetricsSnapshot) {
    let corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale: 0.006,
            ..Default::default()
        },
        ..Default::default()
    });
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers: 2,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = 80;
    dispatch.experiment.monkey.seed = seed;
    dispatch.experiment.supervisor.sampling = sampling;
    let chaos = (!profile.is_noop()).then(|| FaultPlan::new(seed ^ 0xc4a5, profile));
    let telemetry = Telemetry::enabled();
    let config = CampaignConfig {
        dispatch,
        retry: if chaos.is_some() {
            RetryPolicy::default()
        } else {
            RetryPolicy::never()
        },
        chaos,
        telemetry: telemetry.clone(),
        ..Default::default()
    };
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).expect("campaign runs");
    (outcome, telemetry.snapshot())
}

/// [`run_with_profile`] without chaos, but with the corpus obfuscated
/// at `tier` before knowledge extraction — the knowledge bases stay
/// canonical, so the campaign's verdict lookups must bridge obfuscated
/// origins through the fingerprint/structural tiers.
fn run_obfuscated(
    tier: ObfuscationTier,
    seed: u64,
    apps: usize,
) -> (CampaignOutcome, MetricsSnapshot) {
    let mut corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale: 0.006,
            ..Default::default()
        },
        ..Default::default()
    });
    obfuscate_corpus(&mut corpus, tier, seed ^ 0x0bf5);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers: 2,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = 80;
    dispatch.experiment.monkey.seed = seed;
    let telemetry = Telemetry::enabled();
    let config = CampaignConfig {
        dispatch,
        retry: RetryPolicy::never(),
        telemetry: telemetry.clone(),
        ..Default::default()
    };
    let outcome = run_campaign(&corpus, &knowledge, &config, None, None).expect("campaign runs");
    (outcome, telemetry.snapshot())
}

/// Field-wise sum of the per-analysis integrity ledgers.
fn integrity_totals(outcome: &CampaignOutcome) -> RunIntegrity {
    let mut total = RunIntegrity::default();
    for analysis in &outcome.analyses {
        total.frames_truncated += analysis.integrity.frames_truncated;
        total.frames_malformed += analysis.integrity.frames_malformed;
        total.frames_bad_checksum += analysis.integrity.frames_bad_checksum;
        total.reports_truncated += analysis.integrity.reports_truncated;
        total.reports_malformed += analysis.integrity.reports_malformed;
        total.synthesized_flows += analysis.integrity.synthesized_flows;
    }
    total
}

fn assert_agreement(outcome: &CampaignOutcome, snapshot: &MetricsSnapshot, label: &str) {
    // 1. Integrity counters equal the field-wise RunIntegrity sums —
    //    record_integrity fires exactly once per accepted analysis.
    let integrity = integrity_totals(outcome);
    let pairs = [
        ("frames_truncated", integrity.frames_truncated),
        ("frames_malformed", integrity.frames_malformed),
        ("frames_bad_checksum", integrity.frames_bad_checksum),
        ("reports_truncated", integrity.reports_truncated),
        ("reports_malformed", integrity.reports_malformed),
        ("synthesized_flows", integrity.synthesized_flows),
    ];
    for (field, expected) in pairs {
        assert_eq!(
            snapshot.counter(&format!("spector_integrity_{field}_total")),
            expected as u64,
            "{label}: integrity counter {field} disagrees with analyses"
        );
    }

    // 2. Fault counters equal the outcome's accumulated PerturbStats —
    //    recorded in the collector exactly where `injected` merges.
    let injected = &outcome.injected;
    let faults = [
        ("reports_dropped", injected.reports_dropped),
        ("reports_duplicated", injected.reports_duplicated),
        ("reports_reordered", injected.reports_reordered),
        ("reports_truncated", injected.reports_truncated),
        ("reports_bit_flipped", injected.reports_bit_flipped),
        ("frames_truncated", injected.frames_truncated),
        (
            "frames_lost_to_capture_death",
            injected.frames_lost_to_capture_death,
        ),
    ];
    for (field, expected) in faults {
        assert_eq!(
            snapshot.counter(&format!("spector_fault_{field}_total")),
            expected as u64,
            "{label}: fault counter {field} disagrees with outcome.injected"
        );
    }

    // 3. Campaign lifecycle counters equal the outcome lens.
    assert_eq!(
        snapshot.counter("spector_campaign_apps_ok_total"),
        outcome.analyses.len() as u64,
        "{label}: apps_ok"
    );
    assert_eq!(
        snapshot.counter("spector_campaign_apps_failed_total"),
        outcome.failures.len() as u64,
        "{label}: apps_failed"
    );
    assert_eq!(
        snapshot.counter("spector_campaign_retries_total"),
        outcome.retried as u64,
        "{label}: retries"
    );

    // 4. Pipeline join balance and per-analysis flow accounting.
    let reports = snapshot.counter("spector_pipeline_reports_total");
    let attributed = snapshot.counter("spector_pipeline_flows_attributed_total");
    let duplicates = snapshot.counter("spector_pipeline_duplicate_reports_total");
    let orphans = snapshot.counter("spector_pipeline_reports_without_flow_total");
    assert_eq!(
        reports,
        attributed + duplicates + orphans,
        "{label}: join balance"
    );
    let flows: u64 = outcome.analyses.iter().map(|a| a.flows.len() as u64).sum();
    let unattributed: u64 = outcome
        .analyses
        .iter()
        .map(|a| a.unattributed_flows as u64)
        .sum();
    let orphaned: u64 = outcome
        .analyses
        .iter()
        .map(|a| a.reports_without_flow as u64)
        .sum();
    assert_eq!(attributed, flows, "{label}: attributed flows");
    assert_eq!(
        snapshot.counter("spector_pipeline_flows_unattributed_total"),
        unattributed,
        "{label}: unattributed flows"
    );
    assert_eq!(orphans, orphaned, "{label}: flow-less reports");

    // 5. Detection-cascade balance: one lookup per attributed
    //    library-origin flow, each resolved by exactly one tier. The
    //    `spector_detect_*` counters must equal the per-analysis
    //    DetectStats sums, per tier.
    let mut detect = DetectStats::default();
    for analysis in &outcome.analyses {
        assert_eq!(
            analysis.detect.lookups,
            analysis.detect.tier_sum(),
            "{label}: {} per-app tier counts must sum to lookups",
            analysis.package
        );
        detect.merge(&analysis.detect);
    }
    let library_flows = outcome
        .analyses
        .iter()
        .flat_map(|a| &a.flows)
        .filter(|f| matches!(f.origin, OriginKind::Library { .. }))
        .count() as u64;
    assert_eq!(
        detect.lookups, library_flows,
        "{label}: one cascade lookup per library-origin flow"
    );
    let tiers = [
        ("lookups", detect.lookups),
        ("trie_hit", detect.trie_hits),
        ("exact_fp_hit", detect.exact_fp_hits),
        ("structural_hit", detect.structural_hits),
        ("miss", detect.misses),
    ];
    for (tier, expected) in tiers {
        assert_eq!(
            snapshot.counter(&format!("spector_detect_{tier}_total")),
            expected,
            "{label}: detect counter {tier} disagrees with analyses"
        );
    }
    assert_eq!(
        snapshot.counter("spector_detect_lookups_total"),
        snapshot.counter("spector_detect_trie_hit_total")
            + snapshot.counter("spector_detect_exact_fp_hit_total")
            + snapshot.counter("spector_detect_structural_hit_total")
            + snapshot.counter("spector_detect_miss_total"),
        "{label}: detect tier counters must sum to lookups"
    );
}

/// Scripted experiment runs (the live engine's input shape), with the
/// wire damage of `profile` applied per run and `modern_fraction` of
/// the corpus traffic generated in the modern socket shapes (IPv6,
/// pooled streams, TLS-like, CONNECT); 0.0 is the legacy corpus.
fn perturbed_runs_mixed(
    profile: FaultProfile,
    seed: u64,
    apps: usize,
    modern_fraction: f64,
) -> (Knowledge, Vec<RawRun>, u16) {
    let corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale: 0.006,
            modern_fraction,
            ..Default::default()
        },
        ..Default::default()
    });
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 100;
    let port = config.supervisor.collector_port;
    let plan = FaultPlan::new(seed ^ 0x11ce, profile);
    let runs: Vec<RawRun> = corpus
        .apps
        .iter()
        .enumerate()
        .map(|(index, app)| {
            let mut experiment = config.clone();
            experiment.monkey.seed ^= (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let system: Vec<_> = app
                .system_ops
                .iter()
                .map(|s| (s.op.clone(), s.dispatcher))
                .collect();
            let mut raw = run_app(&app.apk, &resolver, &system, &experiment).unwrap();
            let capture = std::mem::take(&mut raw.capture);
            let (capture, _) = perturb_capture(&plan, index, 0, capture, port);
            raw.capture = capture;
            raw
        })
        .collect();
    (Knowledge::from_corpus(&corpus), runs, port)
}

/// The live ingress balance sheet: every raw frame accepted at the
/// producer is accounted for by exactly one shard-side class counter —
/// decoded TCP/DNS/report, or one of the five decode-error classes.
/// The identity must hold *merged across shards*, at any width and
/// batch size, under any chaos profile.
fn assert_live_ingress_balances(profile: FaultProfile, seed: u64, label: &str) {
    assert_live_ingress_balances_mixed(profile, seed, label, 0.0);
}

fn assert_live_ingress_balances_mixed(
    profile: FaultProfile,
    seed: u64,
    label: &str,
    modern_fraction: f64,
) {
    let (knowledge, runs, port) = perturbed_runs_mixed(profile, seed, 4, modern_fraction);
    let knowledge = Arc::new(knowledge);
    let total_frames: u64 = runs.iter().map(|r| r.capture.len() as u64).sum();
    let mut class_counts: Vec<Vec<u64>> = Vec::new();
    for (shards, batch_events) in [(1usize, 64usize), (2, 1), (4, 7)] {
        let engine = LiveEngine::start(
            Arc::clone(&knowledge),
            LiveConfig {
                shards,
                collector_port: port,
                batch_events,
                telemetry: Telemetry::enabled(),
                ..Default::default()
            },
        );
        for (index, raw) in runs.iter().enumerate() {
            engine.push_run(index as u32, &raw.capture);
        }
        let (summary, metrics) = engine.finish_with_metrics();
        let counter = |name: &str| metrics.counter(name);
        let events = counter("spector_live_events_total");
        assert_eq!(
            events, total_frames,
            "{label}: every raw frame counts once at ingress ({shards} shards)"
        );
        let classes = [
            counter("spector_live_tcp_events_total"),
            counter("spector_live_dns_events_total"),
            counter("spector_live_report_events_total"),
            counter("spector_live_ingress_frames_truncated_total"),
            counter("spector_live_ingress_frames_malformed_total"),
            counter("spector_live_ingress_frames_bad_checksum_total"),
            counter("spector_live_ingress_reports_truncated_total"),
            counter("spector_live_ingress_reports_malformed_total"),
        ];
        assert_eq!(
            events,
            classes.iter().sum::<u64>(),
            "{label}: merged ingress counters must balance exactly ({shards} shards)"
        );
        // Address-family partition: every *decoded* event (TCP, DNS,
        // report) is counted by exactly one family counter. The two
        // partitions of the same population must agree — merged across
        // shards, at any width, under any chaos profile.
        let by_family = [
            counter("spector_shape_ipv4_total"),
            counter("spector_shape_ipv6_total"),
        ];
        assert_eq!(
            classes[..3].iter().sum::<u64>(),
            by_family.iter().sum::<u64>(),
            "{label}: decoded-event and family partitions must agree ({shards} shards)"
        );
        if modern_fraction > 0.0 {
            assert!(
                by_family[1] > 0,
                "{label}: a mixed corpus must put IPv6 frames on the wire"
            );
        }
        // The telemetry error counters are the summary ledger, which in
        // turn equals the offline RunIntegrity sums (live_equivalence).
        assert_eq!(classes[3], summary.frames_truncated as u64, "{label}");
        assert_eq!(classes[4], summary.frames_malformed as u64, "{label}");
        assert_eq!(classes[5], summary.frames_bad_checksum as u64, "{label}");
        assert_eq!(classes[6], summary.reports_truncated as u64, "{label}");
        assert_eq!(classes[7], summary.reports_malformed as u64, "{label}");
        assert_eq!(counter("spector_live_dropped_events_total"), 0, "{label}");
        let mut classes = classes.to_vec();
        classes.extend(by_family);
        class_counts.push(classes);
    }
    // Width and batch geometry never move a frame between classes.
    assert_eq!(class_counts[0], class_counts[1], "{label}: 1 vs 2 shards");
    assert_eq!(class_counts[0], class_counts[2], "{label}: 1 vs 4 shards");
}

#[test]
fn live_ingress_balances_without_chaos() {
    assert_live_ingress_balances(FaultProfile::none(), 601, "live/none");
}

#[test]
fn live_ingress_balances_under_light_chaos() {
    assert_live_ingress_balances(FaultProfile::light(), 602, "live/light");
}

#[test]
fn live_ingress_balances_under_heavy_chaos() {
    assert_live_ingress_balances(FaultProfile::heavy(), 603, "live/heavy");
}

#[test]
fn shape_counters_balance_mixed_without_chaos() {
    assert_live_ingress_balances_mixed(FaultProfile::none(), 611, "shape/none", 0.6);
}

#[test]
fn shape_counters_balance_mixed_under_light_chaos() {
    assert_live_ingress_balances_mixed(FaultProfile::light(), 612, "shape/light", 0.6);
}

#[test]
fn shape_counters_balance_mixed_under_heavy_chaos() {
    assert_live_ingress_balances_mixed(FaultProfile::heavy(), 613, "shape/heavy", 0.6);
}

#[test]
fn clean_campaign_telemetry_agrees_with_outcome() {
    let (outcome, snapshot) = run_with_profile(FaultProfile::none(), 501, 8);
    assert_eq!(outcome.failures.len(), 0, "no chaos, no failures");
    assert_eq!(outcome.injected.total(), 0);
    assert_agreement(&outcome, &snapshot, "none/501");
    // Without chaos every fault counter is zero.
    assert_eq!(
        snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("spector_fault_"))
            .map(|(_, v)| *v)
            .sum::<u64>(),
        0
    );
}

#[test]
fn clean_campaign_resolves_every_lookup_in_the_trie_tier() {
    let (outcome, snapshot) = run_with_profile(FaultProfile::none(), 504, 6);
    assert_agreement(&outcome, &snapshot, "none/504");
    // Unobfuscated origins carry their canonical packages, so the trie
    // tier answers everything the cascade is asked; the fallback tiers
    // stay cold.
    assert!(snapshot.counter("spector_detect_lookups_total") > 0);
    assert_eq!(snapshot.counter("spector_detect_exact_fp_hit_total"), 0);
    assert_eq!(snapshot.counter("spector_detect_structural_hit_total"), 0);
}

#[test]
fn renamed_campaign_exercises_the_exact_fingerprint_tier() {
    let (outcome, snapshot) = run_obfuscated(ObfuscationTier::Rename, 701, 6);
    assert_agreement(&outcome, &snapshot, "rename/701");
    // Renamed roots defeat the trie, but the subtree fingerprints are
    // rename-invariant: the exact tier must pick up real traffic.
    assert!(
        snapshot.counter("spector_detect_exact_fp_hit_total") > 0,
        "renamed libraries must resolve through the exact tier"
    );
}

#[test]
fn mangled_campaign_exercises_the_structural_tier() {
    let (outcome, snapshot) = run_obfuscated(ObfuscationTier::Mangle, 702, 6);
    assert_agreement(&outcome, &snapshot, "mangle/702");
    // Identifier mangling breaks the exact fingerprints too; only the
    // structural profiles survive.
    assert!(
        snapshot.counter("spector_detect_structural_hit_total") > 0,
        "mangled libraries must resolve through the structural tier"
    );
    assert_eq!(
        snapshot.counter("spector_detect_exact_fp_hit_total"),
        0,
        "mangling must defeat the exact-fingerprint tier"
    );
}

#[test]
fn light_chaos_telemetry_agrees_with_outcome() {
    let (outcome, snapshot) = run_with_profile(FaultProfile::light(), 502, 8);
    assert!(
        outcome.injected.total() > 0,
        "light chaos must inject something at this scale"
    );
    assert_agreement(&outcome, &snapshot, "light/502");
}

#[test]
fn heavy_chaos_telemetry_agrees_with_outcome() {
    let (outcome, snapshot) = run_with_profile(FaultProfile::heavy(), 503, 8);
    assert!(outcome.injected.total() > 0);
    // Heavy chaos corrupts reports on the wire: the integrity ledgers
    // (and therefore the counters checked below) see real damage.
    assert_agreement(&outcome, &snapshot, "heavy/503");
}

/// The store's append ledger balances against both itself and the
/// campaign ground truth: `records_appended` is exactly the sum of its
/// three parts, analyses/flows match the outcome, and the one extra
/// report is the campaign seal.
#[test]
fn store_counters_balance_against_the_campaign() {
    use spector_dispatch::run_campaign_stored;
    use spector_store::{
        CampaignKind, CampaignMeta, CampaignSealRecord, StoreOptions, StoreReader, StoreTelemetry,
        StoreWriter,
    };

    let dir = std::env::temp_dir().join(format!("spector-telemetry-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let corpus = Corpus::generate(&CorpusConfig {
        apps: 6,
        seed: 808,
        appgen: AppGenConfig {
            method_scale: 0.006,
            ..Default::default()
        },
        ..Default::default()
    });
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers: 2,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = 80;
    dispatch.experiment.monkey.seed = 808;
    let telemetry = Telemetry::enabled();
    let config = CampaignConfig {
        dispatch,
        retry: RetryPolicy::never(),
        telemetry: telemetry.clone(),
        ..Default::default()
    };
    let meta = CampaignMeta {
        seed: 808,
        apps: 6,
        monkey_events: 80,
        kind: CampaignKind::Run,
    };
    let options = StoreOptions {
        seal_every: 2, // several segments, not one
        telemetry: StoreTelemetry::new(&telemetry),
    };
    let writer =
        std::sync::Mutex::new(StoreWriter::create(&dir, &meta, options).expect("store opens"));
    let outcome = run_campaign_stored(&corpus, &knowledge, &config, None, None, Some(&writer))
        .expect("campaign runs");
    writer
        .into_inner()
        .unwrap()
        .finish(&CampaignSealRecord {
            seed: 808,
            apps: 6,
            monkey_events: 80,
            failures: vec![],
        })
        .expect("campaign seals");
    let snapshot = telemetry.snapshot();

    // 1. Internal balance: the total is exactly the sum of its parts.
    let appended = snapshot.counter("spector_store_records_appended_total");
    let analyses = snapshot.counter("spector_store_analyses_appended_total");
    let flows = snapshot.counter("spector_store_flows_appended_total");
    let reports = snapshot.counter("spector_store_reports_appended_total");
    assert_eq!(
        appended,
        analyses + flows + reports,
        "records_appended must equal analyses + flows + reports"
    );

    // 2. Ground truth: one analysis row per accepted app, one flow row
    //    per analyzed flow, one report row (the campaign seal).
    assert_eq!(analyses, outcome.analyses.len() as u64);
    let total_flows: u64 = outcome.analyses.iter().map(|a| a.flows.len() as u64).sum();
    assert_eq!(flows, total_flows);
    assert_eq!(reports, 1, "exactly the campaign seal record");

    // 3. The bytes/segments the writer claims are what landed on disk,
    //    and reading them back rejects nothing.
    let reader =
        StoreReader::open_with(&dir, StoreTelemetry::new(&telemetry)).expect("store reads back");
    assert_eq!(
        reader.integrity().segments_ok as u64,
        snapshot.counter("spector_store_segments_written_total"),
    );
    assert_eq!(reader.integrity().rejected.len(), 0);
    assert_eq!(snapshot.counter("spector_store_segments_rejected_total"), 0);
    assert_eq!(reader.campaign_analyses(0).len(), outcome.analyses.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sampled-tracing balance wall: the `spector_sampling_*` counters
/// must equal the field-wise sum of the per-analysis ledgers, every
/// stored ledger must balance internally, and
/// `reports_emitted + sampled_out + budget_suppressed` must equal
/// `reports_observed` — suppression is *counted*, never silent.
fn assert_sampling_balance(outcome: &CampaignOutcome, snapshot: &MetricsSnapshot, label: &str) {
    let mut total = SamplingLedger::default();
    for analysis in &outcome.analyses {
        assert!(
            analysis.sampling.is_balanced(),
            "{label}: {} ships an unbalanced ledger: {:?}",
            analysis.package,
            analysis.sampling
        );
        total.merge(&analysis.sampling);
    }
    let counter = |field: &str| snapshot.counter(&format!("spector_sampling_{field}_total"));
    let pairs = [
        ("reports_observed", total.reports_observed),
        ("reports_emitted", total.reports_emitted),
        ("sampled_out", total.sampled_out),
        ("budget_suppressed", total.budget_suppressed),
        ("windows_exhausted", total.windows_exhausted),
        ("ledgers_lost", total.ledgers_lost),
    ];
    for (field, expected) in pairs {
        assert_eq!(
            counter(field),
            expected,
            "{label}: sampling counter {field} disagrees with analyses"
        );
    }
    assert_eq!(
        counter("reports_observed"),
        counter("reports_emitted") + counter("sampled_out") + counter("budget_suppressed"),
        "{label}: sampling balance wall"
    );
}

/// Exact configuration (the default) must leave every sampling counter
/// at zero and every per-analysis ledger empty: the layer is invisible
/// until asked for.
#[test]
fn exact_campaigns_carry_no_sampling_ledger() {
    let (outcome, snapshot) = run_with_profile(FaultProfile::none(), 901, 5);
    assert_sampling_balance(&outcome, &snapshot, "exact/901");
    assert_eq!(
        snapshot.counter("spector_sampling_reports_observed_total"),
        0
    );
    assert!(outcome.analyses.iter().all(|a| a.sampling.is_empty()));
}

/// Sampled campaigns balance under every chaos profile — and the rest
/// of the accounting (integrity, faults, join, detect) still agrees,
/// because sampling thins what the hooks *emit*, not what the
/// downstream ledgers count.
#[test]
fn sampled_campaigns_balance_across_chaos_profiles() {
    let sampling = SamplingConfig {
        rate: 0.5,
        seed: 0xfeed,
        budget: None,
    };
    for (profile, seed) in [
        (FaultProfile::none(), 911u64),
        (FaultProfile::light(), 912),
        (FaultProfile::heavy(), 913),
    ] {
        let label = format!("sampled/{profile:?}/{seed}");
        let (outcome, snapshot) = run_sampled(profile, sampling, seed, 8);
        assert_sampling_balance(&outcome, &snapshot, &label);
        assert_agreement(&outcome, &snapshot, &label);
        let observed = snapshot.counter("spector_sampling_reports_observed_total");
        let sampled_out = snapshot.counter("spector_sampling_sampled_out_total");
        assert!(observed > 0, "{label}: ledgers must arrive");
        assert!(sampled_out > 0, "{label}: rate 0.5 must thin something");
    }
}

/// Budget exhaustion degrades *counted*: a tight per-window budget
/// under heavy chaos still accounts for every observed report, tallies
/// the exhausted windows, and never loses a report silently.
#[test]
fn budget_exhaustion_is_counted_never_silent() {
    let sampling = SamplingConfig {
        rate: 1.0,
        seed: 0xb007,
        budget: Some(TraceBudget {
            max_reports: 1,
            window_micros: 0,
        }),
    };
    let (outcome, snapshot) = run_sampled(FaultProfile::heavy(), sampling, 914, 8);
    assert_sampling_balance(&outcome, &snapshot, "budget/heavy/914");
    assert_agreement(&outcome, &snapshot, "budget/heavy/914");
    let suppressed = snapshot.counter("spector_sampling_budget_suppressed_total");
    let windows = snapshot.counter("spector_sampling_windows_exhausted_total");
    assert!(suppressed > 0, "one report per run must exhaust the budget");
    assert!(windows > 0, "exhausted windows are tallied");
    assert_eq!(
        snapshot.counter("spector_sampling_sampled_out_total"),
        0,
        "rate 1.0 never samples out; only the budget suppresses"
    );
}

/// Seed sweep: agreement is a property of the instrumentation points,
/// not of any particular trace, so it must hold for every seed.
#[test]
fn agreement_holds_across_profiles_and_seeds() {
    for profile in [
        FaultProfile::none(),
        FaultProfile::light(),
        FaultProfile::heavy(),
    ] {
        for seed in [9_001u64, 9_002] {
            let label = format!("{profile:?}/{seed}");
            let (outcome, snapshot) = run_with_profile(profile, seed, 5);
            assert_agreement(&outcome, &snapshot, &label);
        }
    }
}
