//! Ground-truth validation of the attribution heuristic — the check the
//! original authors could not run on real apps: the corpus generator
//! knows exactly which library owns every network operation and what
//! origin the Listing 1 heuristic *should* produce for its stack shape.

use std::collections::HashMap;

use libspector::experiment::{resolver_for, run_app, ExperimentConfig};
use libspector::knowledge::Knowledge;
use libspector::pipeline::analyze_run;
use libspector::OriginKind;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig, OpStyle};
use spector_libradar::LibCategory;

fn corpus(apps: usize, seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale: 0.006,
            ..Default::default()
        },
        ..Default::default()
    })
}

#[test]
fn origin_attribution_is_exact_across_a_corpus() {
    let corpus = corpus(12, 41);
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 100;

    let mut flows_checked = 0usize;
    let mut flows_correct = 0usize;
    for app in &corpus.apps {
        let system: Vec<_> = app
            .system_ops
            .iter()
            .map(|s| (s.op.clone(), s.dispatcher))
            .collect();
        let raw = run_app(&app.apk, &resolver, &system, &config).unwrap();
        let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
        // Ground truth keyed by domain (collision-avoiding sampling
        // makes this near-unique; collisions accept either owner).
        let mut by_domain: HashMap<&str, Vec<&Option<String>>> = HashMap::new();
        for truth in &app.truth {
            by_domain
                .entry(truth.domain.as_str())
                .or_default()
                .push(&truth.expected_origin);
        }
        for flow in &analysis.flows {
            let Some(domain) = flow.domain.as_deref() else {
                continue;
            };
            let Some(expected) = by_domain.get(domain) else {
                continue;
            };
            flows_checked += 1;
            let got = match &flow.origin {
                OriginKind::Library { origin_library, .. } => Some(origin_library.clone()),
                OriginKind::Builtin => None,
            };
            if expected.contains(&&got) {
                flows_correct += 1;
            }
        }
    }
    assert!(flows_checked > 50, "only {flows_checked} flows checked");
    assert_eq!(
        flows_correct, flows_checked,
        "attribution must be exact ({flows_correct}/{flows_checked})"
    );
}

#[test]
fn category_prediction_matches_template_categories() {
    let corpus = corpus(10, 42);
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 60;

    let mut checked = 0usize;
    for app in &corpus.apps {
        let raw = run_app(&app.apk, &resolver, &[], &config).unwrap();
        let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
        let mut truth_by_domain: HashMap<&str, Vec<LibCategory>> = HashMap::new();
        for truth in app.truth.iter().filter(|t| t.style != OpStyle::System) {
            truth_by_domain
                .entry(truth.domain.as_str())
                .or_default()
                .push(truth.lib_category);
        }
        for flow in &analysis.flows {
            let Some(domain) = flow.domain.as_deref() else {
                continue;
            };
            let Some(expected) = truth_by_domain.get(domain) else {
                continue;
            };
            checked += 1;
            assert!(
                expected.contains(&flow.lib_category),
                "app {} domain {domain}: got {:?}, want one of {expected:?}",
                app.package,
                flow.lib_category
            );
        }
    }
    assert!(checked > 30, "only {checked} flows checked");
}

#[test]
fn system_traffic_lands_in_builtin_or_com_android_buckets() {
    let corpus = corpus(8, 43);
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 0; // isolate system traffic

    let mut builtin_seen = false;
    let mut com_android_seen = false;
    for app in &corpus.apps {
        if app.system_ops.is_empty() {
            continue;
        }
        let system: Vec<_> = app
            .system_ops
            .iter()
            .map(|s| (s.op.clone(), s.dispatcher))
            .collect();
        let raw = run_app(&app.apk, &resolver, &system, &config).unwrap();
        let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
        let system_domains: Vec<&str> = app
            .truth
            .iter()
            .filter(|t| t.style == OpStyle::System)
            .map(|t| t.domain.as_str())
            .collect();
        for flow in &analysis.flows {
            let Some(domain) = flow.domain.as_deref() else {
                continue;
            };
            if !system_domains.contains(&domain) {
                continue;
            }
            match &flow.origin {
                OriginKind::Builtin => builtin_seen = true,
                OriginKind::Library { two_level, .. } => {
                    assert_eq!(two_level, "com.android", "system flow to {domain}");
                    com_android_seen = true;
                }
            }
        }
    }
    assert!(builtin_seen, "no raw-socket system flow observed");
    assert!(com_android_seen, "no platform-okhttp system flow observed");
}

#[test]
fn ant_only_archetype_measured_as_ant_only() {
    let corpus = corpus(20, 44);
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 60;

    for app in corpus
        .apps
        .iter()
        .filter(|a| a.archetype == spector_corpus::Archetype::AntOnly)
    {
        let raw = run_app(&app.apk, &resolver, &[], &config).unwrap();
        let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
        for flow in &analysis.flows {
            assert!(
                flow.is_ant,
                "AnT-only app {} produced non-AnT flow to {:?}",
                app.package, flow.domain
            );
        }
    }
}
