//! Streaming-vs-offline equivalence: the tentpole guarantee of the
//! `spector-live` engine. Replaying finished runs through the live
//! engine — any shard count — must produce byte-identical per-library
//! and per-domain-category volumes to [`libspector::analyze_run`],
//! with every unjoined report explicitly accounted as orphaned or
//! evicted, matching the offline `reports_without_flow` count.

use std::net::Ipv4Addr;
use std::sync::Arc;

use libspector::experiment::{resolver_for, run_app, ExperimentConfig, RawRun};
use libspector::knowledge::Knowledge;
use libspector::pipeline::{analyze_run, AppAnalysis};
use spector_corpus::{obfuscate_corpus, AppGenConfig, Corpus, CorpusConfig, ObfuscationTier};
use spector_dex::sha256::Sha256;
use spector_faults::{perturb_capture, FaultPlan, FaultProfile};
use spector_hooks::{SocketReport, SupervisorConfig};
use spector_live::{LiveConfig, LiveEngine, LiveSummary};
use spector_netsim::packet::SocketPair;
use spector_netsim::{Clock, NetStack};

fn campaign(apps: usize, seed: u64) -> (Knowledge, Vec<RawRun>, u16) {
    campaign_with_fraction(apps, seed, configured_modern_fraction())
}

fn campaign_with_fraction(
    apps: usize,
    seed: u64,
    modern_fraction: f64,
) -> (Knowledge, Vec<RawRun>, u16) {
    let mut corpus = Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale: 0.006,
            modern_fraction,
            ..Default::default()
        },
        ..Default::default()
    });
    if let Some(tier) = configured_obfuscation() {
        obfuscate_corpus(&mut corpus, tier, seed ^ 0x0bf5);
    }
    let resolver = resolver_for(&corpus.domains);
    let mut config = ExperimentConfig::default();
    config.monkey.events = 120;
    config.supervisor.sampling.rate = configured_sample_rate();
    config.supervisor.sampling.seed = seed ^ 0x5a4d;
    let runs: Vec<RawRun> = corpus
        .apps
        .iter()
        .enumerate()
        .map(|(index, app)| {
            let mut experiment = config.clone();
            experiment.monkey.seed ^= (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let system: Vec<_> = app
                .system_ops
                .iter()
                .map(|s| (s.op.clone(), s.dispatcher))
                .collect();
            run_app(&app.apk, &resolver, &system, &experiment).unwrap()
        })
        .collect();
    let knowledge = Knowledge::from_corpus(&corpus);
    (knowledge, runs, config.supervisor.collector_port)
}

/// Shard-count override for the CI test matrix: `LIVE_SHARDS=8`
/// replays the equivalence suite at that width. Defaults stay as
/// written in each test so a plain `cargo test` exercises the
/// canonical 1/2/4 mix.
fn configured_shards(default: usize) -> usize {
    std::env::var("LIVE_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Obfuscation override for the CI matrix: `OBFUSCATION_TIER=rename`
/// (or `mangle`/`junk`) obfuscates the fixture corpus before knowledge
/// extraction, so equivalence is also proven when verdict lookups fall
/// through to the exact-fingerprint or structural cascade tiers. Unset
/// or `none` leaves the corpus canonical (pure trie-tier lookups).
fn configured_obfuscation() -> Option<ObfuscationTier> {
    std::env::var("OBFUSCATION_TIER")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t != ObfuscationTier::None)
}

/// Sampling-rate override for the CI matrix: `SAMPLE_RATE=0.25` thins
/// the supervisor's report stream at capture time, so equivalence is
/// also proven over a sampled wire — both sides consume the same
/// thinned bytes plus the run's sampling ledger datagram. Unset or
/// `1.0` keeps the exact (byte-identical) wire.
fn configured_sample_rate() -> f64 {
    std::env::var("SAMPLE_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Batch-size override for the CI matrix: `LIVE_BATCH_EVENTS=1`
/// replays the suite with every frame shipped as its own batch, the
/// adversarial extreme of the batched ingress.
fn configured_batch(default: usize) -> usize {
    std::env::var("LIVE_BATCH_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Protocol-mix override for the CI matrix: `PROTOCOL_MIX=modern`
/// regenerates the fixture corpus with a 60% share of modern ops
/// (IPv6, TLS-like framing, CONNECT proxying, pooled connections), so
/// every equivalence test in this file also runs over the modern wire.
/// Unset or `legacy` keeps the corpus pure IPv4 plain HTTP.
fn configured_modern_fraction() -> f64 {
    match std::env::var("PROTOCOL_MIX").as_deref() {
        Ok("modern") => 0.6,
        _ => 0.0,
    }
}

fn offline(knowledge: &Knowledge, runs: &[RawRun], port: u16) -> Vec<AppAnalysis> {
    runs.iter()
        .map(|raw| analyze_run(raw, knowledge, port))
        .collect()
}

fn stream(
    knowledge: &Knowledge,
    runs: &[RawRun],
    port: u16,
    shards: usize,
) -> (LiveSummary, LiveEngine) {
    let engine = LiveEngine::start(
        Arc::new(knowledge.clone()),
        LiveConfig {
            shards,
            collector_port: port,
            batch_events: configured_batch(64),
            ..Default::default()
        },
    );
    for (index, raw) in runs.iter().enumerate() {
        engine.push_run(index as u32, &raw.capture);
    }
    (engine.snapshot(), engine)
}

/// Field-for-field identity between a final live summary and the
/// offline projection of the same runs.
fn assert_equivalent(live: &LiveSummary, analyses: &[AppAnalysis]) {
    let offline = LiveSummary::from_analyses(analyses);
    assert_eq!(live.flows, offline.flows);
    assert_eq!(live.unattributed_flows, offline.unattributed_flows);
    assert_eq!(
        live.per_library, offline.per_library,
        "per-library volumes must be byte-identical"
    );
    assert_eq!(
        live.per_domain_category, offline.per_domain_category,
        "per-domain-category volumes must be byte-identical"
    );
    assert_eq!(live.total_sent, offline.total_sent);
    assert_eq!(live.total_recv, offline.total_recv);
    assert_eq!(live.ant_bytes, offline.ant_bytes);
    assert_eq!(live.dns_packets, offline.dns_packets);
    assert_eq!(live.report_packets, offline.report_packets);
    assert_eq!(
        live.unjoined_reports(),
        offline.unjoined_reports(),
        "orphaned + evicted must equal offline reports_without_flow"
    );
    // The degraded-mode ledgers: the shard-local classified decode must
    // count exactly what the offline RunIntegrity accounting counts.
    assert_eq!(live.frames_truncated, offline.frames_truncated);
    assert_eq!(live.frames_malformed, offline.frames_malformed);
    assert_eq!(live.frames_bad_checksum, offline.frames_bad_checksum);
    assert_eq!(live.reports_truncated, offline.reports_truncated);
    assert_eq!(live.reports_malformed, offline.reports_malformed);
    // The sampled-tracing ledgers: shards must account suppressed
    // reports exactly as the offline decode does (all-zero on an
    // exact wire).
    assert_eq!(
        live.sampling, offline.sampling,
        "sampling ledgers must merge to identical totals"
    );
    // The socket-realism counters: family, shape, and pooled-stream
    // accounting must agree wherever the classification runs.
    assert_eq!(live.flows_v6, offline.flows_v6);
    assert_eq!(live.flows_tls, offline.flows_tls);
    assert_eq!(live.flows_proxied, offline.flows_proxied);
    assert_eq!(live.pooled_streams, offline.pooled_streams);
}

/// Modern socket realism: a campaign mixing IPv4, IPv6, TLS-like,
/// CONNECT-proxied, and pooled multi-stream flows must stream to
/// byte-identical summaries at 1, 2, and 8 shards — per-library and
/// per-domain-category volumes, shape counters, and the decode-error
/// ledgers alike.
#[test]
fn protocol_mix_streams_to_identical_volumes_at_any_width() {
    let (knowledge, runs, port) = campaign_with_fraction(5, 76, 0.6);
    let analyses = offline(&knowledge, &runs, port);
    let offline_view = LiveSummary::from_analyses(&analyses);
    assert!(
        offline_view.flows_v6 > 0,
        "mixed corpus must produce IPv6 flows"
    );
    assert!(
        offline_view.flows_tls > 0,
        "mixed corpus must produce TLS-like flows"
    );
    assert!(
        offline_view.flows_proxied > 0,
        "mixed corpus must produce CONNECT-proxied flows"
    );
    assert!(
        offline_view.pooled_streams > 0,
        "mixed corpus must produce pooled multi-stream connections"
    );
    let mut at_width: Vec<LiveSummary> = Vec::new();
    for shards in [1usize, 2, 8] {
        let (live, engine) = stream(&knowledge, &runs, port, shards);
        engine.finish();
        assert_eq!(live.dropped_events, 0);
        assert_equivalent(&live, &analyses);
        at_width.push(live);
    }
    assert_eq!(at_width[0], at_width[1]);
    assert_eq!(at_width[0], at_width[2]);
}

#[test]
fn finished_campaign_streams_to_identical_volumes() {
    let (knowledge, runs, port) = campaign(5, 71);
    let analyses = offline(&knowledge, &runs, port);
    assert!(analyses.iter().any(|a| !a.flows.is_empty()));
    let (live, engine) = stream(&knowledge, &runs, port, configured_shards(1));
    assert_eq!(live.dropped_events, 0, "Block policy never drops");
    assert_equivalent(&live, &analyses);
    // finish() after a snapshot returns the same final state.
    let final_summary = engine.finish();
    assert_equivalent(&final_summary, &analyses);
}

/// The adversarial extreme of the batched ingress: every frame ships
/// as its own single-item batch, at several widths. Equivalence is a
/// property of routing + shard-local decode, not of batch geometry.
#[test]
fn tiny_batches_preserve_equivalence_at_any_width() {
    let (knowledge, runs, port) = campaign(3, 74);
    let analyses = offline(&knowledge, &runs, port);
    for (shards, batch_events) in [(1usize, 1usize), (2, 1), (8, 3)] {
        let engine = LiveEngine::start(
            Arc::new(knowledge.clone()),
            LiveConfig {
                shards,
                collector_port: port,
                batch_events,
                ..Default::default()
            },
        );
        for (index, raw) in runs.iter().enumerate() {
            engine.push_run(index as u32, &raw.capture);
        }
        let live = engine.finish();
        assert_eq!(live.dropped_events, 0);
        assert_equivalent(&live, &analyses);
    }
}

/// Chaos-damaged captures stream to the same answer the offline
/// pipeline computes from the same damaged bytes — including the
/// frame/report error ledgers, at every shard width. This is the
/// equivalence guarantee extended to the degraded-mode accounting:
/// truncated frames and corrupted reports are *counted*, identically,
/// wherever the decode runs.
#[test]
fn chaos_damaged_streams_stay_equivalent() {
    let (knowledge, runs, port) = campaign(4, 75);
    let plan = FaultPlan::new(0xBAD5EED, FaultProfile::heavy());
    let damaged: Vec<RawRun> = runs
        .into_iter()
        .enumerate()
        .map(|(index, mut raw)| {
            let capture = std::mem::take(&mut raw.capture);
            let (capture, _) = perturb_capture(&plan, index, 0, capture, port);
            raw.capture = capture;
            raw
        })
        .collect();
    let analyses = offline(&knowledge, &damaged, port);
    let offline_view = LiveSummary::from_analyses(&analyses);
    assert!(
        offline_view.frames_truncated
            + offline_view.reports_truncated
            + offline_view.reports_malformed
            > 0,
        "heavy chaos at this scale must damage something on the wire"
    );
    let mut at_width: Vec<LiveSummary> = Vec::new();
    for shards in [1usize, 2, 8] {
        let (live, engine) = stream(&knowledge, &damaged, port, shards);
        engine.finish();
        assert_equivalent(&live, &analyses);
        at_width.push(live);
    }
    // And the widths agree with each other field for field.
    assert_eq!(at_width[0], at_width[1]);
    assert_eq!(at_width[0], at_width[2]);
}

#[test]
fn shard_count_is_invisible_in_the_summary() {
    let (knowledge, runs, port) = campaign(4, 72);
    let analyses = offline(&knowledge, &runs, port);
    let (one, engine_one) = stream(&knowledge, &runs, port, 1);
    let (four, engine_four) = stream(&knowledge, &runs, port, configured_shards(4));
    assert_eq!(one, four, "sharding changes throughput, never results");
    assert_equivalent(&one, &analyses);
    engine_one.finish();
    engine_four.finish();
}

#[test]
fn mid_campaign_snapshots_equal_offline_prefixes() {
    let (knowledge, runs, port) = campaign(4, 73);
    let analyses = offline(&knowledge, &runs, port);
    let engine = LiveEngine::start(
        Arc::new(knowledge.clone()),
        LiveConfig {
            shards: configured_shards(2),
            collector_port: port,
            ..Default::default()
        },
    );
    for (index, raw) in runs.iter().enumerate() {
        engine.push_run(index as u32, &raw.capture);
        // After each whole run, the live view equals the offline view
        // of exactly the runs streamed so far.
        let snapshot = engine.snapshot();
        assert_equivalent(&snapshot, &analyses[..=index]);
    }
    engine.finish();
}

/// The crafted pathological run from the offline pipeline tests:
/// a duplicated report datagram (must claim its epoch once) plus a
/// report whose 4-tuple has no packets at all (must end up orphaned
/// or evicted, mirroring `reports_without_flow`).
#[test]
fn duplicates_and_orphans_account_identically() {
    let config = SupervisorConfig::default();
    let mut stack = NetStack::new(Clock::new(), Ipv4Addr::new(10, 0, 2, 15));
    let ip = stack.resolve("dup.example.net", Ipv4Addr::new(198, 51, 100, 7));
    let sock = stack.tcp_connect(ip, 443);
    let pair = stack.socket_pair(sock).unwrap();
    let report = SocketReport {
        stream: None,
        apk_sha256: Sha256::digest(b"dup-apk"),
        pair,
        timestamp_micros: stack.clock().now_micros(),
        frames: vec![
            "java.net.Socket.connect".into(),
            "com.thirdparty.sdk.Net.call".into(),
        ],
    };
    stack.udp_send(config.collector_ip, config.collector_port, &report.encode());
    stack.udp_send(config.collector_ip, config.collector_port, &report.encode());
    let orphan = SocketReport {
        pair: SocketPair::new(
            Ipv4Addr::new(10, 0, 2, 15),
            61_000,
            Ipv4Addr::new(203, 0, 113, 80),
            443,
        ),
        ..report.clone()
    };
    stack.udp_send(config.collector_ip, config.collector_port, &orphan.encode());
    stack.tcp_transfer(sock, 100, 2_000);
    stack.tcp_close(sock);

    let raw = RawRun {
        package: "com.app.dup".into(),
        app_category: "Tools".into(),
        apk_sha256: Sha256::digest(b"dup-apk"),
        capture: stack.into_capture(),
        executed_methods: Default::default(),
        dex_signatures: Default::default(),
        monkey: Default::default(),
        runtime_stats: Default::default(),
        duration_micros: 0,
    };
    let knowledge = Knowledge::new(Default::default(), Default::default(), Default::default());
    let analysis = analyze_run(&raw, &knowledge, config.collector_port);
    assert_eq!(analysis.reports_without_flow, 1);

    let engine = LiveEngine::start(Arc::new(knowledge.clone()), LiveConfig::default());
    engine.push_run(0, &raw.capture);
    let live = engine.finish();
    assert_eq!(live.flows, 1, "duplicate claimed once");
    assert_eq!(live.report_packets, 3);
    assert_eq!(live.unjoined_reports(), 1, "the orphan is visible");
    assert_equivalent(&live, std::slice::from_ref(&analysis));
}
