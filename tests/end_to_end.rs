//! End-to-end integration: corpus → experiment → wire formats →
//! pipeline → aggregation, asserting cross-crate invariants that no
//! single crate can check alone.

use libspector::experiment::{resolver_for, run_app, ExperimentConfig};
use libspector::knowledge::Knowledge;
use libspector::pipeline::analyze_run;
use spector_analysis::FullReport;
use spector_corpus::{AppGenConfig, Corpus, CorpusConfig};
use spector_dispatch::{run_corpus, DispatchConfig};
use spector_hooks::supervisor::extract_reports;
use spector_netsim::flows::{DnsMap, FlowTable};
use spector_netsim::pcap::{read_pcap, write_pcap};

fn small_corpus(apps: usize, seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        apps,
        seed,
        appgen: AppGenConfig {
            method_scale: 0.006,
            ..Default::default()
        },
        ..Default::default()
    })
}

fn quick_experiment(events: u32) -> ExperimentConfig {
    let mut config = ExperimentConfig::default();
    config.monkey.events = events;
    config
}

#[test]
fn capture_is_a_valid_pcap_file_and_reparses_identically() {
    let corpus = small_corpus(1, 31);
    let app = &corpus.apps[0];
    let resolver = resolver_for(&corpus.domains);
    let raw = run_app(&app.apk, &resolver, &[], &quick_experiment(80)).unwrap();
    // Serialize the capture through the real pcap format and back.
    let bytes = write_pcap(&raw.capture);
    let reparsed = read_pcap(&bytes).expect("capture must be a valid pcap");
    assert_eq!(reparsed, raw.capture);
}

#[test]
fn reports_flows_and_dns_are_mutually_consistent() {
    let corpus = small_corpus(1, 32);
    let app = &corpus.apps[0];
    let resolver = resolver_for(&corpus.domains);
    let config = quick_experiment(120);
    let system: Vec<_> = app
        .system_ops
        .iter()
        .map(|s| (s.op.clone(), s.dispatcher))
        .collect();
    let raw = run_app(&app.apk, &resolver, &system, &config).unwrap();

    let flows = FlowTable::from_capture(&raw.capture);
    let reports = extract_reports(&raw.capture, config.supervisor.collector_port);
    let dns = DnsMap::from_capture(&raw.capture);

    // One report per TCP connection; each joins to a flow; each flow's
    // destination has a DNS-resolvable domain.
    assert_eq!(reports.len(), flows.len());
    for report in &reports {
        assert_eq!(report.apk_sha256, app.apk.sha256());
        let flow = flows
            .lookup(&report.pair, report.timestamp_micros)
            .expect("every report joins a flow");
        assert!(
            dns.domain_for(flow.pair.dst_ip).is_some(),
            "flow to {} has no DNS context",
            flow.pair.dst_ip
        );
        // Stack traces end at the connect syscall.
        assert_eq!(
            report.frames.first().map(String::as_str),
            Some("java.net.Socket.connect")
        );
    }
}

#[test]
fn campaign_aggregation_conserves_bytes() {
    let corpus = small_corpus(6, 33);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers: 2,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = 60;
    let analyses = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;
    let report = FullReport::build(&analyses);

    // Headline totals equal the sums over per-app analyses.
    let direct_total: u64 = analyses
        .iter()
        .flat_map(|a| a.flows.iter())
        .map(|f| f.sent_bytes + f.recv_bytes)
        .sum();
    assert_eq!(report.headline.total_bytes, direct_total);
    // Figure 9's matrix total equals the headline total.
    assert_eq!(report.fig9.total, direct_total);
    // Figure 2's per-app-category sums also add up to the same total.
    let fig2_total: u64 = report
        .fig2
        .bytes
        .values()
        .flat_map(|per_lib| per_lib.values())
        .sum();
    assert_eq!(fig2_total, direct_total);
}

#[test]
fn per_app_analysis_equals_campaign_member() {
    // Running one app standalone must produce the same analysis as the
    // same app inside a campaign (given the same derived monkey seed).
    let corpus = small_corpus(3, 34);
    let knowledge = Knowledge::from_corpus(&corpus);
    let mut dispatch = DispatchConfig {
        workers: 1,
        ..Default::default()
    };
    dispatch.experiment.monkey.events = 50;
    let campaign = run_corpus(&corpus, &knowledge, &dispatch, None).analyses;

    let index = 1usize;
    let app = &corpus.apps[index];
    let resolver = resolver_for(&corpus.domains);
    let mut experiment = dispatch.experiment.clone();
    experiment.monkey.seed ^= (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let system: Vec<_> = app
        .system_ops
        .iter()
        .map(|s| (s.op.clone(), s.dispatcher))
        .collect();
    let raw = run_app(&app.apk, &resolver, &system, &experiment).unwrap();
    let standalone = analyze_run(&raw, &knowledge, experiment.supervisor.collector_port);
    assert_eq!(standalone.flows, campaign[index].flows);
    assert_eq!(standalone.coverage, campaign[index].coverage);
}

#[test]
fn http_user_agents_ride_the_wire_and_are_partially_attributable() {
    let corpus = small_corpus(4, 36);
    let knowledge = Knowledge::from_corpus(&corpus);
    let resolver = resolver_for(&corpus.domains);
    let config = quick_experiment(120);
    let mut ua = libspector::baseline::UaComparison::default();
    let mut http_flows = 0usize;
    for app in &corpus.apps {
        let raw = run_app(&app.apk, &resolver, &[], &config).unwrap();
        let analysis = analyze_run(&raw, &knowledge, config.supervisor.collector_port);
        http_flows += analysis
            .flows
            .iter()
            .filter(|f| f.http_user_agent.is_some())
            .count();
        let c = libspector::baseline::compare_user_agent(std::slice::from_ref(&analysis));
        ua.flows += c.flows;
        ua.tagged_flows += c.tagged_flows;
        ua.tagged_matching_context += c.tagged_matching_context;
        ua.generic_flows += c.generic_flows;
        ua.non_http_flows += c.non_http_flows;
        ua.tagged_bytes += c.tagged_bytes;
        ua.total_bytes += c.total_bytes;
    }
    // HTTP request heads are parseable from the captures...
    assert!(http_flows > 10, "only {http_flows} HTTP flows");
    // ...but only a minority of flows carry an SDK identifier, and some
    // flows are raw sockets — the paper's "generic identifiers" problem.
    assert!(ua.tagged_flows > 0, "no SDK-tagged UAs at all");
    assert!(
        ua.tagged_flows < ua.flows,
        "every flow UA-tagged: too easy for header-based classifiers"
    );
    assert!(ua.generic_flows > 0, "no generic-UA flows");
    // Where a tag exists, it is usually consistent with the stack-based
    // origin (it names the code that issued the request).
    assert!(ua.tagged_matching_context * 2 >= ua.tagged_flows);
}

#[test]
fn arm_only_apps_are_filtered_by_store_selection() {
    use spector_corpus::store::{select_apks, ArchivedApk};
    let corpus = small_corpus(40, 35);
    let archive: Vec<ArchivedApk> = corpus
        .apps
        .iter()
        .map(|app| ArchivedApk {
            package: app.package.clone(),
            apk: app.apk.clone(),
        })
        .collect();
    let selection = select_apks(archive);
    assert_eq!(
        selection.selected.len() + selection.rejected.len(),
        corpus.apps.len()
    );
    for chosen in &selection.selected {
        assert!(chosen.apk.supports_x86());
    }
    for (package, _) in &selection.rejected {
        let app = corpus.apps.iter().find(|a| &a.package == package).unwrap();
        assert!(!app.apk.supports_x86());
    }
}
