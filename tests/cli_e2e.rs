//! End-to-end CLI tests: shell out to the built `libspector` binary
//! and assert on exit codes, stderr diagnostics, and the artifacts it
//! writes — the metrics JSON/Prometheus pair, checkpoint files, and
//! the `metrics` subcommand's profile table.

use std::path::PathBuf;
use std::process::{Command, Output};

use spector_telemetry::{MetricKey, MetricsSnapshot};

fn libspector(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_libspector"))
        .args(args)
        .output()
        .expect("spawn libspector")
}

/// Per-test scratch directory under the target-adjacent temp root.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("libspector-e2e-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn counter(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn help_succeeds_and_unknown_command_fails() {
    let help = libspector(&["--help"]);
    assert!(help.status.success());
    assert!(stdout_of(&help).contains("libspector run"));

    let unknown = libspector(&["frobnicate"]);
    assert!(!unknown.status.success());
    assert!(stderr_of(&unknown).contains("unknown command"));

    let bare = libspector(&[]);
    assert!(!bare.status.success());
}

#[test]
fn chaos_run_with_checkpoint_and_metrics_balances() {
    let dir = scratch("chaos-metrics");
    let checkpoint = dir.join("campaign.ck");
    let metrics = dir.join("metrics.json");
    let output = libspector(&[
        "run",
        "--apps",
        "6",
        "--seed",
        "91",
        "--events",
        "80",
        "--workers",
        "2",
        "--method-scale",
        "0.006",
        "--chaos",
        "light",
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--checkpoint-every",
        "2",
        "--resume",
        checkpoint.to_str().unwrap(),
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        output.status.success(),
        "run failed:\n{}",
        stderr_of(&output)
    );
    // The run prints the full evaluation report.
    let stdout = stdout_of(&output);
    assert!(stdout.contains("Headline"), "report missing from stdout");

    // The metrics JSON parses back into a snapshot...
    let raw = std::fs::read_to_string(&metrics).expect("metrics JSON written");
    let snapshot: MetricsSnapshot = serde_json::from_str(&raw).expect("metrics JSON parses");

    // ...and its pipeline counters balance exactly: every decoded
    // report is attributed, a duplicate, or flow-less — nothing is
    // silently dropped.
    let reports = counter(&snapshot, "spector_pipeline_reports_total");
    let attributed = counter(&snapshot, "spector_pipeline_flows_attributed_total");
    let duplicates = counter(&snapshot, "spector_pipeline_duplicate_reports_total");
    let orphans = counter(&snapshot, "spector_pipeline_reports_without_flow_total");
    assert!(reports > 0, "campaign produced no reports");
    assert_eq!(
        reports,
        attributed + duplicates + orphans,
        "pipeline join balance violated"
    );

    // Stage histograms rode along with sane call counts.
    assert!(snapshot
        .histograms
        .keys()
        .any(|k| MetricKey::parse(k).name == "spector_stage_micros"));

    // The Prometheus twin exists and is well-formed text exposition.
    let prom =
        std::fs::read_to_string(format!("{}.prom", metrics.display())).expect(".prom written");
    assert!(prom.contains("# TYPE spector_pipeline_reports_total counter"));
    assert!(prom.contains("le=\"+Inf\""));

    // The checkpoint file survived the run (final save).
    assert!(checkpoint.exists(), "checkpoint file missing");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_a_foreign_checkpoint_fingerprint() {
    let dir = scratch("fingerprint");
    let checkpoint = dir.join("campaign.ck");
    let ck = checkpoint.to_str().unwrap();
    let base = [
        "run",
        "--apps",
        "4",
        "--events",
        "60",
        "--method-scale",
        "0.006",
        "--checkpoint",
        ck,
    ];
    let mut first: Vec<&str> = base.to_vec();
    first.extend(["--seed", "7"]);
    let output = libspector(&first);
    assert!(output.status.success(), "{}", stderr_of(&output));
    assert!(checkpoint.exists());

    // Same checkpoint, different seed: the fingerprint no longer
    // matches and the CLI must refuse to resume rather than mix runs.
    let mut second: Vec<&str> = base.to_vec();
    second.extend(["--seed", "8", "--resume", ck]);
    let refused = libspector(&second);
    assert!(!refused.status.success(), "mismatched resume must fail");
    assert!(
        stderr_of(&refused).contains("fingerprint mismatch"),
        "unexpected stderr: {}",
        stderr_of(&refused)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_subcommand_renders_profile_and_prometheus() {
    let dir = scratch("metrics-cmd");
    let metrics = dir.join("metrics.json");
    let run = libspector(&[
        "run",
        "--apps",
        "3",
        "--seed",
        "14",
        "--events",
        "60",
        "--method-scale",
        "0.006",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(run.status.success(), "{}", stderr_of(&run));

    let table = libspector(&["metrics", "--file", metrics.to_str().unwrap()]);
    assert!(table.status.success(), "{}", stderr_of(&table));
    let text = stdout_of(&table);
    assert!(text.contains("== Stage profile =="));
    assert!(text.contains("pipeline/flow_join"));
    assert!(text.contains("spector_campaign_apps_ok_total"));

    let prom = libspector(&[
        "metrics",
        "--file",
        metrics.to_str().unwrap(),
        "--prometheus",
    ]);
    assert!(prom.status.success());
    assert!(stdout_of(&prom).contains("# TYPE"));

    // Missing --file and unreadable files are clean failures.
    let missing = libspector(&["metrics"]);
    assert!(!missing.status.success());
    let bogus = libspector(&["metrics", "--file", "/nonexistent/metrics.json"]);
    assert!(!bogus.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_mode_writes_a_merged_shard_snapshot() {
    let dir = scratch("live-metrics");
    let metrics = dir.join("live.json");
    let output = libspector(&[
        "live",
        "--apps",
        "4",
        "--seed",
        "23",
        "--events",
        "60",
        "--method-scale",
        "0.006",
        "--shards",
        "2",
        "--metrics",
        metrics.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "{}", stderr_of(&output));
    let raw = std::fs::read_to_string(&metrics).expect("live metrics written");
    let snapshot: MetricsSnapshot = serde_json::from_str(&raw).expect("live metrics parse");
    let events = counter(&snapshot, "spector_live_events_total");
    let tcp = counter(&snapshot, "spector_live_tcp_events_total");
    let dns = counter(&snapshot, "spector_live_dns_events_total");
    let reports = counter(&snapshot, "spector_live_report_events_total");
    assert!(events > 0, "no live events recorded");
    assert_eq!(
        events,
        tcp + dns + reports,
        "shard-merged event counters must cover the ingress total"
    );
    assert_eq!(counter(&snapshot, "spector_live_dropped_events_total"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
